"""Multi-dimensional scenario matrices as a first-class object.

A :class:`CampaignSpec` is a base :class:`~repro.api.spec.ScenarioSpec` plus a
grid of parameter axes, each addressed with the dotted paths of
:meth:`ScenarioSpec.replace` (``"backend.name"``, ``"traffic.offered_qps"``,
``"backend.options.row_cache_capacity_bytes"``, or a whole section such as
``"backend"`` with :class:`~repro.api.spec.BackendChoice` values).  Expansion
is deterministic: the cartesian product is walked in axis order (last axis
fastest), every point gets a coordinate-derived name and — when
``replicates > 1`` — coordinate-derived workload/traffic seeds, so a point is
fully described by its own :class:`ScenarioSpec` and can be executed in any
process, in any order, with identical results.

This is what turns the nested ``for backend: for qps:`` loops of the example
scripts into one schedulable, cacheable object the executor and store
(:mod:`repro.runtime.executor`, :mod:`repro.runtime.store`) operate on.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.api.spec import _SECTION_TYPES, OPEN_LOOP_ONLY_PARAMS, ScenarioSpec, coord_label

#: The implicit axis name used for seed replicates (never a real spec path).
REPLICATE_AXIS = "replicate"

#: Deterministic stride between replicate seeds, so replicate r of point A
#: never collides with replicate 0 of a neighbouring seed choice.
_REPLICATE_SEED_STRIDE = 9973


def _jsonable_axis_value(value: Any) -> Any:
    """Encode one grid value for campaign metadata (``CampaignSpec.to_dict``)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, Mapping):
        return dict(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable_axis_value(item) for item in value]
    return str(value)


@dataclass(frozen=True)
class CampaignAxis:
    """One swept dimension: a dotted spec path and the values it takes."""

    param: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.param!r} needs at least one value")
        if self.param == REPLICATE_AXIS:
            raise ValueError(
                f"{REPLICATE_AXIS!r} is the implicit replicate axis; "
                f"use CampaignSpec(replicates=N) instead"
            )


@dataclass(frozen=True)
class CampaignPoint:
    """One expanded grid point: its coordinates and fully-specified spec.

    ``coords`` hold the raw axis values; ``label_pairs`` are the JSON-able
    labels the expansion derived for them — disambiguated, so two axis values
    that share a display label (e.g. two ``sdm`` backends with different
    options) still get distinct labels, names and therefore spec hashes.
    """

    index: int
    coords: Tuple[Tuple[str, Any], ...]
    label_pairs: Tuple[Tuple[str, Any], ...]
    spec: ScenarioSpec

    def spec_hash(self) -> str:
        return self.spec.spec_hash()

    def labels(self) -> Tuple[Tuple[str, Any], ...]:
        """``coords`` with every value reduced to its disambiguated label."""
        return self.label_pairs

    def label(self) -> str:
        return ",".join(f"{param}={value}" for param, value in self.label_pairs)


def point_name(campaign_name: str, coords: Iterable[Tuple[str, Any]]) -> str:
    """The scenario name a point runs under: campaign name + coordinates.

    ``coords`` may carry raw values (labelled via :func:`coord_label`) or
    pre-computed labels.  Embedding the coordinates in the name makes stored
    results self-describing and gives run comparison its point identity;
    :meth:`CampaignSpec.points` passes disambiguated labels so every point's
    name — and spec hash — is unique within a campaign.
    """
    suffix = ",".join(f"{param}={coord_label(value)}" for param, value in coords)
    return f"{campaign_name}[{suffix}]" if suffix else campaign_name


@dataclass(frozen=True)
class CampaignSpec:
    """A base scenario crossed with a grid of parameter axes.

    ``axes`` accepts :class:`CampaignAxis` instances or plain
    ``(param, values)`` pairs.  ``replicates > 1`` appends an implicit
    ``replicate`` axis whose value ``r`` shifts the workload and traffic seeds
    by a deterministic stride — independent repetitions for error bars without
    giving up reproducibility.
    """

    name: str = "campaign"
    base: ScenarioSpec = field(default_factory=ScenarioSpec)
    axes: Tuple[CampaignAxis, ...] = ()
    replicates: int = 1

    def __post_init__(self) -> None:
        normalised = tuple(
            self._coerce_axis(
                axis if isinstance(axis, CampaignAxis) else CampaignAxis(*axis)
            )
            for axis in self.axes
        )
        object.__setattr__(self, "axes", normalised)
        params = [axis.param for axis in normalised]
        if len(set(params)) != len(params):
            raise ValueError(f"duplicate campaign axes: {params}")
        if self.replicates < 1:
            raise ValueError(f"replicates must be positive: {self.replicates}")
        # Fail fast on bad paths/values: every grid value must be applicable
        # to the base spec, which also runs the section validators.
        for axis in normalised:
            for value in axis.values:
                self.base.replace(axis.param, value)
        # A grid over open-loop-only traffic knobs on a closed-loop base would
        # expand into identical experiments per value — reject it up front
        # (same guard as Session.sweep), unless the grid also opens the loop.
        if self.base.traffic.mode == "closed" and not (
            {"traffic", "traffic.mode"} & set(params)
        ):
            dead = sorted(set(params) & OPEN_LOOP_ONLY_PARAMS)
            if dead:
                raise ValueError(
                    f"axis {dead} has no effect with closed-loop traffic; "
                    f"set traffic.mode='open' on the base spec (e.g. "
                    f"TrafficSpec(mode='open', arrival='poisson', "
                    f"offered_qps=...)) or add a 'traffic.mode' axis"
                )

    @staticmethod
    def _coerce_axis(axis: CampaignAxis) -> CampaignAxis:
        """Rebuild section instances on section-valued axes.

        ``to_dict`` serialises a whole-section axis value (e.g. a
        :class:`BackendChoice`) as a plain mapping; coercing it back here
        keeps point names — and therefore spec hashes — identical across a
        campaign's own :meth:`from_dict` round trip.
        """
        section_type = _SECTION_TYPES.get(axis.param)
        if section_type is None:
            return axis
        return CampaignAxis(
            axis.param,
            tuple(
                section_type(**value) if isinstance(value, Mapping) else value
                for value in axis.values
            ),
        )

    # ------------------------------------------------------------- geometry
    @property
    def shape(self) -> Tuple[int, ...]:
        dims = tuple(len(axis.values) for axis in self.axes)
        return dims + (self.replicates,) if self.replicates > 1 else dims

    def num_points(self) -> int:
        return math.prod(self.shape) if self.shape else 1

    @property
    def params(self) -> Tuple[str, ...]:
        names = tuple(axis.param for axis in self.axes)
        return names + (REPLICATE_AXIS,) if self.replicates > 1 else names

    # ------------------------------------------------------------ expansion
    @staticmethod
    def _axis_labels(axis: CampaignAxis) -> List[Any]:
        """Display labels for one axis' values, disambiguated when they clash.

        Two values can share a label (``BackendChoice('sdm', optsA)`` vs
        ``('sdm', optsB)``); suffixing the axis position keeps point names —
        the identity run comparison matches on — unique.
        """
        labels = [coord_label(value) for value in axis.values]
        counts = Counter(labels)
        return [
            f"{label}#{position}" if counts[label] > 1 else label
            for position, label in enumerate(labels)
        ]

    def points(self) -> List[CampaignPoint]:
        """Expand the grid into concrete, individually-specified points.

        Axis order is significant (last axis varies fastest) and the result
        is a pure function of the campaign, so point ``i`` means the same
        experiment on every expansion, in every process.
        """
        value_lists: List[Sequence[Any]] = [axis.values for axis in self.axes]
        label_lists: List[Sequence[Any]] = [self._axis_labels(axis) for axis in self.axes]
        if self.replicates > 1:
            value_lists.append(range(self.replicates))
            label_lists.append(range(self.replicates))
        points: List[CampaignPoint] = []
        for index, (assignment, labelling) in enumerate(
            zip(product(*value_lists), product(*label_lists))
        ):
            coords = tuple(zip(self.params, assignment))
            label_pairs = tuple(zip(self.params, labelling))
            spec = self.base
            for param, value in coords:
                if param == REPLICATE_AXIS:
                    # The replicate axis expands last, so offsets compose with
                    # whatever seed the other axes picked for this point.
                    stride = int(value) * _REPLICATE_SEED_STRIDE
                    spec = spec.replace("workload.seed", spec.workload.seed + stride)
                    spec = spec.replace("traffic.seed", spec.traffic.seed + stride)
                else:
                    spec = spec.replace(param, value)
            spec = spec.replace("name", point_name(self.name, label_pairs))
            points.append(
                CampaignPoint(
                    index=index, coords=coords, label_pairs=label_pairs, spec=spec
                )
            )
        return points

    # ----------------------------------------------------------- convenience
    @classmethod
    def from_grid(
        cls,
        base: ScenarioSpec,
        grid: Mapping[str, Sequence[Any]],
        *,
        name: Optional[str] = None,
        replicates: int = 1,
    ) -> "CampaignSpec":
        """Build a campaign from a ``{param: values}`` mapping (in order)."""
        axes = tuple(CampaignAxis(param, tuple(values)) for param, values in grid.items())
        return cls(
            name=name if name is not None else base.name,
            base=base,
            axes=axes,
            replicates=replicates,
        )

    # ------------------------------------------------------------- serialise
    def to_dict(self) -> Dict[str, Any]:
        """JSON-able description (campaign metadata in the experiment store)."""
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": [
                {
                    "param": axis.param,
                    "values": [_jsonable_axis_value(v) for v in axis.values],
                }
                for axis in self.axes
            ],
            "replicates": self.replicates,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        unknown = set(data) - {"name", "base", "axes", "replicates"}
        if unknown:
            raise ValueError(f"unknown CampaignSpec keys: {sorted(unknown)}")
        return cls(
            name=data.get("name", "campaign"),
            base=ScenarioSpec.from_dict(data.get("base", {})),
            axes=tuple(
                CampaignAxis(axis["param"], tuple(axis["values"]))
                for axis in data.get("axes", ())
            ),
            replicates=int(data.get("replicates", 1)),
        )
