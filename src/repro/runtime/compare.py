"""Diff two stored campaign runs and report per-metric regressions.

Both runs are :class:`ExperimentStore` directories; points are matched by
scenario name — which, for campaign points, encodes the campaign name and the
full grid coordinates — so the comparison works for both regression CI (same
specs, changed code) and config A/B studies (same grid, changed base spec).
When a matched pair's canonical spec hashes differ, the pair is flagged as
*spec drift* so a deliberate A/B is distinguishable from an accidental one.
Each metric carries a direction (higher- or lower-is-better) and a regression
is a change in the *worse* direction by more than ``tolerance`` (relative).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.reporting import format_table
from repro.runtime.store import ExperimentStore

#: Result-dict metrics where larger numbers are better; everything else
#: (latencies, queue delays, drop counts, power) defaults to lower-is-better.
_HIGHER_IS_BETTER = frozenset(
    {"achieved_qps", "offered_qps", "slo_headroom", "meets_slo", "num_queries"}
)

#: Default comparison set: throughput, tail latency, shed traffic.
DEFAULT_METRICS: Tuple[str, ...] = (
    "achieved_qps",
    "latency_seconds.p99",
    "dropped_queries",
)


@dataclass(frozen=True)
class MetricSpec:
    """One compared metric: dotted path into the result dict + direction."""

    path: str
    higher_is_better: bool

    @classmethod
    def parse(cls, text: str) -> "MetricSpec":
        """``"latency_seconds.p99"``, ``"achieved_qps:higher"``, ``"x:lower"``."""
        path, _, direction = text.partition(":")
        if direction not in ("", "higher", "lower"):
            raise ValueError(
                f"metric direction must be 'higher' or 'lower': {text!r}"
            )
        if direction:
            higher = direction == "higher"
        else:
            higher = path.split(".")[0] in _HIGHER_IS_BETTER
        return cls(path=path, higher_is_better=higher)


def _lookup(result: Dict[str, Any], path: str) -> Optional[float]:
    node: Any = result
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool):
        return float(node)
    return float(node) if isinstance(node, (int, float)) else None


@dataclass(frozen=True)
class MetricDelta:
    """One (point, metric) comparison between the two runs."""

    scenario: str
    metric: str
    higher_is_better: bool
    baseline: float
    candidate: float
    regressed: bool
    specs_match: bool = True

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def ratio(self) -> float:
        return self.candidate / self.baseline if self.baseline else float("inf")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "metric": self.metric,
            "higher_is_better": self.higher_is_better,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "regressed": self.regressed,
            "specs_match": self.specs_match,
        }


@dataclass
class RunComparison:
    """Everything `compare_runs` established about two stored runs."""

    baseline_root: str
    candidate_root: str
    tolerance: float
    deltas: List[MetricDelta] = field(default_factory=list)
    only_in_baseline: List[str] = field(default_factory=list)  # scenario names
    only_in_candidate: List[str] = field(default_factory=list)
    spec_drift: List[str] = field(default_factory=list)  # matched, specs differ
    compared_points: int = 0

    @property
    def regressions(self) -> List[MetricDelta]:
        return [delta for delta in self.deltas if delta.regressed]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline_root,
            "candidate": self.candidate_root,
            "tolerance": self.tolerance,
            "compared_points": self.compared_points,
            "num_regressions": len(self.regressions),
            "deltas": [delta.to_dict() for delta in self.deltas],
            "only_in_baseline": list(self.only_in_baseline),
            "only_in_candidate": list(self.only_in_candidate),
            "spec_drift": list(self.spec_drift),
        }

    def table(self) -> str:
        rows = [
            [
                delta.scenario,
                delta.metric,
                round(delta.baseline, 6),
                round(delta.candidate, 6),
                round(delta.delta, 6),
                "REGRESSED" if delta.regressed else "ok",
            ]
            for delta in self.deltas
        ]
        title = (
            f"compare: {self.compared_points} matched points, "
            f"{len(self.regressions)} regression(s)"
        )
        body = format_table(
            ["scenario", "metric", "baseline", "candidate", "delta", "verdict"],
            rows,
            title=title,
        )
        notes = []
        if self.only_in_baseline:
            notes.append(f"only in baseline: {len(self.only_in_baseline)} point(s)")
        if self.only_in_candidate:
            notes.append(f"only in candidate: {len(self.only_in_candidate)} point(s)")
        if self.spec_drift:
            notes.append(
                f"spec drift (same point, different spec): "
                f"{len(self.spec_drift)} point(s)"
            )
        return body + ("\n" + "\n".join(notes) if notes else "")


def _as_store(run: Union[str, Path, ExperimentStore]) -> ExperimentStore:
    return run if isinstance(run, ExperimentStore) else ExperimentStore(run)


def _is_regression(
    metric: MetricSpec, baseline: float, candidate: float, tolerance: float
) -> bool:
    worse = (candidate - baseline) if not metric.higher_is_better else (baseline - candidate)
    scale = max(abs(baseline), abs(candidate), 1e-12)
    return worse > tolerance * scale + 1e-12


def compare_runs(
    baseline: Union[str, Path, ExperimentStore],
    candidate: Union[str, Path, ExperimentStore],
    *,
    metrics: Optional[Sequence[Union[str, MetricSpec]]] = None,
    tolerance: float = 0.0,
) -> RunComparison:
    """Compare every point the two stores share, metric by metric.

    ``metrics`` entries are :class:`MetricSpec` or strings in
    :meth:`MetricSpec.parse` form; ``tolerance`` is the relative change in
    the worse direction a metric may move before it counts as a regression
    (``0.05`` = 5%).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative: {tolerance}")
    base_store, cand_store = _as_store(baseline), _as_store(candidate)
    specs = [
        metric if isinstance(metric, MetricSpec) else MetricSpec.parse(metric)
        for metric in (metrics if metrics is not None else DEFAULT_METRICS)
    ]
    def by_name(store: ExperimentStore) -> Dict[str, Dict[str, Any]]:
        # Point names embed the campaign coordinates, so they are unique
        # within a run; a re-run of the same point keeps the later record.
        return {
            record.get("scenario") or record["spec_hash"]: record for record in store
        }

    base_records, cand_records = by_name(base_store), by_name(cand_store)
    comparison = RunComparison(
        baseline_root=str(base_store.root),
        candidate_root=str(cand_store.root),
        tolerance=tolerance,
    )

    def order_key(name: str) -> Tuple[Any, ...]:
        record = base_records.get(name) or cand_records.get(name)
        index = record.get("index")
        return (index is None, index, name)

    for name in sorted(set(base_records) | set(cand_records), key=order_key):
        base_rec, cand_rec = base_records.get(name), cand_records.get(name)
        if base_rec is None:
            comparison.only_in_candidate.append(name)
            continue
        if cand_rec is None:
            comparison.only_in_baseline.append(name)
            continue
        comparison.compared_points += 1
        specs_match = base_rec.get("spec_hash") == cand_rec.get("spec_hash")
        if not specs_match:
            comparison.spec_drift.append(name)
        for metric in specs:
            before = _lookup(base_rec.get("result") or {}, metric.path)
            after = _lookup(cand_rec.get("result") or {}, metric.path)
            if before is None or after is None:
                # e.g. queueing metrics on a closed-loop point: not comparable.
                continue
            comparison.deltas.append(
                MetricDelta(
                    scenario=name,
                    metric=metric.path,
                    higher_is_better=metric.higher_is_better,
                    baseline=before,
                    candidate=after,
                    regressed=_is_regression(metric, before, after, tolerance),
                    specs_match=specs_match,
                )
            )
    return comparison
