"""Campaign orchestration: grids of scenarios, run in parallel, stored on disk.

The runtime layer sits above :mod:`repro.api` and treats whole experiments as
schedulable, cacheable units (the SimBricks-style split of orchestration from
simulation):

* :class:`CampaignSpec` (:mod:`repro.runtime.campaign`) — a base
  :class:`~repro.api.spec.ScenarioSpec` crossed with a grid of dotted-path
  parameter axes, expanded into deterministic, individually-specified points.
* :func:`run_campaign` (:mod:`repro.runtime.executor`) — executes the points,
  optionally on a process pool, streaming progress and memoising through the
  store.
* :class:`ExperimentStore` (:mod:`repro.runtime.store`) — append-only JSONL
  results keyed by canonical spec hash; interrupted campaigns resume, repeated
  campaigns are near-free.
* :func:`compare_runs` (:mod:`repro.runtime.compare`) — per-metric regression
  diff of two stored runs.

The same machinery backs ``python -m repro campaign`` / ``compare`` and
``Session.sweep(parallel=N)``.
"""

from repro.runtime.campaign import (
    REPLICATE_AXIS,
    CampaignAxis,
    CampaignPoint,
    CampaignSpec,
    coord_label,
    point_name,
)
from repro.runtime.compare import (
    DEFAULT_METRICS,
    MetricDelta,
    MetricSpec,
    RunComparison,
    compare_runs,
)
from repro.runtime.executor import PointOutcome, run_campaign
from repro.runtime.store import ExperimentStore

__all__ = [
    "CampaignAxis",
    "CampaignPoint",
    "CampaignSpec",
    "REPLICATE_AXIS",
    "coord_label",
    "point_name",
    "PointOutcome",
    "run_campaign",
    "ExperimentStore",
    "MetricSpec",
    "MetricDelta",
    "RunComparison",
    "DEFAULT_METRICS",
    "compare_runs",
]
