"""Campaign orchestration: grids of scenarios, run in parallel, stored on disk.

The runtime layer sits above :mod:`repro.api` and treats whole experiments as
schedulable, cacheable units (the SimBricks-style split of orchestration from
simulation):

* :class:`CampaignSpec` (:mod:`repro.runtime.campaign`) — a base
  :class:`~repro.api.spec.ScenarioSpec` crossed with a grid of dotted-path
  parameter axes, expanded into deterministic, individually-specified points.
* :func:`run_campaign` (:mod:`repro.runtime.executor`) — executes the points
  through a pluggable :class:`Runtime`, streaming progress and memoising
  through the store.
* :mod:`repro.runtime.runtimes` — the execution engines: serial, a
  work-stealing local process pool with per-point retry/quarantine and
  worker-resident backend reuse, and a dry-run planner.
* :class:`ExperimentStore` (:mod:`repro.runtime.store`) — append-only JSONL
  results keyed by canonical spec hash, optionally sharded per worker;
  interrupted campaigns resume, repeated campaigns are near-free.
* :func:`compare_runs` (:mod:`repro.runtime.compare`) — per-metric regression
  diff of two stored runs.

The same machinery backs ``python -m repro campaign`` / ``compare`` and
``Session.sweep(parallel=N)``.
"""

from repro.runtime.campaign import (
    REPLICATE_AXIS,
    CampaignAxis,
    CampaignPoint,
    CampaignSpec,
    coord_label,
    point_name,
)
from repro.runtime.compare import (
    DEFAULT_METRICS,
    MetricDelta,
    MetricSpec,
    RunComparison,
    compare_runs,
)
from repro.runtime.executor import PointOutcome, run_campaign
from repro.runtime.runtimes import (
    RUNTIME_NAMES,
    DryRunRuntime,
    LocalPoolRuntime,
    PointCompletion,
    Runtime,
    RuntimeConfig,
    SerialRuntime,
    estimated_cost,
    resolve_runtime,
)
from repro.runtime.store import ExperimentStore

__all__ = [
    "CampaignAxis",
    "CampaignPoint",
    "CampaignSpec",
    "REPLICATE_AXIS",
    "coord_label",
    "point_name",
    "PointOutcome",
    "run_campaign",
    "Runtime",
    "RuntimeConfig",
    "RUNTIME_NAMES",
    "SerialRuntime",
    "LocalPoolRuntime",
    "DryRunRuntime",
    "PointCompletion",
    "estimated_cost",
    "resolve_runtime",
    "ExperimentStore",
    "MetricSpec",
    "MetricDelta",
    "RunComparison",
    "DEFAULT_METRICS",
    "compare_runs",
]
