"""On-disk experiment store: completed points, keyed by canonical spec hash.

A store is one run directory::

    <root>/
        campaign.json    # CampaignSpec.to_dict() of the campaign that ran here
        results.jsonl    # one JSON record per completed point, append-only

Records are keyed by :meth:`ScenarioSpec.spec_hash`, which is a pure function
of the point's canonical spec JSON — so "this exact experiment already ran"
is a dictionary lookup.  The executor appends each record the moment the
point finishes (flushed immediately), which is what makes interrupted
campaigns resumable: a re-run against the same store serves every completed
point from disk and only executes the remainder.  A half-written trailing
line from a killed process is skipped on load rather than poisoning the run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from repro.api.spec import ScenarioSpec

CAMPAIGN_FILE = "campaign.json"
RESULTS_FILE = "results.jsonl"


class ExperimentStore:
    """Append-only JSONL store of completed scenario points under ``root``."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._records: Optional[Dict[str, Dict[str, Any]]] = None

    # ---------------------------------------------------------------- layout
    @property
    def results_path(self) -> Path:
        return self.root / RESULTS_FILE

    @property
    def campaign_path(self) -> Path:
        return self.root / CAMPAIGN_FILE

    def exists(self) -> bool:
        return self.results_path.exists()

    # ---------------------------------------------------------------- loading
    def records(self) -> Dict[str, Dict[str, Any]]:
        """All stored records, keyed by spec hash (cached after first load)."""
        if self._records is None:
            self._records = {}
            if self.results_path.exists():
                with open(self.results_path, encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                        except json.JSONDecodeError:
                            # A crash mid-append leaves at most one truncated
                            # trailing line; treat that point as not-yet-run.
                            continue
                        key = record.get("spec_hash")
                        if isinstance(key, str):
                            self._records[key] = record
        return self._records

    def __len__(self) -> int:
        return len(self.records())

    def __contains__(self, spec_hash: str) -> bool:
        return spec_hash in self.records()

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records().values())

    def get(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        return self.records().get(spec_hash)

    def get_spec(self, spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
        return self.get(spec.spec_hash())

    # ---------------------------------------------------------------- writing
    def put(
        self,
        spec: ScenarioSpec,
        result: Mapping[str, Any],
        *,
        index: Optional[int] = None,
        coords: Any = None,
    ) -> Dict[str, Any]:
        """Append one completed point and return the stored record.

        The record is durable the moment this returns (written, flushed and
        fsynced), so a campaign killed between points loses nothing.
        """
        record: Dict[str, Any] = {
            "spec_hash": spec.spec_hash(),
            "scenario": spec.name,
            "index": index,
            "coords": [list(pair) for pair in coords] if coords is not None else None,
            "spec": spec.to_dict(),
            "result": dict(result),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.results_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.records()[record["spec_hash"]] = record
        return record

    # ------------------------------------------------------------- metadata
    def write_campaign(self, campaign_dict: Mapping[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.campaign_path, "w", encoding="utf-8") as handle:
            json.dump(dict(campaign_dict), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def read_campaign(self) -> Optional[Dict[str, Any]]:
        if not self.campaign_path.exists():
            return None
        with open(self.campaign_path, encoding="utf-8") as handle:
            return json.load(handle)
