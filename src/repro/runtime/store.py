"""On-disk experiment store: completed points, keyed by canonical spec hash.

A store is one run directory::

    <root>/
        campaign.json         # CampaignSpec.to_dict() of the campaign that ran here
        results.jsonl         # records appended by the campaign driver itself
        results-<shard>.jsonl # records appended directly by pool workers

Records are keyed by :meth:`ScenarioSpec.spec_hash`, which is a pure function
of the point's canonical spec JSON — so "this exact experiment already ran"
is a dictionary lookup.  Writers append each record the moment the point
finishes (flushed immediately), which is what makes interrupted campaigns
resumable: a re-run against the same store serves every completed point from
disk and only executes the remainder.  A half-written trailing line from a
killed process is skipped on load rather than poisoning the run.

Sharding exists so parallel runtimes never funnel persistence through the
parent process: each pool worker owns ``results-w<pid>.jsonl`` and appends to
it with no cross-process locking (JSONL appends of < PIPE_BUF bytes are
atomic per POSIX, and distinct shards never contend anyway).  Readers merge
the main file plus every shard in deterministic (name-sorted) order with
last-record-wins per spec hash, so a single-file store written by an older
run stays readable unchanged and mixed stores (serial resume after a
parallel run, or vice versa) just work.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.api.spec import ScenarioSpec

CAMPAIGN_FILE = "campaign.json"
RESULTS_FILE = "results.jsonl"
SHARD_PREFIX = "results-"
SHARD_GLOB = "results-*.jsonl"


class ExperimentStore:
    """Append-only JSONL store of completed scenario points under ``root``."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._records: Optional[Dict[str, Dict[str, Any]]] = None

    # ---------------------------------------------------------------- layout
    @property
    def results_path(self) -> Path:
        return self.root / RESULTS_FILE

    @property
    def campaign_path(self) -> Path:
        return self.root / CAMPAIGN_FILE

    def shard_path(self, shard: str) -> Path:
        """Path of one worker shard, e.g. ``shard_path("w123")``."""
        if not shard or "/" in shard or shard != Path(shard).name:
            raise ValueError(f"invalid shard name: {shard!r}")
        return self.root / f"{SHARD_PREFIX}{shard}.jsonl"

    def shard_paths(self) -> List[Path]:
        """Existing worker shards, in deterministic (name-sorted) order."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(SHARD_GLOB))

    def result_paths(self) -> List[Path]:
        """Every results file that exists: the main file first, then shards."""
        paths = [self.results_path] if self.results_path.exists() else []
        paths.extend(self.shard_paths())
        return paths

    def exists(self) -> bool:
        return bool(self.result_paths())

    # ---------------------------------------------------------------- loading
    def records(self) -> Dict[str, Dict[str, Any]]:
        """All stored records, keyed by spec hash (cached after first load).

        Shards merge after the main file, in name-sorted order, with
        last-record-wins per spec hash — the same answer regardless of which
        process happened to append a given point.
        """
        if self._records is None:
            self._records = {}
            for path in self.result_paths():
                with open(path, encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                        except json.JSONDecodeError:
                            # A crash mid-append leaves at most one truncated
                            # trailing line; treat that point as not-yet-run.
                            continue
                        key = record.get("spec_hash")
                        if isinstance(key, str):
                            self._records[key] = record
        return self._records

    def __len__(self) -> int:
        return len(self.records())

    def __contains__(self, spec_hash: str) -> bool:
        return spec_hash in self.records()

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records().values())

    def get(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        return self.records().get(spec_hash)

    def get_spec(self, spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
        return self.get(spec.spec_hash())

    # ---------------------------------------------------------------- writing
    @staticmethod
    def _record(
        spec: ScenarioSpec,
        result: Mapping[str, Any],
        *,
        index: Optional[int],
        coords: Any,
    ) -> Dict[str, Any]:
        return {
            "spec_hash": spec.spec_hash(),
            "scenario": spec.name,
            "index": index,
            "coords": [list(pair) for pair in coords] if coords is not None else None,
            "spec": spec.to_dict(),
            "result": dict(result),
        }

    def put(
        self,
        spec: ScenarioSpec,
        result: Mapping[str, Any],
        *,
        index: Optional[int] = None,
        coords: Any = None,
        shard: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Append one completed point and return the stored record.

        The record is durable the moment this returns (written, flushed and
        fsynced), so a campaign killed between points loses nothing.  With
        ``shard`` the record lands in that worker's ``results-<shard>.jsonl``
        instead of the main file.
        """
        record = self._record(spec, result, index=index, coords=coords)
        path = self.shard_path(shard) if shard is not None else self.results_path
        self.root.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.records()[record["spec_hash"]] = record
        return record

    def register(
        self,
        spec: ScenarioSpec,
        result: Mapping[str, Any],
        *,
        index: Optional[int] = None,
        coords: Any = None,
    ) -> Dict[str, Any]:
        """Adopt a record another process already persisted to its shard.

        Updates only this store's in-memory view (no disk write), so the
        driver can serve the point from ``records()`` in the same run without
        re-reading the worker's shard file.
        """
        record = self._record(spec, result, index=index, coords=coords)
        self.records()[record["spec_hash"]] = record
        return record

    # ------------------------------------------------------------- metadata
    def write_campaign(self, campaign_dict: Mapping[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.campaign_path, "w", encoding="utf-8") as handle:
            json.dump(dict(campaign_dict), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def read_campaign(self) -> Optional[Dict[str, Any]]:
        if not self.campaign_path.exists():
            return None
        with open(self.campaign_path, encoding="utf-8") as handle:
            return json.load(handle)
