"""Run a campaign's points — through a pluggable runtime, memoised by store.

The executor is the scheduling layer between a :class:`CampaignSpec` and the
simulation core.  Each point travels as plain data: its spec serialises via
``ScenarioSpec.to_dict`` into the worker process, runs under a
:class:`~repro.api.session.Session` there, and comes back as the result's
``to_dict`` — no simulator state ever crosses a process boundary, which is
what makes every runtime bit-identical to the serial run (each point is a
pure function of its own spec; worker-resident backend reuse restores a
cached backend to its as-constructed state before every run).

*How* pending points execute is delegated to a
:class:`~repro.runtime.runtimes.Runtime` (serial, work-stealing local pool,
dry run); the executor owns what surrounds execution: serving already-stored
points from the :class:`ExperimentStore` without running anything, persisting
fresh results the moment they complete (so an interrupted campaign resumes
where it stopped), driving the progress callback in completion order, and
assembling :class:`PointOutcome` rows — including structured failure outcomes
for points the runtime quarantined, which are *not* persisted and therefore
retry on resume.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.api.results import ScenarioResult
from repro.api.spec import ScenarioSpec
from repro.runtime.campaign import CampaignPoint, CampaignSpec
from repro.runtime.runtimes import (
    PointCompletion,
    Runtime,
    RuntimeConfig,
    resolve_runtime,
)
from repro.runtime.store import ExperimentStore

#: ``progress(outcome, done, total)`` — called once per point: store-served
#: points first (in point order), then the runtime's completions in the order
#: they finish (point order for the serial runtime, completion order for the
#: work-stealing pool).
ProgressCallback = Callable[["PointOutcome", int, int], None]


@dataclass(frozen=True)
class PointOutcome:
    """One campaign point's terminal state: result, failure, or skip.

    ``coords`` carry the raw axis values; ``labels`` the expansion's
    disambiguated display labels (what point names and stored coordinates
    use).  Exactly one of three shapes:

    * ``ok`` — ``result`` is set (freshly executed, or ``cached`` from the
      store);
    * ``failed`` — the runtime quarantined the point after ``attempts``
      tries; ``error``/``error_type`` describe the last exception;
    * ``skipped`` — a dry run planned the point without executing it.
    """

    index: int
    coords: Tuple[Tuple[str, Any], ...]
    labels: Tuple[Tuple[str, Any], ...]
    spec_hash: str
    scenario: str
    result: Optional[ScenarioResult]
    cached: bool
    attempts: int = 1
    error: Optional[str] = None
    error_type: Optional[str] = None
    executed: bool = field(default=True)

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def skipped(self) -> bool:
        return not self.executed and self.result is None and self.error is None

    @property
    def status(self) -> str:
        if self.ok:
            return "cached" if self.cached else "ok"
        return "failed" if self.failed else "skipped"

    @functools.cached_property
    def metrics(self) -> Dict[str, Any]:
        """The result as the JSON-able dict that travels and is stored.

        Cached: the conversion walks every latency sample, and callers (the
        CLI table, comparisons) read it repeatedly per outcome.
        """
        if self.result is None:
            raise ValueError(
                f"point {self.index} ({self.scenario}) has no result: {self.status}"
            )
        return self.result.to_dict()


def _outcome(
    point: CampaignPoint, result_dict: Dict[str, Any], *, cached: bool
) -> PointOutcome:
    return PointOutcome(
        index=point.index,
        coords=point.coords,
        labels=point.labels(),
        spec_hash=point.spec_hash(),
        scenario=point.spec.name,
        result=ScenarioResult.from_dict(result_dict),
        cached=cached,
    )


def _completion_outcome(completion: PointCompletion) -> PointOutcome:
    point = completion.point
    if completion.result is not None:
        return PointOutcome(
            index=point.index,
            coords=point.coords,
            labels=point.labels(),
            spec_hash=point.spec_hash(),
            scenario=point.spec.name,
            result=ScenarioResult.from_dict(completion.result),
            cached=False,
            attempts=completion.attempts,
        )
    return PointOutcome(
        index=point.index,
        coords=point.coords,
        labels=point.labels(),
        spec_hash=point.spec_hash(),
        scenario=point.spec.name,
        result=None,
        cached=False,
        attempts=completion.attempts,
        error=completion.error,
        error_type=completion.error_type,
        executed=completion.executed,
    )


def _execute_point(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Back-compat worker shim: rebuild the spec, run it fresh, return dict.

    The real worker entry point is :func:`repro.runtime.runtimes.run_point`;
    this remains for callers (and tests) that monkeypatch the executor's
    single-point path.
    """
    from repro.runtime.runtimes import run_point

    return run_point(spec_dict, reuse=False)


def run_campaign(
    campaign: CampaignSpec,
    *,
    parallel: int = 1,
    store: Optional[ExperimentStore] = None,
    progress: Optional[ProgressCallback] = None,
    chunksize: int = 1,
    runtime: Union[str, Runtime, None] = None,
    retries: int = 0,
    reuse_backends: bool = True,
) -> List[PointOutcome]:
    """Execute every point of ``campaign``; return outcomes in point order.

    ``runtime`` selects the execution engine: ``"serial"``, ``"pool"``
    (work-stealing process pool), ``"dry"`` (plan only), a
    :class:`~repro.runtime.runtimes.Runtime` instance, or ``None`` for the
    legacy contract (``parallel > 1`` → pool, else serial).  ``retries``
    re-runs a failing point that many extra times before quarantining it as
    a failed outcome — a failure never aborts its siblings, and only
    successful results are persisted, so quarantined points retry on resume.
    ``reuse_backends`` lets workers keep built backends resident across
    points that share a ``backend_hash`` (bit-identical by contract; disable
    to force a fresh build per point).  When ``store`` is given, points
    already present are served from it, pool workers append fresh results
    directly to per-worker store shards, and serial/dry paths persist
    through the driver.  ``chunksize`` is accepted for backwards
    compatibility and ignored: work-stealing dispatch is per-point.
    """
    if parallel < 1:
        raise ValueError(f"parallel must be positive: {parallel}")
    if chunksize < 1:
        raise ValueError(f"chunksize must be positive: {chunksize}")
    if retries < 0:
        raise ValueError(f"retries must be non-negative: {retries}")
    engine = resolve_runtime(runtime, parallel)
    points = campaign.points()
    total = len(points)
    outcomes: List[Optional[PointOutcome]] = [None] * total
    done = 0

    def finish(point: CampaignPoint, outcome: PointOutcome) -> None:
        nonlocal done
        outcomes[point.index] = outcome
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    pending: List[CampaignPoint] = []
    for point in points:
        record = store.get(point.spec_hash()) if store is not None else None
        if record is not None:
            finish(point, _outcome(point, record["result"], cached=True))
        else:
            pending.append(point)

    config = RuntimeConfig(
        retries=retries,
        reuse_backends=reuse_backends,
        store_root=(
            str(store.root) if store is not None and engine.name == "pool" else None
        ),
    )
    if pending:
        for completion in engine.execute(pending, config):
            point = completion.point
            if store is not None and completion.result is not None:
                if completion.persisted:
                    # The worker already appended to its shard; just adopt the
                    # record into this store's in-memory view.
                    store.register(
                        point.spec,
                        completion.result,
                        index=point.index,
                        coords=point.labels(),
                    )
                else:
                    store.put(
                        point.spec,
                        completion.result,
                        index=point.index,
                        coords=point.labels(),
                    )
            finish(point, _completion_outcome(completion))

    return [outcome for outcome in outcomes if outcome is not None]
