"""Run a campaign's points — in parallel, memoised through the store.

The executor is the scheduling layer between a :class:`CampaignSpec` and the
simulation core.  Each point travels as plain data: its spec serialises via
``ScenarioSpec.to_dict`` into the worker process, runs under a fresh
:class:`~repro.api.session.Session` there, and comes back as the result's
``to_dict`` — no simulator state ever crosses a process boundary, which is
what makes ``parallel=N`` bit-identical to the serial run (every point is a
pure function of its own spec).

Points whose spec hash already sits in the :class:`ExperimentStore` are
served from disk without executing anything; fresh results are appended to
the store the moment they arrive, so an interrupted campaign resumes where it
stopped.  If the host cannot fork worker processes (restricted sandboxes),
the executor degrades to the serial path with a warning instead of failing.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.results import ScenarioResult
from repro.api.session import Session
from repro.api.spec import ScenarioSpec
from repro.runtime.campaign import CampaignPoint, CampaignSpec
from repro.runtime.store import ExperimentStore

#: ``progress(outcome, done, total)`` — called once per point: store-served
#: points first (in point order), then executed points in point order as
#: their results arrive.
ProgressCallback = Callable[["PointOutcome", int, int], None]


@dataclass(frozen=True)
class PointOutcome:
    """One campaign point's result, whether freshly executed or store-served.

    ``coords`` carry the raw axis values; ``labels`` the expansion's
    disambiguated display labels (what point names and stored coordinates
    use).
    """

    index: int
    coords: Tuple[Tuple[str, Any], ...]
    labels: Tuple[Tuple[str, Any], ...]
    spec_hash: str
    scenario: str
    result: ScenarioResult
    cached: bool

    @property
    def metrics(self) -> Dict[str, Any]:
        """The result as the JSON-able dict that travels and is stored."""
        return self.result.to_dict()


def _execute_point(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: rebuild the spec, run it, return the result dict.

    Top-level (hence picklable) and dict-in/dict-out by design: this exact
    function body runs for both the serial path and the pool workers.
    """
    spec = ScenarioSpec.from_dict(spec_dict)
    return Session(spec).run().to_dict()


def _outcome(
    point: CampaignPoint, result_dict: Dict[str, Any], *, cached: bool
) -> PointOutcome:
    return PointOutcome(
        index=point.index,
        coords=point.coords,
        labels=point.labels(),
        spec_hash=point.spec_hash(),
        scenario=point.spec.name,
        result=ScenarioResult.from_dict(result_dict),
        cached=cached,
    )


def run_campaign(
    campaign: CampaignSpec,
    *,
    parallel: int = 1,
    store: Optional[ExperimentStore] = None,
    progress: Optional[ProgressCallback] = None,
    chunksize: int = 1,
) -> List[PointOutcome]:
    """Execute every point of ``campaign``; return outcomes in point order.

    ``parallel`` > 1 runs fresh points on a :class:`ProcessPoolExecutor`
    (``chunksize`` specs per task); 1 runs them inline.  When ``store`` is
    given, points already present are served from it and new results are
    persisted as they complete.
    """
    if parallel < 1:
        raise ValueError(f"parallel must be positive: {parallel}")
    if chunksize < 1:
        raise ValueError(f"chunksize must be positive: {chunksize}")
    points = campaign.points()
    total = len(points)
    outcomes: List[Optional[PointOutcome]] = [None] * total
    done = 0

    def finish(point: CampaignPoint, outcome: PointOutcome) -> None:
        nonlocal done
        outcomes[point.index] = outcome
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    pending: List[CampaignPoint] = []
    for point in points:
        record = store.get(point.spec_hash()) if store is not None else None
        if record is not None:
            finish(point, _outcome(point, record["result"], cached=True))
        else:
            pending.append(point)

    def run_serially(remaining: List[CampaignPoint]) -> None:
        for point in remaining:
            result_dict = _execute_point(point.spec.to_dict())
            if store is not None:
                store.put(
                    point.spec, result_dict, index=point.index, coords=point.labels()
                )
            finish(point, _outcome(point, result_dict, cached=False))

    if pending and parallel > 1 and len(pending) > 1:
        pool_error: Optional[BaseException] = None
        try:
            pool = ProcessPoolExecutor(max_workers=min(parallel, len(pending)))
        except (OSError, PermissionError) as error:
            pool_error = error
        else:
            with pool:
                results = pool.map(
                    _execute_point,
                    [point.spec.to_dict() for point in pending],
                    chunksize=chunksize,
                )
                results_iter = iter(results)
                for point in pending:
                    # Only the pull from the pool is fallback-eligible; store
                    # writes and progress callbacks raise as themselves.
                    try:
                        result_dict = next(results_iter)
                    except (BrokenProcessPool, OSError, PermissionError) as error:
                        pool_error = error
                        break
                    if store is not None:
                        store.put(
                            point.spec,
                            result_dict,
                            index=point.index,
                            coords=point.labels(),
                        )
                    finish(point, _outcome(point, result_dict, cached=False))
        if pool_error is not None:
            # Sandboxes that forbid fork land here; everything already
            # persisted stays persisted, the remainder runs inline.
            warnings.warn(
                f"process pool unavailable ({pool_error!r}); "
                f"falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            run_serially([point for point in pending if outcomes[point.index] is None])
    elif pending:
        run_serially(pending)

    return [outcome for outcome in outcomes if outcome is not None]
