"""Pluggable campaign runtimes: serial, work-stealing local pool, dry-run.

This is the SimBricks-style split of *how* points execute from *what* they
are (``orchestration/runtime/{local,slurm,dry}.py`` is the exemplar shape):
:func:`~repro.runtime.executor.run_campaign` expands and persists points, a
:class:`Runtime` turns pending points into :class:`PointCompletion` events in
whatever order it finishes them.

Three runtimes ship:

* :class:`SerialRuntime` — points run inline, in point order.
* :class:`LocalPoolRuntime` — every point is submitted individually to a
  :class:`~concurrent.futures.ProcessPoolExecutor` and consumed as it
  completes (true work-stealing: a slow point never head-of-line-blocks its
  siblings' results, progress, or persistence).  Dispatch is
  longest-expected-first (:func:`estimated_cost`), failures retry up to
  ``retries`` times and are then quarantined as structured failure events,
  and an unusable pool (sandboxes that forbid ``fork``, a pool that breaks
  mid-stream) degrades to the serial path for the not-yet-finished remainder.
* :class:`DryRunRuntime` — validates and plans without executing: every
  pending point comes back as a skipped completion carrying only its cost
  estimate.

The headline perf mechanism is **worker-resident backend reuse**: each
process keeps a small cache of built ``(model, backend)`` pairs keyed by
:meth:`~repro.api.spec.ScenarioSpec.backend_hash` (the ``model`` + ``backend``
sections only).  Points that differ only along workload/traffic/serving axes
share a hash, so a worker restores the already-built backend to its
as-constructed state (``backend.restore_pristine()``) and skips model
construction and placement entirely — the dominant cost of small-scenario
grids.  Reuse is bit-identical to fresh builds by contract, and the parity
tests pin it.
"""

from __future__ import annotations

import os
import warnings
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    ClassVar,
    Dict,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.api.spec import ScenarioSpec
from repro.runtime.campaign import CampaignPoint
from repro.runtime.store import ExperimentStore

#: Pool-creation / pool-death errors that mean "this runtime cannot execute
#: here", as opposed to a point's own exception (which quarantines the point).
POOL_ERRORS = (BrokenProcessPool, OSError, PermissionError)

#: Built backends resident in this process, keyed by ``spec.backend_hash()``.
#: Bounded so a backend-axis campaign cannot hold every variant alive at once.
_BACKEND_CACHE: "OrderedDict[str, Tuple[Any, Any]]" = OrderedDict()
_BACKEND_CACHE_LIMIT = 8


def backend_cache_info() -> Tuple[int, Tuple[str, ...]]:
    """(size, keys) of this process's resident-backend cache (tests/tuning)."""
    return len(_BACKEND_CACHE), tuple(_BACKEND_CACHE)


def clear_backend_cache() -> None:
    """Drop every resident backend (tests; also frees their device arrays)."""
    _BACKEND_CACHE.clear()


def estimated_cost(spec: ScenarioSpec) -> float:
    """Relative wall-clock estimate of one point, for dispatch ordering.

    Wall time is dominated by how many queries are served and how much work
    each carries (the ranked item batch); the offered load only stretches
    *simulated* time.  Closed-loop points additionally replay warmup queries
    inside the measured serve path, so they are not discounted.  The scale is
    arbitrary — only the ordering matters (longest expected first).
    """
    item_batch = spec.workload.item_batch
    if item_batch is None:
        item_batch = spec.model.item_batch if spec.model.item_batch is not None else 1
    return float(spec.workload.num_queries) * float(max(1, item_batch))


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution knobs :func:`run_campaign` hands to the runtime.

    ``store_root`` enables worker-side persistence: pool workers append each
    finished point to their own ``results-<worker>.jsonl`` shard under that
    directory the moment it completes, so persistence never serialises
    through the parent.  ``None`` leaves persistence to the caller.
    """

    retries: int = 0
    reuse_backends: bool = True
    store_root: Optional[str] = None


@dataclass(frozen=True)
class PointCompletion:
    """One point's terminal event, in whatever order the runtime finished it.

    Exactly one of three shapes: executed successfully (``result`` set),
    quarantined after ``attempts`` tries (``error``/``error_type`` set), or
    skipped without executing (``executed=False`` — the dry run).
    ``persisted`` marks results a worker shard already holds on disk, so the
    consumer must not append them again.
    """

    point: CampaignPoint
    result: Optional[Dict[str, Any]]
    attempts: int
    error: Optional[str] = None
    error_type: Optional[str] = None
    persisted: bool = False
    executed: bool = True


class Runtime(Protocol):
    """Turns pending campaign points into completion events.

    ``execute`` yields one :class:`PointCompletion` per point, in completion
    order (not necessarily point order); the caller owns ordering, progress
    and persistence of unpersisted results.
    """

    name: str

    def execute(
        self, points: Sequence[CampaignPoint], config: RuntimeConfig
    ) -> Iterator[PointCompletion]: ...


# --------------------------------------------------------------------------
# The worker entry point (also the serial path, so the exact same function
# body runs everywhere — what keeps serial and pool runs bit-identical).
# --------------------------------------------------------------------------
def run_point(
    spec_dict: Dict[str, Any],
    *,
    reuse: bool = True,
    store_root: Optional[str] = None,
    index: Optional[int] = None,
    coords: Any = None,
) -> Dict[str, Any]:
    """Rebuild the spec, run it (reusing a resident backend when possible),
    optionally persist to this process's store shard, return the result dict.

    Top-level (hence picklable) and dict-in/dict-out by design.  With
    ``reuse`` the process-global backend cache is consulted under
    ``spec.backend_hash()``: a hit restores the built backend to pristine
    state and adopts it, skipping model/backend construction; a miss runs
    fresh and — when the backend supports ``restore_pristine`` — caches the
    built pair for the next point that shares the hash.
    """
    # Imported lazily: repro.runtime builds on repro.api, not vice versa, and
    # pool workers re-import this module before anything else.
    from repro.api.session import Session

    spec = ScenarioSpec.from_dict(spec_dict)
    session = Session(spec)
    key: Optional[str] = None
    if reuse:
        key = spec.backend_hash()
        cached = _BACKEND_CACHE.get(key)
        if cached is not None:
            model, backend = cached
            backend.restore_pristine()
            session.adopt_backend(model, backend)
            _BACKEND_CACHE.move_to_end(key)
    result: Dict[str, Any] = session.run().to_dict()
    if key is not None and key not in _BACKEND_CACHE:
        backend = session.backend
        if callable(getattr(backend, "restore_pristine", None)):
            _BACKEND_CACHE[key] = (session.model, backend)
            while len(_BACKEND_CACHE) > _BACKEND_CACHE_LIMIT:
                _BACKEND_CACHE.popitem(last=False)
    if store_root is not None:
        ExperimentStore(store_root).put(
            spec, result, index=index, coords=coords, shard=f"w{os.getpid()}"
        )
    return result


def _attempt_serial(point: CampaignPoint, config: RuntimeConfig) -> PointCompletion:
    """Run one point inline with retries; never persists (caller's job)."""
    attempts = 0
    while True:
        attempts += 1
        try:
            result = run_point(
                point.spec.to_dict(), reuse=config.reuse_backends, store_root=None
            )
        except Exception as error:  # noqa: BLE001 — quarantine, don't crash siblings
            if attempts <= config.retries:
                continue
            return PointCompletion(
                point=point,
                result=None,
                attempts=attempts,
                error=str(error),
                error_type=type(error).__name__,
            )
        return PointCompletion(point=point, result=result, attempts=attempts)


class SerialRuntime:
    """Run every point inline, in point order, with per-point retry."""

    name: ClassVar[str] = "serial"

    def execute(
        self, points: Sequence[CampaignPoint], config: RuntimeConfig
    ) -> Iterator[PointCompletion]:
        for point in points:
            yield _attempt_serial(point, config)


class DryRunRuntime:
    """Plan without executing: every pending point comes back skipped.

    The campaign still expands, validates (bad paths/values fail in
    :class:`~repro.runtime.campaign.CampaignSpec` before any runtime sees
    them) and consults the store, so a dry run answers "what would run, in
    what order, at what estimated cost" for free.
    """

    name: ClassVar[str] = "dry"

    def execute(
        self, points: Sequence[CampaignPoint], config: RuntimeConfig
    ) -> Iterator[PointCompletion]:
        for point in points:
            yield PointCompletion(point=point, result=None, attempts=0, executed=False)


class LocalPoolRuntime:
    """Work-stealing process pool: submit individually, consume as completed.

    Points are dispatched longest-expected-first so the big points start
    while small ones fill the stragglers' shadows, each worker keeps its
    resident-backend cache warm across the points it steals, and every
    completion is yielded the moment it lands — persistence and progress
    never wait for an earlier-indexed sibling.  A pool that cannot start or
    breaks mid-stream degrades to :class:`SerialRuntime` for whatever has
    not finished, with a warning.
    """

    name: ClassVar[str] = "pool"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive: {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 2)

    def execute(
        self, points: Sequence[CampaignPoint], config: RuntimeConfig
    ) -> Iterator[PointCompletion]:
        if self.workers == 1 or len(points) <= 1:
            yield from SerialRuntime().execute(points, config)
            return
        order = sorted(points, key=lambda p: (-estimated_cost(p.spec), p.index))
        pool_error: Optional[BaseException] = None
        finished: set[int] = set()
        try:
            pool = ProcessPoolExecutor(max_workers=min(self.workers, len(order)))
        except POOL_ERRORS as error:
            pool_error = error
        else:
            with pool:
                tasks: Dict[Future[Dict[str, Any]], Tuple[CampaignPoint, int]] = {}

                def submit(point: CampaignPoint, attempt: int) -> Optional[BaseException]:
                    try:
                        future = pool.submit(
                            run_point,
                            point.spec.to_dict(),
                            reuse=config.reuse_backends,
                            store_root=config.store_root,
                            index=point.index,
                            coords=point.labels(),
                        )
                    except POOL_ERRORS as error:
                        return error
                    except RuntimeError as error:
                        # "cannot schedule new futures after shutdown" — the
                        # pool died between a failure and its retry.
                        return error
                    tasks[future] = (point, attempt)
                    return None

                for point in order:
                    pool_error = submit(point, 1)
                    if pool_error is not None:
                        break
                while tasks and pool_error is None:
                    done, _ = wait(set(tasks), return_when=FIRST_COMPLETED)
                    for future in done:
                        point, attempt = tasks.pop(future)
                        error = future.exception()
                        if error is None:
                            finished.add(point.index)
                            yield PointCompletion(
                                point=point,
                                result=future.result(),
                                attempts=attempt,
                                persisted=config.store_root is not None,
                            )
                        elif isinstance(error, POOL_ERRORS):
                            pool_error = error
                            break
                        elif attempt <= config.retries:
                            pool_error = submit(point, attempt + 1)
                            if pool_error is not None:
                                break
                        else:
                            finished.add(point.index)
                            yield PointCompletion(
                                point=point,
                                result=None,
                                attempts=attempt,
                                error=str(error),
                                error_type=type(error).__name__,
                            )
        if pool_error is not None:
            # Sandboxes that forbid fork, or a pool that died mid-stream, land
            # here; everything already yielded stays yielded (and persisted),
            # only the remainder re-runs inline.
            warnings.warn(
                f"process pool unavailable ({pool_error!r}); "
                f"falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            remainder = [point for point in points if point.index not in finished]
            yield from SerialRuntime().execute(remainder, config)


#: Name → factory for the CLI and ``run_campaign(runtime="...")``.
RUNTIME_NAMES = ("serial", "pool", "dry")


def resolve_runtime(
    runtime: Union[str, Runtime, None], parallel: int
) -> Runtime:
    """Resolve ``run_campaign``'s runtime argument to a Runtime instance.

    ``None`` keeps the legacy contract: ``parallel > 1`` picks the pool,
    otherwise serial.  A string picks by name (``"pool"`` sizes itself from
    ``parallel`` when that is > 1, else from the CPU count).  Anything else
    must already be a runtime and is returned as-is.
    """
    if runtime is None:
        return LocalPoolRuntime(workers=parallel) if parallel > 1 else SerialRuntime()
    if isinstance(runtime, str):
        if runtime == "serial":
            return SerialRuntime()
        if runtime == "dry":
            return DryRunRuntime()
        if runtime == "pool":
            return LocalPoolRuntime(workers=parallel if parallel > 1 else None)
        raise ValueError(
            f"unknown runtime {runtime!r}; known runtimes: {list(RUNTIME_NAMES)}"
        )
    return runtime


__all__ = [
    "DryRunRuntime",
    "LocalPoolRuntime",
    "POOL_ERRORS",
    "PointCompletion",
    "RUNTIME_NAMES",
    "Runtime",
    "RuntimeConfig",
    "SerialRuntime",
    "backend_cache_info",
    "clear_backend_cache",
    "estimated_cost",
    "resolve_runtime",
    "run_point",
]
