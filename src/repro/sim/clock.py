"""Simulated clock.

The clock only moves forward.  Components that model service times (devices,
compute cost models) advance the clock or schedule events against it; nothing
in the library reads the wall clock when producing results.
"""

from __future__ import annotations


class SimClock:
    """A monotonically increasing simulated clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta: {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` if it is in the future.

        Advancing to a time in the past is a no-op (the clock never goes
        backwards); this makes it safe for several overlapping operations to
        each report their completion time.
        """
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, typically between independent experiments."""
        if start < 0:
            raise ValueError(f"clock cannot reset to negative time: {start}")
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.9f})"
