"""Deterministic random number helpers.

Experiments derive per-component generators from a single experiment seed so
that results are reproducible yet components do not accidentally share a
stream (which would couple, say, the workload generator and cache jitter).
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

SeedLike = Union[int, str]


def derive_seed(base_seed: int, *keys: SeedLike) -> int:
    """Derive a stable 63-bit seed from a base seed and a sequence of keys.

    The derivation is a SHA-256 hash of the textual representation, so it is
    stable across processes and Python versions (unlike ``hash()``).
    """
    material = ":".join([str(base_seed), *[str(key) for key in keys]])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def make_rng(base_seed: int, *keys: SeedLike) -> np.random.Generator:
    """Create a numpy ``Generator`` seeded from ``derive_seed``."""
    return np.random.default_rng(derive_seed(base_seed, *keys))
