"""A small discrete-event simulation core.

The IO engine and the fleet simulations use this to model concurrent
activities (outstanding IOs completing, hosts finishing warmup) against the
shared :class:`~repro.sim.clock.SimClock`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.clock import SimClock


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, sequence)`` so two events scheduled for the
    same instant fire in the order they were scheduled (FIFO), which keeps
    simulations deterministic.
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when its time comes."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects keyed by time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, time: float, callback: Callable[[], Any], payload: Any = None) -> Event:
        """Add an event at absolute simulated ``time``."""
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time: {time}")
        event = Event(time=time, sequence=next(self._counter), callback=callback, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or ``None`` when empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` when empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)


class Simulator:
    """Drives an :class:`EventQueue` against a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.queue = EventQueue()
        self._processed = 0

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(self, time: float, callback: Callable[[], Any], payload: Any = None) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule event in the past: {time} < {self.clock.now}"
            )
        return self.queue.schedule(time, callback, payload)

    def schedule_after(self, delay: float, callback: Callable[[], Any], payload: Any = None) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule event with negative delay: {delay}")
        return self.queue.schedule(self.clock.now + delay, callback, payload)

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.callback()
        self._processed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number of events run."""
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                break
            if not self.step():
                break
            executed += 1
        return executed
