"""Simulation kernel: simulated time, discrete events, units and RNG helpers.

Every latency/throughput figure produced by this repository comes from an
explicit simulated clock rather than wall-clock measurement, so results are
deterministic and laptop-scale while still exhibiting the queueing behaviour
(device saturation, IO/compute overlap) that the paper's design reacts to.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue, Simulator
from repro.sim.rng import derive_seed, make_rng
from repro.sim.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    TB,
    TIB,
    format_bytes,
    format_time,
)

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "Simulator",
    "derive_seed",
    "make_rng",
    "KB",
    "MB",
    "GB",
    "TB",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "format_bytes",
    "format_time",
]
