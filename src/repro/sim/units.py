"""Unit constants and formatting helpers.

All simulated time in this package is expressed in **seconds** (floats) and all
sizes in **bytes** (ints) unless a name explicitly says otherwise.  The
constants below exist so call sites can say ``4 * KIB`` or ``100 *
MICROSECOND`` instead of sprinkling magic numbers.
"""

from __future__ import annotations

# Decimal (SI) byte units -- used for capacities quoted the way vendors quote
# them (a "2 TB" SSD).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Binary byte units -- used for block sizes and memory allocations.
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024
TIB = 1024 * 1024 * 1024 * 1024

# Time units, in seconds.
SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9

#: NVMe logical block size used throughout the storage substrate.
BLOCK_SIZE = 4 * KIB


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a human readable binary suffix.

    >>> format_bytes(4096)
    '4.0 KiB'
    """
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


#: Suffix -> multiplier table used by :func:`parse_size`.
_SIZE_SUFFIXES = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "kib": KIB,
    "mib": MIB,
    "gib": GIB,
    "tib": TIB,
}


def parse_size(text: object) -> int:
    """Parse a byte count: a plain integer or a string like ``"4GiB"``.

    Accepts decimal (KB/MB/GB/TB) and binary (KiB/MiB/GiB/TiB) suffixes,
    case-insensitively and with optional whitespace before the suffix, so tier
    geometries can be written the way vendors quote them (``"2TB"``) or the
    way allocators think (``"8MiB"``).

    >>> parse_size("4KiB")
    4096
    >>> parse_size(512)
    512
    """
    if isinstance(text, bool):
        raise ValueError(f"not a byte size: {text!r}")
    if isinstance(text, int):
        return text
    if isinstance(text, float):
        if not text.is_integer():
            raise ValueError(f"byte sizes must be whole numbers: {text!r}")
        return int(text)
    if not isinstance(text, str):
        raise ValueError(f"not a byte size: {text!r}")
    stripped = text.strip().lower()
    for suffix, multiplier in sorted(_SIZE_SUFFIXES.items(), key=lambda kv: -len(kv[0])):
        if stripped.endswith(suffix):
            number = stripped[: -len(suffix)].strip()
            try:
                return int(float(number) * multiplier)
            except ValueError:
                break
    try:
        return int(stripped)
    except ValueError:
        raise ValueError(
            f"cannot parse byte size {text!r}; use an integer or a string like "
            f"'512MiB', '4GiB', '2TB'"
        ) from None


def format_time(seconds: float) -> str:
    """Render a duration with the most natural unit.

    >>> format_time(2.5e-05)
    '25.0 us'
    """
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= MILLISECOND:
        return f"{seconds / MILLISECOND:.1f} ms"
    if seconds >= MICROSECOND:
        return f"{seconds / MICROSECOND:.1f} us"
    return f"{seconds / NANOSECOND:.1f} ns"
