"""Unit constants and formatting helpers.

All simulated time in this package is expressed in **seconds** (floats) and all
sizes in **bytes** (ints) unless a name explicitly says otherwise.  The
constants below exist so call sites can say ``4 * KIB`` or ``100 *
MICROSECOND`` instead of sprinkling magic numbers.
"""

from __future__ import annotations

# Decimal (SI) byte units -- used for capacities quoted the way vendors quote
# them (a "2 TB" SSD).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Binary byte units -- used for block sizes and memory allocations.
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024
TIB = 1024 * 1024 * 1024 * 1024

# Time units, in seconds.
SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9

#: NVMe logical block size used throughout the storage substrate.
BLOCK_SIZE = 4 * KIB


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a human readable binary suffix.

    >>> format_bytes(4096)
    '4.0 KiB'
    """
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Render a duration with the most natural unit.

    >>> format_time(2.5e-05)
    '25.0 us'
    """
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= MILLISECOND:
        return f"{seconds / MILLISECOND:.1f} ms"
    if seconds >= MICROSECOND:
        return f"{seconds / MICROSECOND:.1f} us"
    return f"{seconds / NANOSECOND:.1f} ns"
