"""Metric collection and report formatting shared by tests, examples and benches."""

from repro.analysis.metrics import Histogram, MetricRegistry, RunningStat, percentile
from repro.analysis.reporting import format_series, format_table

__all__ = [
    "Histogram",
    "MetricRegistry",
    "RunningStat",
    "percentile",
    "format_table",
    "format_series",
]
