"""Plain-text table and series formatting used by the benchmark harnesses.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and easy to diff against
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

Cell = Union[str, int, float]


def _render_cell(value: Cell, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    float_fmt: str = ".3f",
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.0]]))
    a | b
    --+------
    1 | 2.000
    """
    rendered_rows: List[List[str]] = [
        [_render_cell(cell, float_fmt) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers: {row}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    points: Mapping[Cell, Cell] | Sequence[tuple],
    x_label: str = "x",
    y_label: str = "y",
    float_fmt: str = ".3f",
) -> str:
    """Render a named (x, y) series as a two column table (figure data)."""
    if isinstance(points, Mapping):
        pairs = list(points.items())
    else:
        pairs = list(points)
    return format_table([x_label, y_label], pairs, title=name, float_fmt=float_fmt)
