"""Lightweight metric primitives.

The serving and SDM layers record latencies, hit rates and throughput through
these classes so every experiment reports percentiles the same way the paper
does (p95/p99 latency, steady-state hit rate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np


def percentile(samples: Iterable[float], pct: float) -> float:
    """Return the ``pct`` percentile (0-100) of ``samples``.

    Raises ``ValueError`` for an empty sample set -- silently returning 0 has
    hidden more than one broken experiment.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("cannot compute a percentile of an empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    return float(np.percentile(values, pct))


@dataclass
class RunningStat:
    """Streaming mean/variance/min/max without retaining samples."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Combine two running stats (used when merging per-host metrics)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self


class Histogram:
    """Sample-retaining histogram with percentile queries.

    Latency distributions in these experiments are small enough (tens of
    thousands of queries) that retaining the raw samples is simpler and more
    accurate than bucketing.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self._samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(float(v) for v in values)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return float(np.mean(self._samples))

    def percentile(self, pct: float) -> float:
        return percentile(self._samples, pct)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> Dict[str, float]:
        """A dict of the headline statistics, convenient for report tables."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": float(np.max(self._samples)),
        }


@dataclass
class MetricRegistry:
    """A named collection of counters, gauges and histograms."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def incr(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        self.histograms[name].add(value)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def gauge(self, name: str, default: Optional[float] = None) -> float:
        if name not in self.gauges:
            if default is None:
                raise KeyError(f"gauge {name!r} has not been set")
            return default
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            raise KeyError(f"histogram {name!r} has no samples")
        return self.histograms[name]

    def ratio(self, numerator: str, denominator: str) -> float:
        """Convenience for hit-rate style counters; 0 when denominator is 0."""
        denom = self.counters.get(denominator, 0.0)
        if denom == 0.0:
            return 0.0
        return self.counters.get(numerator, 0.0) / denom

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
