"""Post-training pruning of embedding tables.

Pruning removes rows whose values are close to zero and introduces a mapping
tensor from unpruned index space to the compacted pruned space (section 4.5).
The mapping tensor costs ``num_unpruned_rows * index_bytes`` of memory and,
when the pruned table lives on SM, that memory competes with the FM row
cache -- which is what motivates de-pruning at load time (Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dlrm.embedding import EmbeddingTable, EmbeddingTableSpec

#: Sentinel in the mapping tensor for a pruned (removed) row.
PRUNED = -1


@dataclass
class PrunedEmbeddingTable:
    """A pruned table: compacted rows plus the unpruned->pruned mapping."""

    original_spec: EmbeddingTableSpec
    table: EmbeddingTable
    mapping: np.ndarray
    index_bytes: int = 4

    def __post_init__(self) -> None:
        if self.mapping.shape != (self.original_spec.num_rows,):
            raise ValueError(
                f"mapping tensor must have one entry per unpruned row "
                f"({self.original_spec.num_rows}), got shape {self.mapping.shape}"
            )
        if self.index_bytes not in (4, 8):
            raise ValueError(f"index_bytes must be 4 or 8: {self.index_bytes}")
        kept = self.mapping[self.mapping != PRUNED]
        if kept.size != self.table.spec.num_rows:
            raise ValueError(
                f"mapping references {kept.size} kept rows but the pruned table has "
                f"{self.table.spec.num_rows}"
            )

    @property
    def mapping_tensor_bytes(self) -> int:
        """FM bytes consumed by the mapping tensor (kept in FM per the paper)."""
        return int(self.mapping.size) * self.index_bytes

    @property
    def num_pruned_rows(self) -> int:
        return int(np.count_nonzero(self.mapping == PRUNED))

    @property
    def pruned_fraction(self) -> float:
        return self.num_pruned_rows / self.mapping.size

    def lookup_dense(self, indices: Sequence[int]) -> np.ndarray:
        """Dequantised rows addressed in the *unpruned* index space.

        Pruned rows dequantise to zero vectors, matching serving semantics.
        """
        idx = np.asarray(list(indices), dtype=np.int64)
        if np.any(idx < 0) or np.any(idx >= self.mapping.size):
            raise IndexError(
                f"indices out of range [0, {self.mapping.size}) for pruned table "
                f"{self.original_spec.name!r}"
            )
        mapped = self.mapping[idx]
        out = np.zeros((idx.size, self.original_spec.dim), dtype=np.float32)
        live = mapped != PRUNED
        if np.any(live):
            out[live] = self.table.lookup_dense(mapped[live])
        return out

    def bag(self, indices: Sequence[int]) -> np.ndarray:
        """Sum-pooled vector over unpruned-space ``indices``."""
        return self.lookup_dense(indices).sum(axis=0)


def prune_table(
    table: EmbeddingTable,
    prune_fraction: float,
    seed: int = 0,
    index_bytes: int = 4,
) -> PrunedEmbeddingTable:
    """Prune the rows with the smallest L2 norm.

    ``prune_fraction`` of the rows (those closest to zero, as in the paper's
    heuristic) are removed; the rest are compacted and a mapping tensor is
    produced.  ``seed`` only breaks ties deterministically.
    """
    if not 0.0 <= prune_fraction < 1.0:
        raise ValueError(f"prune_fraction must be in [0, 1): {prune_fraction}")
    spec = table.spec
    dense = table.lookup_dense(range(spec.num_rows))
    norms = np.linalg.norm(dense, axis=1)
    num_pruned = int(round(prune_fraction * spec.num_rows))
    num_kept = spec.num_rows - num_pruned
    if num_kept <= 0:
        raise ValueError(
            f"pruning {prune_fraction:.2%} of {spec.num_rows} rows leaves no rows"
        )
    # argsort is deterministic; add a tiny index-based epsilon so exact ties
    # (e.g. all-zero rows) are broken the same way on every platform.
    order = np.argsort(norms + np.arange(spec.num_rows) * 1e-12)
    pruned_rows = set(order[:num_pruned].tolist())

    mapping = np.full(spec.num_rows, PRUNED, dtype=np.int64)
    kept_indices = [i for i in range(spec.num_rows) if i not in pruned_rows]
    for new_index, original_index in enumerate(kept_indices):
        mapping[original_index] = new_index

    pruned_spec = EmbeddingTableSpec(
        name=f"{spec.name}/pruned",
        num_rows=num_kept,
        dim=spec.dim,
        quant_bits=spec.quant_bits,
        is_user=spec.is_user,
        avg_pooling_factor=spec.avg_pooling_factor,
        zipf_alpha=spec.zipf_alpha,
        pruned_fraction=prune_fraction,
    )
    pruned_table = EmbeddingTable(pruned_spec, table.data[kept_indices])
    return PrunedEmbeddingTable(
        original_spec=spec,
        table=pruned_table,
        mapping=mapping,
        index_bytes=index_bytes,
    )
