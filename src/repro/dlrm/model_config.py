"""Model specifications for the paper's target models (Table 6).

The paper evaluates three production-representative models: M1 (143 GB,
CPU-served), M2 (150 GB, accelerator-served, scale-out candidate) and M3
(1 TB, a projected future model used for the multi-tenancy study).  A
:class:`ModelSpec` captures the analytic characteristics the experiments need
(table counts, dimension ranges, pooling factors, batch sizes, MLP shape) and
can both (a) generate per-table profiles for capacity/bandwidth analysis and
(b) build a scaled-down concrete :class:`~repro.dlrm.model.DLRMModel` whose
row counts fit in laptop memory while preserving the paper's distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.dlrm.embedding import EmbeddingTable, EmbeddingTableSpec
from repro.dlrm.mlp import MLP
from repro.dlrm.model import DLRMModel
from repro.dlrm.quantization import QUANT_PARAM_BYTES
from repro.sim.rng import make_rng
from repro.sim.units import GB


@dataclass(frozen=True)
class TableGroupSpec:
    """Aggregate description of one group (user or item) of embedding tables."""

    num_tables: int
    row_bytes_min: int
    row_bytes_max: int
    row_bytes_avg: int
    avg_pooling_factor: float
    batch_size: int
    capacity_bytes: float

    def __post_init__(self) -> None:
        if self.num_tables <= 0:
            raise ValueError(f"num_tables must be positive: {self.num_tables}")
        if not self.row_bytes_min <= self.row_bytes_avg <= self.row_bytes_max:
            raise ValueError(
                "row_bytes_avg must lie within [row_bytes_min, row_bytes_max]: "
                f"{self.row_bytes_min} <= {self.row_bytes_avg} <= {self.row_bytes_max}"
            )
        if self.avg_pooling_factor <= 0:
            raise ValueError(f"avg_pooling_factor must be positive: {self.avg_pooling_factor}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive: {self.batch_size}")
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive: {self.capacity_bytes}")


@dataclass(frozen=True)
class TableProfile:
    """Analytic profile of one table (no materialised data).

    ``bytes_per_query`` is the per-query read volume including the batch
    factor: user tables are read once per query, item tables once per ranked
    item.
    """

    spec: EmbeddingTableSpec
    batch_size: int

    @property
    def size_bytes(self) -> int:
        return self.spec.size_bytes

    @property
    def bytes_per_query(self) -> float:
        return self.batch_size * self.spec.avg_pooling_factor * self.spec.row_bytes

    @property
    def lookups_per_query(self) -> float:
        return self.batch_size * self.spec.avg_pooling_factor


@dataclass(frozen=True)
class ModelSpec:
    """Analytic description of a target model (one column of Table 6)."""

    name: str
    num_parameters: float
    size_bytes: float
    user_tables: TableGroupSpec
    item_tables: TableGroupSpec
    num_mlp_layers: int
    avg_mlp_size: int
    quant_bits: int = 8
    user_zipf_alpha: float = 0.95
    item_zipf_alpha: float = 1.15

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive: {self.size_bytes}")
        if self.num_mlp_layers <= 0:
            raise ValueError(f"num_mlp_layers must be positive: {self.num_mlp_layers}")
        if self.avg_mlp_size <= 0:
            raise ValueError(f"avg_mlp_size must be positive: {self.avg_mlp_size}")

    # ------------------------------------------------------------ aggregates
    @property
    def num_tables(self) -> int:
        return self.user_tables.num_tables + self.item_tables.num_tables

    @property
    def user_capacity_fraction(self) -> float:
        """Fraction of embedding capacity contributed by user tables (paper: >2/3)."""
        return self.user_tables.capacity_bytes / (
            self.user_tables.capacity_bytes + self.item_tables.capacity_bytes
        )

    @property
    def user_batch(self) -> int:
        return self.user_tables.batch_size

    @property
    def item_batch(self) -> int:
        return self.item_tables.batch_size

    # -------------------------------------------------------------- profiles
    def _group_profiles(
        self, group: TableGroupSpec, is_user: bool, alpha: float, seed: int, prefix: str
    ) -> List[TableProfile]:
        rng = make_rng(seed, self.name, prefix)
        # Draw per-table row-byte sizes from a lognormal clipped to the group
        # range and rescaled so the mean matches the quoted average.
        raw = rng.lognormal(mean=0.0, sigma=0.6, size=group.num_tables)
        raw = raw / raw.mean() * group.row_bytes_avg
        row_bytes = np.clip(raw, group.row_bytes_min, group.row_bytes_max)

        # Per-table capacity share is heavy tailed (a few tables dominate the
        # model size, as in Figure 1), then scaled so the group total matches.
        share = rng.pareto(1.2, size=group.num_tables) + 0.05
        share = share / share.sum() * group.capacity_bytes

        # Pooling factors vary around the group average.
        pooling = np.clip(
            rng.gamma(shape=2.0, scale=group.avg_pooling_factor / 2.0, size=group.num_tables),
            1.0,
            None,
        )

        profiles: List[TableProfile] = []
        for index in range(group.num_tables):
            rb = int(round(row_bytes[index]))
            rb = max(rb, QUANT_PARAM_BYTES + 1)
            dim = max(rb - QUANT_PARAM_BYTES, 1) if self.quant_bits == 8 else max((rb - QUANT_PARAM_BYTES) * 2, 1)
            num_rows = max(int(share[index] // rb), 1)
            spec = EmbeddingTableSpec(
                name=f"{self.name}/{prefix}_{index:04d}",
                num_rows=num_rows,
                dim=dim,
                quant_bits=self.quant_bits,
                is_user=is_user,
                avg_pooling_factor=float(pooling[index]),
                zipf_alpha=alpha,
            )
            profiles.append(TableProfile(spec=spec, batch_size=group.batch_size))
        return profiles

    def table_profiles(self, seed: int = 0) -> List[TableProfile]:
        """Generate per-table analytic profiles consistent with the spec."""
        user = self._group_profiles(
            self.user_tables, True, self.user_zipf_alpha, seed, "user"
        )
        item = self._group_profiles(
            self.item_tables, False, self.item_zipf_alpha, seed, "item"
        )
        return user + item

    def mlp_layer_sizes(self) -> List[int]:
        """A plausible MLP shape matching the layer count and average width."""
        return [self.avg_mlp_size] * self.num_mlp_layers


# --------------------------------------------------------------------------
# Table 6 of the paper.
# --------------------------------------------------------------------------

M1_SPEC = ModelSpec(
    name="M1",
    num_parameters=143e9,
    size_bytes=143 * GB,
    user_tables=TableGroupSpec(
        num_tables=61,
        row_bytes_min=90,
        row_bytes_max=172,
        row_bytes_avg=130,
        avg_pooling_factor=42.0,
        batch_size=1,
        capacity_bytes=100 * GB,
    ),
    item_tables=TableGroupSpec(
        num_tables=30,
        row_bytes_min=90,
        row_bytes_max=172,
        row_bytes_avg=130,
        avg_pooling_factor=9.0,
        batch_size=50,
        capacity_bytes=43 * GB,
    ),
    num_mlp_layers=31,
    avg_mlp_size=300,
)

M2_SPEC = ModelSpec(
    name="M2",
    num_parameters=450e9,
    size_bytes=150 * GB,
    user_tables=TableGroupSpec(
        num_tables=450,
        row_bytes_min=32,
        row_bytes_max=288,
        row_bytes_avg=64,
        avg_pooling_factor=25.0,
        batch_size=1,
        capacity_bytes=100 * GB,
    ),
    item_tables=TableGroupSpec(
        num_tables=280,
        row_bytes_min=32,
        row_bytes_max=288,
        row_bytes_avg=48,
        avg_pooling_factor=14.0,
        batch_size=150,
        capacity_bytes=50 * GB,
    ),
    num_mlp_layers=43,
    avg_mlp_size=735,
)

M3_SPEC = ModelSpec(
    name="M3",
    num_parameters=5e12,
    size_bytes=1000 * GB,
    user_tables=TableGroupSpec(
        num_tables=1800,
        row_bytes_min=32,
        row_bytes_max=512,
        row_bytes_avg=192,
        avg_pooling_factor=26.0,
        batch_size=1,
        capacity_bytes=670 * GB,
    ),
    item_tables=TableGroupSpec(
        num_tables=900,
        row_bytes_min=32,
        row_bytes_max=512,
        row_bytes_avg=192,
        avg_pooling_factor=26.0,
        batch_size=1000,
        capacity_bytes=330 * GB,
    ),
    num_mlp_layers=35,
    avg_mlp_size=6000,
)

ALL_MODEL_SPECS: Dict[str, ModelSpec] = {
    spec.name: spec for spec in (M1_SPEC, M2_SPEC, M3_SPEC)
}


def figure1_model_spec() -> ModelSpec:
    """The 140 GB / 734-table model of Figure 1 (445 user tables, 100 GB user)."""
    return ModelSpec(
        name="Fig1Model",
        num_parameters=140e9,
        size_bytes=140 * GB,
        user_tables=TableGroupSpec(
            num_tables=445,
            row_bytes_min=32,
            row_bytes_max=288,
            row_bytes_avg=96,
            avg_pooling_factor=20.0,
            batch_size=1,
            capacity_bytes=100 * GB,
        ),
        item_tables=TableGroupSpec(
            num_tables=289,
            row_bytes_min=32,
            row_bytes_max=288,
            row_bytes_avg=96,
            avg_pooling_factor=15.0,
            batch_size=100,
            capacity_bytes=40 * GB,
        ),
        num_mlp_layers=30,
        avg_mlp_size=512,
    )


# --------------------------------------------------------------------------
# Scaled concrete models for end-to-end simulation.
# --------------------------------------------------------------------------


def build_scaled_model(
    spec: ModelSpec,
    max_tables_per_group: int = 8,
    max_rows_per_table: int = 2048,
    dense_dim: int = 13,
    bottom_out_dim: int = 16,
    mlp_width: int = 64,
    item_batch: Optional[int] = None,
    seed: int = 0,
) -> DLRMModel:
    """Materialise a laptop-scale DLRM that mirrors ``spec``'s structure.

    Row counts, table counts and MLP widths are scaled down so the model fits
    comfortably in memory and queries execute in microseconds of host time,
    while the relative structure (user vs item tables, per-table dims and
    pooling factors, batched item lookups) follows the spec.  The scaled model
    is what the end-to-end SDM experiments run against; capacity-level
    results use the analytic :meth:`ModelSpec.table_profiles` instead.
    """
    if max_tables_per_group <= 0:
        raise ValueError(f"max_tables_per_group must be positive: {max_tables_per_group}")
    if max_rows_per_table <= 0:
        raise ValueError(f"max_rows_per_table must be positive: {max_rows_per_table}")

    profiles = spec.table_profiles(seed=seed)
    user_profiles = [p for p in profiles if p.spec.is_user][:max_tables_per_group]
    item_profiles = [p for p in profiles if not p.spec.is_user][:max_tables_per_group]
    if not user_profiles or not item_profiles:
        raise ValueError(f"model spec {spec.name!r} must have both user and item tables")

    tables: Dict[str, EmbeddingTable] = {}
    scaled_specs: List[EmbeddingTableSpec] = []
    for profile in user_profiles + item_profiles:
        table_spec = profile.spec
        scaled_rows = min(table_spec.num_rows, max_rows_per_table)
        # Keep pooling factors sane relative to the scaled-down row count.
        scaled_pf = min(table_spec.avg_pooling_factor, max(scaled_rows / 4.0, 1.0))
        scaled = EmbeddingTableSpec(
            name=table_spec.name,
            num_rows=scaled_rows,
            dim=table_spec.dim,
            quant_bits=table_spec.quant_bits,
            is_user=table_spec.is_user,
            avg_pooling_factor=scaled_pf,
            zipf_alpha=table_spec.zipf_alpha,
        )
        scaled_specs.append(scaled)
        tables[scaled.name] = EmbeddingTable.random(scaled, seed=seed)

    total_embedding_dim = sum(s.dim for s in scaled_specs)
    bottom_mlp = MLP([dense_dim, mlp_width, bottom_out_dim], seed=seed, name=f"{spec.name}/bottom")
    top_mlp = MLP(
        [bottom_out_dim + total_embedding_dim, mlp_width, mlp_width, 1],
        seed=seed,
        name=f"{spec.name}/top",
    )
    return DLRMModel(
        name=spec.name,
        bottom_mlp=bottom_mlp,
        top_mlp=top_mlp,
        tables=tables,
        dense_dim=dense_dim,
        item_batch=item_batch if item_batch is not None else spec.item_batch,
    )
