"""Feature interaction between the dense projection and pooled embeddings."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def concat_interaction(dense: np.ndarray, pooled_embeddings: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate the dense vector with all pooled embedding vectors."""
    dense = np.asarray(dense, dtype=np.float32)
    if dense.ndim != 1:
        raise ValueError(f"dense vector must be 1-D, got shape {dense.shape}")
    parts = [dense] + [np.asarray(vec, dtype=np.float32).reshape(-1) for vec in pooled_embeddings]
    return np.concatenate(parts)


def dot_interaction(dense: np.ndarray, pooled_embeddings: Sequence[np.ndarray]) -> np.ndarray:
    """DLRM-style pairwise dot-product interaction.

    All pooled embeddings and the dense vector must share the same dimension;
    the output is the dense vector concatenated with the upper triangle of
    the pairwise dot-product matrix.
    """
    dense = np.asarray(dense, dtype=np.float32)
    if dense.ndim != 1:
        raise ValueError(f"dense vector must be 1-D, got shape {dense.shape}")
    vectors = [dense] + [np.asarray(vec, dtype=np.float32).reshape(-1) for vec in pooled_embeddings]
    dims = {vec.shape[0] for vec in vectors}
    if len(dims) != 1:
        raise ValueError(
            f"dot interaction requires equal dims for dense and pooled embeddings, got {sorted(dims)}"
        )
    stacked = np.stack(vectors)
    products = stacked @ stacked.T
    upper = products[np.triu_indices(len(vectors), k=1)]
    return np.concatenate([dense, upper.astype(np.float32)])
