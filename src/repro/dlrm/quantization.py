"""Row-wise quantisation of embedding tables.

Inference embedding tables are served row-wise quantised (Guan et al., 2019):
each row stores a float32 scale and bias followed by int8 (or packed int4)
codes.  A 64-element int8 row therefore occupies 64 + 8 = 72 bytes, matching
the sizes the paper quotes.  This module converts between float rows and the
serialized byte layout used both in fast memory and on the SM tier.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Bytes of quantisation parameters (float32 scale + float32 bias) per row.
QUANT_PARAM_BYTES = 8

SUPPORTED_BITS = (4, 8)


def quantized_row_bytes(dim: int, bits: int = 8) -> int:
    """Serialized size in bytes of one quantised row of ``dim`` elements."""
    if dim <= 0:
        raise ValueError(f"dim must be positive: {dim}")
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}: {bits}")
    if bits == 8:
        payload = dim
    else:
        payload = -(-dim // 2)  # two int4 codes per byte
    return payload + QUANT_PARAM_BYTES


def _quantize_matrix(values: np.ndarray, bits: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (codes, scales, biases) for a 2-D float matrix."""
    levels = (1 << bits) - 1
    row_min = values.min(axis=1)
    row_max = values.max(axis=1)
    span = row_max - row_min
    # Constant rows quantise to code 0 with scale 0 and bias == the constant.
    scale = np.where(span > 0, span / levels, 0.0).astype(np.float32)
    bias = row_min.astype(np.float32)
    safe_scale = np.where(scale > 0, scale, 1.0)
    codes = np.rint((values - bias[:, None]) / safe_scale[:, None])
    codes = np.clip(codes, 0, levels).astype(np.uint8)
    return codes, scale, bias


def quantize_rows(values: np.ndarray, bits: int = 8) -> np.ndarray:
    """Quantise a float matrix row-wise into the serialized byte layout.

    Parameters
    ----------
    values:
        ``(num_rows, dim)`` float array.
    bits:
        4 or 8.

    Returns
    -------
    ``(num_rows, quantized_row_bytes(dim, bits))`` uint8 array.
    """
    values = np.asarray(values, dtype=np.float32)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {values.shape}")
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}: {bits}")
    num_rows, dim = values.shape
    codes, scale, bias = _quantize_matrix(values, bits)

    if bits == 4:
        if dim % 2 == 1:
            codes = np.concatenate(
                [codes, np.zeros((num_rows, 1), dtype=np.uint8)], axis=1
            )
        low = codes[:, 0::2]
        high = codes[:, 1::2]
        payload = (low | (high << 4)).astype(np.uint8)
    else:
        payload = codes

    out = np.empty((num_rows, quantized_row_bytes(dim, bits)), dtype=np.uint8)
    out[:, :4] = scale.view(np.uint8).reshape(num_rows, 4)
    out[:, 4:8] = bias.view(np.uint8).reshape(num_rows, 4)
    out[:, 8:] = payload
    return out


def dequantize_row(row_bytes: bytes | np.ndarray, dim: int, bits: int = 8) -> np.ndarray:
    """Dequantise one serialized row back to a float32 vector of ``dim``."""
    raw = np.frombuffer(bytes(row_bytes), dtype=np.uint8)
    expected = quantized_row_bytes(dim, bits)
    if raw.size != expected:
        raise ValueError(
            f"row has {raw.size} bytes but a {dim}-dim {bits}-bit row needs {expected}"
        )
    scale = raw[:4].view(np.float32)[0]
    bias = raw[4:8].view(np.float32)[0]
    payload = raw[8:]
    if bits == 8:
        codes = payload[:dim].astype(np.float32)
    else:
        low = (payload & 0x0F).astype(np.float32)
        high = ((payload >> 4) & 0x0F).astype(np.float32)
        codes = np.empty(payload.size * 2, dtype=np.float32)
        codes[0::2] = low
        codes[1::2] = high
        codes = codes[:dim]
    return codes * float(scale) + float(bias)


def dequantize_rows(rows: np.ndarray, dim: int, bits: int = 8) -> np.ndarray:
    """Vectorised dequantisation of a ``(num_rows, row_bytes)`` uint8 array."""
    rows = np.asarray(rows, dtype=np.uint8)
    if rows.ndim == 1:
        rows = rows[None, :]
    expected = quantized_row_bytes(dim, bits)
    if rows.shape[1] != expected:
        raise ValueError(
            f"rows have {rows.shape[1]} bytes but a {dim}-dim {bits}-bit row needs {expected}"
        )
    scale = rows[:, :4].copy().view(np.float32).reshape(-1)
    bias = rows[:, 4:8].copy().view(np.float32).reshape(-1)
    payload = rows[:, 8:]
    if bits == 8:
        codes = payload[:, :dim].astype(np.float32)
    else:
        low = (payload & 0x0F).astype(np.float32)
        high = ((payload >> 4) & 0x0F).astype(np.float32)
        codes = np.empty((rows.shape[0], payload.shape[1] * 2), dtype=np.float32)
        codes[:, 0::2] = low
        codes[:, 1::2] = high
        codes = codes[:, :dim]
    return codes * scale[:, None] + bias[:, None]
