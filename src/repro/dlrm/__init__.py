"""DLRM substrate: embedding tables, quantisation, pruning, MLPs, inference.

Implements the model architecture of Naumov et al. (2019) as used by the
paper: a bottom MLP over dense features, embedding tables materialising
categorical features (split into *user* and *item* tables), a feature
interaction, and a top MLP producing the ranking score.  Embedding rows are
stored row-wise quantised (int8/int4) exactly as they would be laid out on
the SM tier, so the SDM read path returns bytes this package can dequantise
and pool.
"""

from repro.dlrm.quantization import (
    QUANT_PARAM_BYTES,
    dequantize_row,
    dequantize_rows,
    quantize_rows,
    quantized_row_bytes,
)
from repro.dlrm.embedding import EmbeddingTable, EmbeddingTableSpec
from repro.dlrm.pruning import PrunedEmbeddingTable, prune_table
from repro.dlrm.mlp import MLP
from repro.dlrm.interaction import concat_interaction, dot_interaction
from repro.dlrm.model import DLRMModel
from repro.dlrm.model_config import (
    M1_SPEC,
    M2_SPEC,
    M3_SPEC,
    ModelSpec,
    TableProfile,
    build_scaled_model,
    figure1_model_spec,
)
from repro.dlrm.inference import (
    ComputeSpec,
    EmbeddingBackend,
    InMemoryBackend,
    InferenceEngine,
    Query,
    QueryResult,
)

__all__ = [
    "QUANT_PARAM_BYTES",
    "quantize_rows",
    "dequantize_row",
    "dequantize_rows",
    "quantized_row_bytes",
    "EmbeddingTable",
    "EmbeddingTableSpec",
    "PrunedEmbeddingTable",
    "prune_table",
    "MLP",
    "concat_interaction",
    "dot_interaction",
    "DLRMModel",
    "ModelSpec",
    "TableProfile",
    "M1_SPEC",
    "M2_SPEC",
    "M3_SPEC",
    "build_scaled_model",
    "figure1_model_spec",
    "ComputeSpec",
    "EmbeddingBackend",
    "InMemoryBackend",
    "InferenceEngine",
    "Query",
    "QueryResult",
]
