"""Inference engine with pluggable embedding backends.

The key structural property the paper exploits (section 2.2) is that user
embeddings and item embeddings execute independently, and only the top MLP
depends on both: as long as fetching the user embeddings from slow memory
finishes no later than the item-side work, SM latency is hidden from the end
to end query latency (Equation 3/4).  The engine models exactly that overlap
and produces both the numerical scores and a latency breakdown.

Backends implement :class:`EmbeddingBackend`; the DRAM reference backend
lives here and the SDM backend in :mod:`repro.core.sdm`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dlrm.embedding import EmbeddingTable
from repro.dlrm.model import DLRMModel


@dataclass(frozen=True)
class ComputeSpec:
    """Host (or accelerator) compute characteristics used for cost modelling.

    Attributes
    ----------
    flops_per_second:
        Dense compute throughput available to the MLPs.
    memory_bandwidth:
        Fast-memory bandwidth used for embedding reads served from DRAM/HBM.
    per_lookup_overhead:
        Fixed host cost per embedding row lookup (hashing, bounds checks).
    dequant_bytes_per_second:
        Throughput of dequantisation + pooling over quantised bytes.
    """

    flops_per_second: float = 2.0e12
    memory_bandwidth: float = 80.0e9
    per_lookup_overhead: float = 2.0e-7
    dequant_bytes_per_second: float = 20.0e9

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0:
            raise ValueError("flops_per_second must be positive")
        if self.memory_bandwidth <= 0:
            raise ValueError("memory_bandwidth must be positive")
        if self.per_lookup_overhead < 0:
            raise ValueError("per_lookup_overhead must be non-negative")
        if self.dequant_bytes_per_second <= 0:
            raise ValueError("dequant_bytes_per_second must be positive")

    def mlp_time(self, flops: float) -> float:
        return flops / self.flops_per_second

    def embedding_read_time(self, num_lookups: int, row_bytes: int) -> float:
        """Time to read + dequantise + pool ``num_lookups`` rows from FM."""
        total_bytes = num_lookups * row_bytes
        return (
            num_lookups * self.per_lookup_overhead
            + total_bytes / self.memory_bandwidth
            + total_bytes / self.dequant_bytes_per_second
        )


@dataclass
class Query:
    """One inference query: a user plus a batch of candidate items.

    ``user_indices`` maps user-table names to the index list for this user;
    ``item_indices`` maps item-table names to one index list per candidate
    item.  ``dense_features`` feed the bottom MLP.
    """

    query_id: int
    user_id: int
    dense_features: np.ndarray
    user_indices: Dict[str, List[int]]
    item_indices: Dict[str, List[List[int]]]

    @property
    def item_batch(self) -> int:
        if not self.item_indices:
            return 0
        sizes = {len(per_item) for per_item in self.item_indices.values()}
        if len(sizes) != 1:
            raise ValueError(
                f"query {self.query_id}: item tables disagree on batch size: {sorted(sizes)}"
            )
        return sizes.pop()

    def total_user_lookups(self) -> int:
        return sum(len(indices) for indices in self.user_indices.values())

    def total_item_lookups(self) -> int:
        return sum(
            sum(len(indices) for indices in per_item)
            for per_item in self.item_indices.values()
        )


@dataclass
class QueryResult:
    """Scores plus latency breakdown for one query."""

    query_id: int
    scores: np.ndarray
    latency: float
    bottom_mlp_time: float
    user_embedding_time: float
    item_embedding_time: float
    top_mlp_time: float
    user_sm_ios: int = 0
    user_cache_hits: int = 0
    user_cache_lookups: int = 0

    @property
    def embedding_time(self) -> float:
        """Time of the embedding phase: user and item execute independently."""
        return max(self.user_embedding_time, self.item_embedding_time)


class EmbeddingBackend(abc.ABC):
    """Serves pooled embeddings for a set of tables.

    ``start_time`` and the returned completion time are simulated seconds;
    implementations decide whether lookups for different tables overlap.
    """

    @abc.abstractmethod
    def pooled_embeddings(
        self,
        requests: Mapping[str, Sequence[int]],
        start_time: float,
    ) -> Tuple[Dict[str, np.ndarray], float]:
        """Return ({table: pooled vector}, completion_time) for one sample."""

    def on_query_complete(self) -> None:
        """Hook called once per query (used for per-query statistics)."""


class InMemoryBackend(EmbeddingBackend):
    """Reference backend: every table lives in fast memory (DRAM/HBM)."""

    def __init__(self, tables: Mapping[str, EmbeddingTable], compute: ComputeSpec) -> None:
        self.tables = dict(tables)
        self.compute = compute

    def restore_pristine(self) -> None:
        """Backend-reuse contract (:mod:`repro.runtime.runtimes`): serving
        never mutates this backend, so a reused instance is already pristine."""
        return None

    def pooled_embeddings(
        self,
        requests: Mapping[str, Sequence[int]],
        start_time: float,
    ) -> Tuple[Dict[str, np.ndarray], float]:
        pooled: Dict[str, np.ndarray] = {}
        elapsed = 0.0
        for table_name, indices in requests.items():
            if table_name not in self.tables:
                raise KeyError(f"backend has no table {table_name!r}")
            table = self.tables[table_name]
            pooled[table_name] = table.bag(indices)
            elapsed += self.compute.embedding_read_time(len(indices), table.spec.row_bytes)
        return pooled, start_time + elapsed


class InferenceEngine:
    """Executes queries against a DLRM with separate user/item backends."""

    def __init__(
        self,
        model: DLRMModel,
        compute: ComputeSpec,
        user_backend: EmbeddingBackend,
        item_backend: Optional[EmbeddingBackend] = None,
    ) -> None:
        self.model = model
        self.compute = compute
        self.user_backend = user_backend
        self.item_backend = (
            item_backend
            if item_backend is not None
            else InMemoryBackend(model.tables, compute)
        )

    def run_query(self, query: Query, start_time: float = 0.0) -> QueryResult:
        """Execute one query and return scores plus the latency breakdown."""
        item_batch = query.item_batch
        if item_batch == 0:
            raise ValueError(f"query {query.query_id} has no candidate items")

        # Bottom MLP over the dense features (once per query).
        bottom_time = self.compute.mlp_time(self.model.bottom_mlp.flops_per_sample())

        # User-side embeddings: fetched once, broadcast to every item.  These
        # are the tables the SDM backend may serve from slow memory.
        user_pooled, user_done = self.user_backend.pooled_embeddings(
            query.user_indices, start_time + bottom_time
        )
        user_time = user_done - (start_time + bottom_time)

        # Item-side embeddings: one lookup set per candidate item, executed
        # independently of the user side.
        item_pooled_per_item: List[Dict[str, np.ndarray]] = []
        item_cursor = start_time + bottom_time
        for item_position in range(item_batch):
            per_item_request = {
                table_name: per_item[item_position]
                for table_name, per_item in query.item_indices.items()
            }
            pooled, item_cursor = self.item_backend.pooled_embeddings(
                per_item_request, item_cursor
            )
            item_pooled_per_item.append(pooled)
        item_time = item_cursor - (start_time + bottom_time)

        # Top MLP: depends on both sides, so it starts when the slower side
        # finishes (Equation 3 of the paper).
        embedding_time = max(user_time, item_time)
        top_flops = self.model.top_mlp.flops_per_sample() * item_batch
        top_time = self.compute.mlp_time(top_flops)

        scores = np.empty(item_batch, dtype=np.float32)
        for item_position in range(item_batch):
            pooled = dict(user_pooled)
            pooled.update(item_pooled_per_item[item_position])
            scores[item_position] = self.model.score(query.dense_features, pooled)

        latency = bottom_time + embedding_time + top_time
        self.user_backend.on_query_complete()
        return QueryResult(
            query_id=query.query_id,
            scores=scores,
            latency=latency,
            bottom_mlp_time=bottom_time,
            user_embedding_time=user_time,
            item_embedding_time=item_time,
            top_mlp_time=top_time,
        )

    def run_queries(self, queries: Sequence[Query], start_time: float = 0.0) -> List[QueryResult]:
        """Run queries back-to-back (closed loop), advancing simulated time."""
        results: List[QueryResult] = []
        cursor = start_time
        for query in queries:
            result = self.run_query(query, cursor)
            cursor += result.latency
            results.append(result)
        return results
