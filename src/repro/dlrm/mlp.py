"""Multi-layer perceptron used for the bottom and top interaction components."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.sim.rng import make_rng


class MLP:
    """A fully connected ReLU network with a linear final layer.

    Weights are initialised deterministically from the ``seed`` so the same
    model produces the same outputs run-to-run -- this is what lets the tests
    assert that SDM-served inference is bit-identical to DRAM-only inference.
    """

    def __init__(self, layer_sizes: Sequence[int], seed: int = 0, name: str = "mlp") -> None:
        sizes = [int(s) for s in layer_sizes]
        if len(sizes) < 2:
            raise ValueError(f"MLP needs at least an input and output size: {sizes}")
        if any(s <= 0 for s in sizes):
            raise ValueError(f"all layer sizes must be positive: {sizes}")
        self.name = name
        self.layer_sizes = sizes
        rng = make_rng(seed, "mlp", name)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)).astype(np.float32))
            self.biases.append(np.zeros(fan_out, dtype=np.float32))

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    @property
    def input_dim(self) -> int:
        return self.layer_sizes[0]

    @property
    def output_dim(self) -> int:
        return self.layer_sizes[-1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the network on a ``(batch, input_dim)`` or ``(input_dim,)`` array."""
        out = np.asarray(x, dtype=np.float32)
        squeeze = out.ndim == 1
        if squeeze:
            out = out[None, :]
        if out.shape[1] != self.input_dim:
            raise ValueError(
                f"MLP {self.name!r} expects input dim {self.input_dim}, got {out.shape[1]}"
            )
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            out = out @ weight + bias
            if index < self.num_layers - 1:
                np.maximum(out, 0.0, out=out)
        return out[0] if squeeze else out

    def flops_per_sample(self) -> int:
        """Multiply-accumulate FLOPs for one input sample."""
        return int(sum(2 * w.shape[0] * w.shape[1] for w in self.weights))

    def num_parameters(self) -> int:
        return int(sum(w.size + b.size for w, b in zip(self.weights, self.biases)))

    def __repr__(self) -> str:
        return f"MLP(name={self.name!r}, layers={self.layer_sizes})"
