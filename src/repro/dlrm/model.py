"""The DLRM model: bottom MLP, embeddings, interaction, top MLP (Figure 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.dlrm.embedding import EmbeddingTable, EmbeddingTableSpec
from repro.dlrm.interaction import concat_interaction
from repro.dlrm.mlp import MLP


@dataclass
class DLRMModel:
    """A materialised DLRM.

    The model owns its embedding tables in fast memory; the SDM layer serves
    *the same bytes* from the slow tier, which is what lets tests assert that
    tiered serving produces numerically identical results.
    """

    name: str
    bottom_mlp: MLP
    top_mlp: MLP
    tables: Dict[str, EmbeddingTable]
    dense_dim: int
    item_batch: int = 1

    def __post_init__(self) -> None:
        if self.dense_dim <= 0:
            raise ValueError(f"dense_dim must be positive: {self.dense_dim}")
        if self.item_batch <= 0:
            raise ValueError(f"item_batch must be positive: {self.item_batch}")
        if self.bottom_mlp.input_dim != self.dense_dim:
            raise ValueError(
                f"bottom MLP expects input {self.bottom_mlp.input_dim}, dense_dim is {self.dense_dim}"
            )
        expected_top_in = self.bottom_mlp.output_dim + sum(
            t.spec.dim for t in self.tables.values()
        )
        if self.top_mlp.input_dim != expected_top_in:
            raise ValueError(
                f"top MLP expects input {self.top_mlp.input_dim}, interaction produces {expected_top_in}"
            )

    # -------------------------------------------------------------- structure
    @property
    def user_table_specs(self) -> List[EmbeddingTableSpec]:
        return [t.spec for t in self.tables.values() if t.spec.is_user]

    @property
    def item_table_specs(self) -> List[EmbeddingTableSpec]:
        return [t.spec for t in self.tables.values() if not t.spec.is_user]

    @property
    def table_specs(self) -> List[EmbeddingTableSpec]:
        return [t.spec for t in self.tables.values()]

    @property
    def embedding_size_bytes(self) -> int:
        return sum(t.size_bytes for t in self.tables.values())

    def table(self, name: str) -> EmbeddingTable:
        if name not in self.tables:
            raise KeyError(f"model {self.name!r} has no table {name!r}")
        return self.tables[name]

    # --------------------------------------------------------------- forward
    def pooled_embeddings(
        self, sparse_indices: Mapping[str, Sequence[int]]
    ) -> Dict[str, np.ndarray]:
        """Pooled (summed) embedding vector per table for one sample."""
        pooled: Dict[str, np.ndarray] = {}
        for table_name, indices in sparse_indices.items():
            pooled[table_name] = self.table(table_name).bag(indices)
        return pooled

    def score(
        self,
        dense_features: np.ndarray,
        pooled: Mapping[str, np.ndarray],
    ) -> float:
        """Run interaction + top MLP given already-pooled embeddings.

        ``pooled`` must contain one vector per model table, keyed by name;
        vectors are interacted in the model's table order so the result does
        not depend on the mapping's iteration order.
        """
        missing = [name for name in self.tables if name not in pooled]
        if missing:
            raise KeyError(f"missing pooled embeddings for tables: {missing}")
        dense = np.asarray(dense_features, dtype=np.float32)
        if dense.shape != (self.dense_dim,):
            raise ValueError(
                f"dense features must have shape ({self.dense_dim},), got {dense.shape}"
            )
        bottom_out = self.bottom_mlp.forward(dense)
        ordered = [pooled[name] for name in self.tables]
        interacted = concat_interaction(bottom_out, ordered)
        return float(self.top_mlp.forward(interacted)[0])

    def forward(
        self,
        dense_features: np.ndarray,
        sparse_indices: Mapping[str, Sequence[int]],
    ) -> float:
        """Reference single-sample forward pass entirely from fast memory."""
        pooled = self.pooled_embeddings(sparse_indices)
        return self.score(dense_features, pooled)

    # ------------------------------------------------------------- accounting
    def mlp_flops_per_sample(self) -> int:
        return self.bottom_mlp.flops_per_sample() + self.top_mlp.flops_per_sample()

    def num_parameters(self) -> int:
        embedding_params = sum(
            t.spec.num_rows * t.spec.dim for t in self.tables.values()
        )
        return (
            embedding_params
            + self.bottom_mlp.num_parameters()
            + self.top_mlp.num_parameters()
        )
