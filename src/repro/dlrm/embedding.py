"""Embedding tables and pooled (embedding-bag) lookups.

An :class:`EmbeddingTable` stores its rows in the row-wise quantised byte
layout (the same bytes that would live on the SM tier), so a lookup returns
real data whether it came from DRAM, the FM row cache, or a simulated SSD.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro.dlrm.quantization import (
    dequantize_rows,
    quantize_rows,
    quantized_row_bytes,
)
from repro.sim.rng import make_rng


@dataclass(frozen=True)
class EmbeddingTableSpec:
    """Static description of one embedding table.

    Attributes
    ----------
    name:
        Unique table name.
    num_rows:
        Cardinality of the categorical feature (post hashing).
    dim:
        Number of embedding elements per row.
    quant_bits:
        Row-wise quantisation width (4 or 8 bit).
    is_user:
        ``True`` for user-side tables, ``False`` for item-side tables.  User
        tables are accessed once per query (batch 1) while item tables are
        accessed for every candidate item; this drives the bandwidth skew the
        paper exploits.
    avg_pooling_factor:
        Average number of rows looked up per query (the paper's ``p_i``).
    zipf_alpha:
        Skew of the access distribution for synthetic workload generation.
    pruned_fraction:
        Fraction of rows removed by post-training pruning (0 when unpruned).
    """

    name: str
    num_rows: int
    dim: int
    quant_bits: int = 8
    is_user: bool = True
    avg_pooling_factor: float = 1.0
    zipf_alpha: float = 1.05
    pruned_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.num_rows <= 0:
            raise ValueError(f"table {self.name!r}: num_rows must be positive: {self.num_rows}")
        if self.dim <= 0:
            raise ValueError(f"table {self.name!r}: dim must be positive: {self.dim}")
        if self.quant_bits not in (4, 8):
            raise ValueError(f"table {self.name!r}: quant_bits must be 4 or 8: {self.quant_bits}")
        if self.avg_pooling_factor <= 0:
            raise ValueError(
                f"table {self.name!r}: avg_pooling_factor must be positive: "
                f"{self.avg_pooling_factor}"
            )
        if not 0.0 <= self.pruned_fraction < 1.0:
            raise ValueError(
                f"table {self.name!r}: pruned_fraction must be in [0, 1): {self.pruned_fraction}"
            )

    @property
    def row_bytes(self) -> int:
        """Serialized bytes per quantised row."""
        return quantized_row_bytes(self.dim, self.quant_bits)

    @property
    def size_bytes(self) -> int:
        """Total serialized table size."""
        return self.num_rows * self.row_bytes

    @property
    def bytes_per_query(self) -> float:
        """Average bytes read from this table per single-sample query."""
        return self.avg_pooling_factor * self.row_bytes

    def with_rows(self, num_rows: int) -> "EmbeddingTableSpec":
        return replace(self, num_rows=num_rows)


class EmbeddingTable:
    """A materialised embedding table in the quantised byte layout."""

    def __init__(self, spec: EmbeddingTableSpec, quantized_rows: np.ndarray) -> None:
        quantized_rows = np.asarray(quantized_rows, dtype=np.uint8)
        expected_shape = (spec.num_rows, spec.row_bytes)
        if quantized_rows.shape != expected_shape:
            raise ValueError(
                f"table {spec.name!r}: expected quantised data of shape {expected_shape}, "
                f"got {quantized_rows.shape}"
            )
        self.spec = spec
        self.data = quantized_rows

    # ------------------------------------------------------------- builders
    @classmethod
    def from_float(cls, spec: EmbeddingTableSpec, values: np.ndarray) -> "EmbeddingTable":
        """Quantise a float matrix into a table."""
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (spec.num_rows, spec.dim):
            raise ValueError(
                f"table {spec.name!r}: expected float values of shape "
                f"{(spec.num_rows, spec.dim)}, got {values.shape}"
            )
        return cls(spec, quantize_rows(values, bits=spec.quant_bits))

    @classmethod
    def random(cls, spec: EmbeddingTableSpec, seed: int = 0) -> "EmbeddingTable":
        """Build a table with random (but reproducible) embedding values."""
        rng = make_rng(seed, "embedding", spec.name)
        values = rng.normal(0.0, 0.1, size=(spec.num_rows, spec.dim)).astype(np.float32)
        return cls.from_float(spec, values)

    # -------------------------------------------------------------- lookups
    def _check_indices(self, indices: Sequence[int]) -> np.ndarray:
        idx = np.asarray(list(indices), dtype=np.int64)
        if idx.size == 0:
            raise ValueError(f"table {self.spec.name!r}: lookup needs at least one index")
        if np.any(idx < 0) or np.any(idx >= self.spec.num_rows):
            raise IndexError(
                f"table {self.spec.name!r}: indices out of range [0, {self.spec.num_rows})"
            )
        return idx

    def row_bytes_at(self, index: int) -> bytes:
        """Raw serialized bytes of one row (what the SM tier stores)."""
        idx = self._check_indices([index])[0]
        return self.data[idx].tobytes()

    def lookup_raw(self, indices: Sequence[int]) -> np.ndarray:
        """Raw serialized bytes of several rows, shape ``(n, row_bytes)``."""
        idx = self._check_indices(indices)
        return self.data[idx]

    def lookup_dense(self, indices: Sequence[int]) -> np.ndarray:
        """Dequantised float rows, shape ``(n, dim)``."""
        raw = self.lookup_raw(indices)
        return dequantize_rows(raw, self.spec.dim, self.spec.quant_bits)

    def bag(self, indices: Sequence[int]) -> np.ndarray:
        """Sum-pooled dense vector over ``indices`` (EmbeddingBag / SLS)."""
        return self.lookup_dense(indices).sum(axis=0)

    def iter_row_bytes(self) -> Iterable[bytes]:
        """Iterate serialized rows in index order (used when loading to SM)."""
        for row in self.data:
            yield row.tobytes()

    @property
    def size_bytes(self) -> int:
        return int(self.data.nbytes)

    def __repr__(self) -> str:
        return (
            f"EmbeddingTable(name={self.spec.name!r}, rows={self.spec.num_rows}, "
            f"dim={self.spec.dim}, bits={self.spec.quant_bits})"
        )
