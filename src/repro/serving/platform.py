"""Hardware platform configurations (paper Table 7).

Each platform describes the host resources that bound serving throughput:
CPU compute, DRAM capacity and bandwidth, attached SM devices and optionally
an inference accelerator.  Power is expressed *relative to the platform used
as the baseline of each experiment*, which is how the paper reports it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.sim.units import GB, TB
from repro.storage.spec import DeviceSpec, nand_flash_spec, optane_ssd_spec


@dataclass(frozen=True)
class AcceleratorSpec:
    """An inference accelerator card (see Lee et al. for the deployed parts)."""

    name: str
    memory_bytes: int
    flops_per_second: float
    memory_bandwidth: float

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive: {self.memory_bytes}")
        if self.flops_per_second <= 0:
            raise ValueError(f"flops_per_second must be positive: {self.flops_per_second}")
        if self.memory_bandwidth <= 0:
            raise ValueError(f"memory_bandwidth must be positive: {self.memory_bandwidth}")


@dataclass(frozen=True)
class HostPlatform:
    """One host type deployable in the data centre."""

    name: str
    cpu_sockets: int
    dram_bytes: int
    cpu_flops_per_second: float
    dram_bandwidth: float
    ssds: Tuple[DeviceSpec, ...] = ()
    accelerator: Optional[AcceleratorSpec] = None
    relative_power: float = 1.0
    ssd_power_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.cpu_sockets <= 0:
            raise ValueError(f"cpu_sockets must be positive: {self.cpu_sockets}")
        if self.dram_bytes <= 0:
            raise ValueError(f"dram_bytes must be positive: {self.dram_bytes}")
        if self.cpu_flops_per_second <= 0:
            raise ValueError(f"cpu_flops_per_second must be positive: {self.cpu_flops_per_second}")
        if self.dram_bandwidth <= 0:
            raise ValueError(f"dram_bandwidth must be positive: {self.dram_bandwidth}")
        if self.relative_power <= 0:
            raise ValueError(f"relative_power must be positive: {self.relative_power}")

    # --------------------------------------------------------------- derived
    @property
    def has_ssd(self) -> bool:
        return len(self.ssds) > 0

    @property
    def has_accelerator(self) -> bool:
        return self.accelerator is not None

    @property
    def compute_flops(self) -> float:
        """Compute available for the MLPs (accelerator if present, else CPU)."""
        if self.accelerator is not None:
            return self.accelerator.flops_per_second
        return self.cpu_flops_per_second

    @property
    def fast_memory_bandwidth(self) -> float:
        """Bandwidth serving item embeddings (accelerator memory if present)."""
        if self.accelerator is not None:
            return self.accelerator.memory_bandwidth
        return self.dram_bandwidth

    @property
    def total_sm_capacity_bytes(self) -> int:
        return sum(ssd.capacity_bytes for ssd in self.ssds)

    @property
    def total_sm_iops(self) -> float:
        return sum(ssd.max_read_iops for ssd in self.ssds)

    @property
    def power_with_ssds(self) -> float:
        """Relative host power including attached SM devices."""
        return self.relative_power * (1.0 + self.ssd_power_fraction * len(self.ssds))

    def with_ssds(self, ssds: Tuple[DeviceSpec, ...]) -> "HostPlatform":
        return replace(self, ssds=ssds)


# --------------------------------------------------------------------------
# Table 7 platform configurations.  All CPUs are Xeon-class; compute and
# bandwidth figures are representative public numbers, and relative power is
# normalised the way the paper's result tables normalise it.
# --------------------------------------------------------------------------

_XEON_FLOPS = 1.5e12
_XEON_DRAM_BW = 80.0e9

#: Dual-socket, 256 GB DRAM, no SSD, no accelerator (the M1 baseline host).
HW_L = HostPlatform(
    name="HW-L",
    cpu_sockets=2,
    dram_bytes=256 * GB,
    cpu_flops_per_second=2 * _XEON_FLOPS,
    dram_bandwidth=2 * _XEON_DRAM_BW,
    relative_power=1.0,
)

#: Single-socket, 64 GB DRAM helper host used by the scale-out deployment.
HW_S = HostPlatform(
    name="HW-S",
    cpu_sockets=1,
    dram_bytes=64 * GB,
    cpu_flops_per_second=_XEON_FLOPS,
    dram_bandwidth=_XEON_DRAM_BW,
    relative_power=0.25,
)

#: Single-socket, 64 GB DRAM, 2x 2 TB Nand Flash (the M1 SDM host).
HW_SS = HostPlatform(
    name="HW-SS",
    cpu_sockets=1,
    dram_bytes=64 * GB,
    cpu_flops_per_second=_XEON_FLOPS,
    dram_bandwidth=_XEON_DRAM_BW,
    ssds=(nand_flash_spec(2 * TB), nand_flash_spec(2 * TB)),
    relative_power=0.4,
    ssd_power_fraction=0.0,
)

_ACCELERATOR = AcceleratorSpec(
    name="inference-accelerator",
    memory_bytes=96 * GB,
    flops_per_second=30.0e12,
    memory_bandwidth=600.0e9,
)

#: Accelerator host with 2x 1 TB Nand Flash (M2 with Nand SDM).
HW_AN = HostPlatform(
    name="HW-AN",
    cpu_sockets=1,
    dram_bytes=64 * GB,
    cpu_flops_per_second=_XEON_FLOPS,
    dram_bandwidth=_XEON_DRAM_BW,
    ssds=(nand_flash_spec(1 * TB), nand_flash_spec(1 * TB)),
    accelerator=_ACCELERATOR,
    relative_power=1.0,
    ssd_power_fraction=0.0,
)

#: Accelerator host with 2x 0.4 TB Optane SSD (M2 with Optane SDM).
HW_AO = HostPlatform(
    name="HW-AO",
    cpu_sockets=1,
    dram_bytes=64 * GB,
    cpu_flops_per_second=_XEON_FLOPS,
    dram_bandwidth=_XEON_DRAM_BW,
    ssds=(optane_ssd_spec(400 * GB), optane_ssd_spec(400 * GB)),
    accelerator=_ACCELERATOR,
    relative_power=1.0,
    ssd_power_fraction=0.0,
)

_FUTURE_ACCELERATOR = AcceleratorSpec(
    name="future-accelerator",
    memory_bytes=256 * GB,
    flops_per_second=150.0e12,
    memory_bandwidth=2.0e12,
)

#: Projected future accelerator platform without SDM (M3 baseline).
HW_FA = HostPlatform(
    name="HW-FA",
    cpu_sockets=2,
    dram_bytes=512 * GB,
    cpu_flops_per_second=2 * _XEON_FLOPS,
    dram_bandwidth=2 * _XEON_DRAM_BW,
    accelerator=_FUTURE_ACCELERATOR,
    relative_power=1.0,
)

#: The same platform with 9 Optane SSDs for multi-tenant SDM serving (M3).
HW_FAO = HostPlatform(
    name="HW-FAO",
    cpu_sockets=2,
    dram_bytes=512 * GB,
    cpu_flops_per_second=2 * _XEON_FLOPS,
    dram_bandwidth=2 * _XEON_DRAM_BW,
    ssds=tuple(optane_ssd_spec(400 * GB) for _ in range(9)),
    accelerator=_FUTURE_ACCELERATOR,
    relative_power=1.0,
    ssd_power_fraction=0.00111,
)

ALL_PLATFORMS = {
    platform.name: platform
    for platform in (HW_L, HW_S, HW_SS, HW_AN, HW_AO, HW_FA, HW_FAO)
}
