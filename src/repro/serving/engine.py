"""Event-driven serving engine: one engine, open- and closed-loop traffic.

The paper's end-to-end claims (Table 8/9 per-host QPS, Figure 6 placement
sensitivity) are statements about latency *under load*, so the serving
harness must model load honestly.  This module runs a query stream through an
:class:`~repro.dlrm.inference.InferenceEngine` on top of the discrete-event
core in :mod:`repro.sim.events`, in one of two modes:

Open loop (:meth:`ServingEngine.run_open_loop`)
    Queries arrive on their own schedule (Poisson, constant rate, or a
    recorded trace — see :func:`repro.workload.generator.generate_arrival_times`)
    regardless of whether the host keeps up.  Arrivals are events on a
    :class:`~repro.sim.events.Simulator`; a bounded admission queue feeds
    ``concurrency`` serving streams, and queries that find the queue full are
    shed.  Each served query's latency splits into queueing delay (admission
    to dispatch) plus service time, so saturation shows up as a p99 knee the
    way it does on real hosts.  Because a query is dispatched at its true
    simulated start time, the storage layer's outstanding-IO windows
    (:class:`~repro.storage.io_engine.IOEngineConfig` queue-depth limits)
    overlap across queries that are genuinely in flight together — the limits
    act as simulated-time backpressure that delays completions, not merely as
    an analytic cost added at time zero.

Closed loop (:meth:`ServingEngine.run_closed_loop`)
    The seed :class:`ServingSimulator` semantics: ``concurrency`` independent
    streams, each issuing its next query the instant the previous one
    completes.  Queries are assigned to streams round-robin by position and
    executed in position order.  The execution order is part of the contract:
    embedding backends are stateful (caches, outstanding-IO windows), so
    replaying the seed's deterministic schedule is what makes this mode
    reproduce the seed simulator's latencies and scores exactly.  The
    open-loop event machinery is bypassed only for *dispatch ordering*; the
    measurement, bookkeeping and result assembly are shared.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Sequence, Tuple

from repro.dlrm.inference import InferenceEngine, Query, QueryResult
from repro.serving.latency import LatencyTarget, latency_percentiles
from repro.sim.events import Simulator


@dataclass(frozen=True)
class QueryRecord:
    """Timing of one served query: arrival → dispatch → completion."""

    query_id: int
    arrival_time: float
    start_time: float
    completion_time: float

    @property
    def queue_delay(self) -> float:
        """Time spent waiting in the admission queue before dispatch."""
        return self.start_time - self.arrival_time

    @property
    def service_time(self) -> float:
        """Time spent actually executing on a serving stream."""
        return self.completion_time - self.start_time

    @property
    def latency(self) -> float:
        """End-to-end latency the client observes (queueing + service)."""
        return self.completion_time - self.arrival_time


@dataclass
class HostSimulationResult:
    """Outcome of serving one query stream on one simulated host."""

    num_queries: int
    concurrency: int
    makespan_seconds: float
    latencies: List[float]
    results: List[QueryResult] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.num_queries / self.makespan_seconds

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile_latency(self, pct: float) -> float:
        from repro.analysis.metrics import percentile

        return percentile(self.latencies, pct)

    def percentiles(self) -> Dict[str, float]:
        return latency_percentiles(self.latencies)

    def qps_at_latency(self, target: LatencyTarget) -> float:
        """Throughput sustainable while meeting the latency SLO.

        With ``concurrency`` independent serving streams, the host can accept
        one query per stream per target-percentile latency; if the SLO is
        already violated, throughput is scaled down by the ratio of budget to
        observed latency (the host must shed load to recover the SLO).
        """
        observed = self.percentile_latency(target.percentile)
        per_stream_rate = 1.0 / max(observed, 1e-12)
        qps = self.concurrency * per_stream_rate
        if observed <= target.budget_seconds:
            return qps
        return qps * (target.budget_seconds / observed)

    def meets(self, target: LatencyTarget) -> bool:
        return target.met_by(self.latencies)


@dataclass
class OpenLoopResult(HostSimulationResult):
    """Outcome of one open-loop run: latency split plus admission accounting.

    ``latencies`` (inherited) hold the end-to-end client latency of every
    *served* query — queueing delay plus service time — so the inherited
    percentile/SLO helpers report what a client would measure.  Shed queries
    contribute to ``dropped_queries`` only.
    """

    offered_queries: int = 0
    dropped_queries: int = 0
    offered_qps: float = 0.0
    queue_delays: List[float] = field(default_factory=list)
    service_times: List[float] = field(default_factory=list)
    records: List[QueryRecord] = field(default_factory=list)

    @property
    def served_queries(self) -> int:
        return self.num_queries

    @property
    def drop_rate(self) -> float:
        """Fraction of offered queries shed at admission."""
        if self.offered_queries <= 0:
            return 0.0
        return self.dropped_queries / self.offered_queries

    @property
    def mean_queue_delay(self) -> float:
        if not self.queue_delays:
            return 0.0
        return sum(self.queue_delays) / len(self.queue_delays)

    def queueing_percentiles(self) -> Dict[str, float]:
        """Queue-delay percentiles (p50/p95/p99 + mean) of served queries."""
        return latency_percentiles(self.queue_delays)

    def service_percentiles(self) -> Dict[str, float]:
        """Service-time percentiles (p50/p95/p99 + mean) of served queries."""
        return latency_percentiles(self.service_times)

    def qps_at_latency(self, target: LatencyTarget) -> float:
        """Throughput sustainable at the SLO, from the measured open-loop run.

        When the SLO holds, the sustainable rate is the host's *capacity*,
        not the offered load it happened to see: the larger of the measured
        throughput (demonstrably served within budget) and the closed-loop
        style estimate of one query per stream per service-time percentile —
        so an underloaded measurement does not make the host look slow.  When
        the SLO is violated, the demonstrated throughput is scaled down by
        budget/observed (the host must shed offered load to recover the SLO).
        """
        observed = self.percentile_latency(target.percentile)
        if observed > target.budget_seconds:
            return self.achieved_qps * (target.budget_seconds / max(observed, 1e-12))
        service_capacity = 0.0
        if self.service_times:
            from repro.analysis.metrics import percentile

            service_observed = percentile(self.service_times, target.percentile)
            service_capacity = self.concurrency / max(service_observed, 1e-12)
        return max(self.achieved_qps, service_capacity)


class ServingEngine:
    """Serves query streams through an inference engine on one simulated host.

    Parameters
    ----------
    engine:
        The inference engine (whose user backend may be DRAM or SDM).
    concurrency:
        Number of serving streams ("servers") executing queries in parallel.
    store_results:
        When ``False``, per-query :class:`~repro.dlrm.inference.QueryResult`
        objects and :class:`QueryRecord` timings are not retained — only the
        scalar latency lists needed for percentiles — which keeps 10⁵+-query
        open-loop sweeps at a small, constant memory footprint.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        concurrency: int = 1,
        store_results: bool = True,
    ) -> None:
        if concurrency <= 0:
            raise ValueError(f"concurrency must be positive: {concurrency}")
        self.engine = engine
        self.concurrency = concurrency
        self.store_results = store_results

    # ------------------------------------------------------------- closed loop
    def run_closed_loop(
        self, queries: Sequence[Query], warmup_queries: int = 0
    ) -> HostSimulationResult:
        """Serve ``queries`` closed-loop across ``concurrency`` streams.

        The first ``warmup_queries`` are executed (so caches warm up) but are
        excluded from the reported latencies and the makespan, mirroring the
        paper's focus on steady-state behaviour.  This replays the seed
        ``ServingSimulator`` schedule exactly (round-robin stream assignment,
        position-order execution), so latencies and scores are bit-identical
        to the pre-engine simulator.
        """
        measured = self._run_warmup(queries, warmup_queries)
        stream_clock = [0.0] * self.concurrency
        latencies: List[float] = []
        results: List[QueryResult] = []
        for position, query in enumerate(measured):
            stream = position % self.concurrency
            result = self.engine.run_query(query, start_time=stream_clock[stream])
            stream_clock[stream] += result.latency
            latencies.append(result.latency)
            if self.store_results:
                results.append(result)

        return HostSimulationResult(
            num_queries=len(measured),
            concurrency=self.concurrency,
            makespan_seconds=max(stream_clock),
            latencies=latencies,
            results=results,
        )

    # -------------------------------------------------------------- open loop
    def run_open_loop(
        self,
        queries: Sequence[Query],
        arrival_times: Sequence[float],
        queue_depth: int = 64,
        warmup_queries: int = 0,
        serve_batch: int = 1,
    ) -> OpenLoopResult:
        """Serve ``queries`` arriving at ``arrival_times`` (open loop).

        ``arrival_times`` are absolute simulated seconds for the *measured*
        queries (those after the first ``warmup_queries``), non-decreasing.
        A query that arrives while all streams are busy waits in a FIFO
        admission queue of capacity ``queue_depth``; if the queue is full the
        query is shed (counted, not served).  ``queue_depth=0`` models a pure
        loss system.

        ``serve_batch`` is how many waiting queries a freed stream drains at
        once: each query in the drained batch is dispatched at the same
        simulated instant (FIFO order, per-query records), and the stream
        stays busy until the last of them completes.  The default of 1 is
        exactly the classic one-query-per-dispatch behaviour.
        """
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be non-negative: {queue_depth}")
        if serve_batch < 1:
            raise ValueError(f"serve_batch must be positive: {serve_batch}")
        measured = self._run_warmup(queries, warmup_queries)
        if len(arrival_times) != len(measured):
            raise ValueError(
                f"arrival_times ({len(arrival_times)}) must match the measured "
                f"queries ({len(measured)})"
            )
        previous = 0.0
        for time in arrival_times:
            if time < 0:
                raise ValueError(f"arrival times must be non-negative: {time}")
            if time < previous:
                raise ValueError("arrival times must be non-decreasing")
            previous = time

        sim = Simulator()
        free_servers = [self.concurrency]
        waiting: Deque[Tuple[Query, float]] = deque()
        latencies: List[float] = []
        queue_delays: List[float] = []
        service_times: List[float] = []
        records: List[QueryRecord] = []
        results: List[QueryResult] = []
        dropped = [0]

        def start_service(batch: List[Tuple[Query, float]]) -> None:
            free_servers[0] -= 1
            now = sim.clock.now
            batch_done = now
            for query, arrival in batch:
                result = self.engine.run_query(query, start_time=now)
                completion = now + result.latency
                batch_done = max(batch_done, completion)
                latencies.append(completion - arrival)
                queue_delays.append(now - arrival)
                service_times.append(result.latency)
                if self.store_results:
                    results.append(result)
                    records.append(
                        QueryRecord(
                            query_id=query.query_id,
                            arrival_time=arrival,
                            start_time=now,
                            completion_time=completion,
                        )
                    )
            sim.schedule_at(batch_done, on_complete)

        def on_complete() -> None:
            free_servers[0] += 1
            if waiting:
                batch = [
                    waiting.popleft()
                    for _ in range(min(serve_batch, len(waiting)))
                ]
                start_service(batch)

        def on_arrival(query: Query) -> None:
            arrival = sim.clock.now
            if free_servers[0] > 0:
                start_service([(query, arrival)])
            elif len(waiting) < queue_depth:
                waiting.append((query, arrival))
            else:
                dropped[0] += 1

        for query, time in zip(measured, arrival_times):
            sim.schedule_at(time, lambda query=query: on_arrival(query))
        sim.run()

        makespan = sim.clock.now
        offered_qps = 0.0
        if len(arrival_times) > 1:
            span = arrival_times[-1] - arrival_times[0]
            if span > 0:
                offered_qps = (len(arrival_times) - 1) / span
        return OpenLoopResult(
            num_queries=len(latencies),
            concurrency=self.concurrency,
            makespan_seconds=makespan,
            latencies=latencies,
            results=results,
            offered_queries=len(measured),
            dropped_queries=dropped[0],
            offered_qps=offered_qps,
            queue_delays=queue_delays,
            service_times=service_times,
            records=records,
        )

    # -------------------------------------------------------------- internals
    def _run_warmup(self, queries: Sequence[Query], warmup_queries: int) -> Sequence[Query]:
        """Validate arguments, run the warmup prefix, return the measured tail."""
        if not queries:
            raise ValueError("run() needs at least one query")
        if warmup_queries < 0:
            raise ValueError(f"warmup_queries must be non-negative: {warmup_queries}")
        if warmup_queries >= len(queries):
            raise ValueError(
                f"warmup_queries ({warmup_queries}) must leave measured queries "
                f"({len(queries)} supplied)"
            )
        for query in queries[:warmup_queries]:
            self.engine.run_query(query, start_time=0.0)
        return queries[warmup_queries:]


class ServingSimulator:
    """Closed-loop compatibility front end over :class:`ServingEngine`.

    Kept as the historical entry point for the paper's end-to-end comparisons
    (Figure 6 placement sensitivity, Table 8/9 per-host QPS): a thin wrapper
    whose :meth:`run` is exactly :meth:`ServingEngine.run_closed_loop`.
    """

    def __init__(
        self, engine: InferenceEngine, concurrency: int = 1, store_results: bool = True
    ) -> None:
        self._engine = ServingEngine(engine, concurrency, store_results=store_results)

    @property
    def engine(self) -> InferenceEngine:
        return self._engine.engine

    @property
    def concurrency(self) -> int:
        return self._engine.concurrency

    def run(self, queries: Sequence[Query], warmup_queries: int = 0) -> HostSimulationResult:
        """Serve ``queries`` closed-loop; see :meth:`ServingEngine.run_closed_loop`."""
        return self._engine.run_closed_loop(queries, warmup_queries=warmup_queries)
