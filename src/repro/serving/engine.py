"""Event-driven serving engine: one engine, open- and closed-loop traffic.

The paper's end-to-end claims (Table 8/9 per-host QPS, Figure 6 placement
sensitivity) are statements about latency *under load*, so the serving
harness must model load honestly.  This module runs a query stream through an
:class:`~repro.dlrm.inference.InferenceEngine` on top of the discrete-event
core in :mod:`repro.sim.events`, in one of two modes:

Open loop (:meth:`ServingEngine.run_open_loop`)
    Queries arrive on their own schedule (Poisson, constant rate, or a
    recorded trace — see :func:`repro.workload.generator.generate_arrival_times`)
    regardless of whether the host keeps up.  Arrivals are events on a
    :class:`~repro.sim.events.Simulator`; a bounded admission queue feeds
    ``concurrency`` serving streams, and queries that find the queue full are
    shed.  Each served query's latency splits into queueing delay (admission
    to dispatch) plus service time, so saturation shows up as a p99 knee the
    way it does on real hosts.  Because a query is dispatched at its true
    simulated start time, the storage layer's outstanding-IO windows
    (:class:`~repro.storage.io_engine.IOEngineConfig` queue-depth limits)
    overlap across queries that are genuinely in flight together — the limits
    act as simulated-time backpressure that delays completions, not merely as
    an analytic cost added at time zero.

Closed loop (:meth:`ServingEngine.run_closed_loop`)
    The seed :class:`ServingSimulator` semantics: ``concurrency`` independent
    streams, each issuing its next query the instant the previous one
    completes.  Queries are assigned to streams round-robin by position and
    executed in position order.  The execution order is part of the contract:
    embedding backends are stateful (caches, outstanding-IO windows), so
    replaying the seed's deterministic schedule is what makes this mode
    reproduce the seed simulator's latencies and scores exactly.  The
    open-loop event machinery is bypassed only for *dispatch ordering*; the
    measurement, bookkeeping and result assembly are shared.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.dlrm.inference import InferenceEngine, Query, QueryResult
from repro.obs.metrics import MetricsSampler
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.serving.latency import LatencyTarget, latency_percentiles
from repro.sim.events import Simulator


@dataclass(frozen=True)
class QueryRecord:
    """Timing of one served query: arrival → dispatch → completion."""

    query_id: int
    arrival_time: float
    start_time: float
    completion_time: float

    @property
    def queue_delay(self) -> float:
        """Time spent waiting in the admission queue before dispatch."""
        return self.start_time - self.arrival_time

    @property
    def service_time(self) -> float:
        """Time spent actually executing on a serving stream."""
        return self.completion_time - self.start_time

    @property
    def latency(self) -> float:
        """End-to-end latency the client observes (queueing + service)."""
        return self.completion_time - self.arrival_time


@dataclass
class HostSimulationResult:
    """Outcome of serving one query stream on one simulated host."""

    num_queries: int
    concurrency: int
    makespan_seconds: float
    latencies: List[float]
    results: List[QueryResult] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.num_queries / self.makespan_seconds

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile_latency(self, pct: float) -> float:
        from repro.analysis.metrics import percentile

        return percentile(self.latencies, pct)

    def percentiles(self) -> Dict[str, float]:
        return latency_percentiles(self.latencies)

    def qps_at_latency(self, target: LatencyTarget) -> float:
        """Throughput sustainable while meeting the latency SLO.

        With ``concurrency`` independent serving streams, the host can accept
        one query per stream per target-percentile latency; if the SLO is
        already violated, throughput is scaled down by the ratio of budget to
        observed latency (the host must shed load to recover the SLO).
        """
        observed = self.percentile_latency(target.percentile)
        per_stream_rate = 1.0 / max(observed, 1e-12)
        qps = self.concurrency * per_stream_rate
        if observed <= target.budget_seconds:
            return qps
        return qps * (target.budget_seconds / observed)

    def meets(self, target: LatencyTarget) -> bool:
        return target.met_by(self.latencies)


@dataclass
class OpenLoopResult(HostSimulationResult):
    """Outcome of one open-loop run: latency split plus admission accounting.

    ``latencies`` (inherited) hold the end-to-end client latency of every
    *served* query — queueing delay plus service time — so the inherited
    percentile/SLO helpers report what a client would measure.  Shed queries
    contribute to ``dropped_queries`` only.
    """

    offered_queries: int = 0
    dropped_queries: int = 0
    offered_qps: float = 0.0
    queue_delays: List[float] = field(default_factory=list)
    service_times: List[float] = field(default_factory=list)
    records: List[QueryRecord] = field(default_factory=list)

    @property
    def served_queries(self) -> int:
        return self.num_queries

    @property
    def drop_rate(self) -> float:
        """Fraction of offered queries shed at admission."""
        if self.offered_queries <= 0:
            return 0.0
        return self.dropped_queries / self.offered_queries

    @property
    def mean_queue_delay(self) -> float:
        if not self.queue_delays:
            return 0.0
        return sum(self.queue_delays) / len(self.queue_delays)

    def queueing_percentiles(self) -> Dict[str, float]:
        """Queue-delay percentiles (p50/p95/p99 + mean) of served queries."""
        return latency_percentiles(self.queue_delays)

    def service_percentiles(self) -> Dict[str, float]:
        """Service-time percentiles (p50/p95/p99 + mean) of served queries."""
        return latency_percentiles(self.service_times)

    def qps_at_latency(self, target: LatencyTarget) -> float:
        """Throughput sustainable at the SLO, from the measured open-loop run.

        When the SLO holds, the sustainable rate is the host's *capacity*,
        not the offered load it happened to see: the larger of the measured
        throughput (demonstrably served within budget) and the closed-loop
        style estimate of one query per stream per service-time percentile —
        so an underloaded measurement does not make the host look slow.  When
        the SLO is violated, the demonstrated throughput is scaled down by
        budget/observed (the host must shed offered load to recover the SLO).
        """
        observed = self.percentile_latency(target.percentile)
        if observed > target.budget_seconds:
            return self.achieved_qps * (target.budget_seconds / max(observed, 1e-12))
        service_capacity = 0.0
        if self.service_times:
            from repro.analysis.metrics import percentile

            service_observed = percentile(self.service_times, target.percentile)
            service_capacity = self.concurrency / max(service_observed, 1e-12)
        return max(self.achieved_qps, service_capacity)


class ServingEngine:
    """Serves query streams through an inference engine on one simulated host.

    Parameters
    ----------
    engine:
        The inference engine (whose user backend may be DRAM or SDM).
    concurrency:
        Number of serving streams ("servers") executing queries in parallel.
    store_results:
        When ``False``, per-query :class:`~repro.dlrm.inference.QueryResult`
        objects and :class:`QueryRecord` timings are not retained — only the
        scalar latency lists needed for percentiles — which keeps 10⁵+-query
        open-loop sweeps at a small, constant memory footprint.
    recorder:
        A :class:`~repro.obs.trace.TraceRecorder` receiving per-query spans
        (queue wait, service) on the simulated clock.  The default no-op
        recorder keeps the serve path bit-identical to an uninstrumented
        build; every emission is guarded by ``recorder.enabled``.
    sampler:
        A started-by-the-engine :class:`~repro.obs.metrics.MetricsSampler`
        snapshotting cumulative counters every N simulated seconds.  The
        engine registers its admission counters/gauges, baselines the
        sampler after warmup, and drives it from its event handlers — the
        sampler never schedules simulator events, so the measured makespan
        is untouched.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        concurrency: int = 1,
        store_results: bool = True,
        recorder: Optional[TraceRecorder] = None,
        sampler: Optional[MetricsSampler] = None,
    ) -> None:
        if concurrency <= 0:
            raise ValueError(f"concurrency must be positive: {concurrency}")
        self.engine = engine
        self.concurrency = concurrency
        self.store_results = store_results
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.sampler = sampler

    # ------------------------------------------------------------- closed loop
    def run_closed_loop(
        self, queries: Sequence[Query], warmup_queries: int = 0
    ) -> HostSimulationResult:
        """Serve ``queries`` closed-loop across ``concurrency`` streams.

        The first ``warmup_queries`` are executed (so caches warm up) but are
        excluded from the reported latencies and the makespan, mirroring the
        paper's focus on steady-state behaviour.  This replays the seed
        ``ServingSimulator`` schedule exactly (round-robin stream assignment,
        position-order execution), so latencies and scores are bit-identical
        to the pre-engine simulator.
        """
        measured = self._run_warmup(queries, warmup_queries)
        recorder = self.recorder
        tracing = recorder.enabled
        sampler = self.sampler
        flow = {"served": 0}
        if sampler is not None:
            sampler.add_counters("engine", lambda: dict(flow))
            sampler.start(0.0)
        stream_clock = [0.0] * self.concurrency
        latencies: List[float] = []
        results: List[QueryResult] = []
        for position, query in enumerate(measured):
            stream = position % self.concurrency
            start = stream_clock[stream]
            if sampler is not None:
                sampler.advance(start)
            if tracing:
                recorder.set_track(stream + 1)
            result = self.engine.run_query(query, start_time=start)
            stream_clock[stream] += result.latency
            latencies.append(result.latency)
            if sampler is not None:
                flow["served"] += 1
            if tracing:
                recorder.span(
                    "serve",
                    "engine",
                    start,
                    result.latency,
                    tid=stream + 1,
                    args={"query_id": query.query_id},
                )
            if self.store_results:
                results.append(result)
        if sampler is not None:
            sampler.finish(max(stream_clock))
        if tracing:
            self._name_stream_tracks(recorder)

        return HostSimulationResult(
            num_queries=len(measured),
            concurrency=self.concurrency,
            makespan_seconds=max(stream_clock),
            latencies=latencies,
            results=results,
        )

    # -------------------------------------------------------------- open loop
    def run_open_loop(
        self,
        queries: Sequence[Query],
        arrival_times: Sequence[float],
        queue_depth: int = 64,
        warmup_queries: int = 0,
        serve_batch: int = 1,
    ) -> OpenLoopResult:
        """Serve ``queries`` arriving at ``arrival_times`` (open loop).

        ``arrival_times`` are absolute simulated seconds for the *measured*
        queries (those after the first ``warmup_queries``), non-decreasing.
        A query that arrives while all streams are busy waits in a FIFO
        admission queue of capacity ``queue_depth``; if the queue is full the
        query is shed (counted, not served).  ``queue_depth=0`` models a pure
        loss system.

        ``serve_batch`` is how many waiting queries a freed stream drains at
        once: each query in the drained batch is dispatched at the same
        simulated instant (FIFO order, per-query records), and the stream
        stays busy until the last of them completes.  The default of 1 is
        exactly the classic one-query-per-dispatch behaviour.
        """
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be non-negative: {queue_depth}")
        if serve_batch < 1:
            raise ValueError(f"serve_batch must be positive: {serve_batch}")
        measured = self._run_warmup(queries, warmup_queries)
        if len(arrival_times) != len(measured):
            raise ValueError(
                f"arrival_times ({len(arrival_times)}) must match the measured "
                f"queries ({len(measured)})"
            )
        previous = 0.0
        for time in arrival_times:
            if time < 0:
                raise ValueError(f"arrival times must be non-negative: {time}")
            if time < previous:
                raise ValueError("arrival times must be non-decreasing")
            previous = time

        sim = Simulator()
        free_servers = [self.concurrency]
        waiting: Deque[Tuple[Query, float]] = deque()
        latencies: List[float] = []
        queue_delays: List[float] = []
        service_times: List[float] = []
        records: List[QueryRecord] = []
        results: List[QueryResult] = []
        dropped = [0]

        recorder = self.recorder
        tracing = recorder.enabled
        sampler = self.sampler
        # Streams get stable trace track ids (1..concurrency; 0 is the
        # admission track) via a free list; only maintained when tracing so
        # the untraced path runs the exact pre-trace instruction stream.
        free_streams = list(range(self.concurrency, 0, -1)) if tracing else []
        flow = {"offered": 0, "served": 0, "dropped": 0}
        if sampler is not None:
            sampler.add_counters("engine", lambda: dict(flow))
            sampler.add_gauge("queue_depth", lambda: float(len(waiting)))
            sampler.add_gauge(
                "busy_streams", lambda: float(self.concurrency - free_servers[0])
            )
            sampler.start(0.0)

        def start_service(batch: List[Tuple[Query, float]]) -> None:
            free_servers[0] -= 1
            tid = free_streams.pop() if tracing else 0
            if tracing:
                recorder.set_track(tid)
            now = sim.clock.now
            batch_done = now
            for query, arrival in batch:
                result = self.engine.run_query(query, start_time=now)
                completion = now + result.latency
                batch_done = max(batch_done, completion)
                latencies.append(completion - arrival)
                queue_delays.append(now - arrival)
                service_times.append(result.latency)
                if sampler is not None:
                    flow["served"] += 1
                if tracing:
                    recorder.span(
                        "queue",
                        "engine",
                        arrival,
                        now - arrival,
                        tid=tid,
                        args={"query_id": query.query_id},
                    )
                    recorder.span(
                        "serve",
                        "engine",
                        now,
                        result.latency,
                        tid=tid,
                        args={"query_id": query.query_id},
                    )
                if self.store_results:
                    results.append(result)
                    records.append(
                        QueryRecord(
                            query_id=query.query_id,
                            arrival_time=arrival,
                            start_time=now,
                            completion_time=completion,
                        )
                    )
            sim.schedule_at(batch_done, lambda: on_complete(tid))

        def on_complete(tid: int) -> None:
            if sampler is not None:
                sampler.advance(sim.clock.now)
            if tracing:
                free_streams.append(tid)
            free_servers[0] += 1
            if waiting:
                batch = [
                    waiting.popleft()
                    for _ in range(min(serve_batch, len(waiting)))
                ]
                start_service(batch)

        def on_arrival(query: Query) -> None:
            arrival = sim.clock.now
            if sampler is not None:
                sampler.advance(arrival)
                flow["offered"] += 1
            if free_servers[0] > 0:
                start_service([(query, arrival)])
            elif len(waiting) < queue_depth:
                waiting.append((query, arrival))
                if tracing:
                    recorder.counter(
                        "admission", arrival, {"queue_depth": len(waiting)}
                    )
            else:
                dropped[0] += 1
                if sampler is not None:
                    flow["dropped"] += 1
                if tracing:
                    recorder.instant(
                        "drop",
                        "engine",
                        arrival,
                        tid=0,
                        args={"query_id": query.query_id},
                    )

        for query, time in zip(measured, arrival_times):
            sim.schedule_at(time, lambda query=query: on_arrival(query))
        sim.run()

        makespan = sim.clock.now
        if sampler is not None:
            sampler.finish(makespan)
        if tracing:
            self._name_stream_tracks(recorder)
        offered_qps = 0.0
        if len(arrival_times) > 1:
            span = arrival_times[-1] - arrival_times[0]
            if span > 0:
                offered_qps = (len(arrival_times) - 1) / span
        return OpenLoopResult(
            num_queries=len(latencies),
            concurrency=self.concurrency,
            makespan_seconds=makespan,
            latencies=latencies,
            results=results,
            offered_queries=len(measured),
            dropped_queries=dropped[0],
            offered_qps=offered_qps,
            queue_delays=queue_delays,
            service_times=service_times,
            records=records,
        )

    # -------------------------------------------------------------- internals
    def _run_warmup(self, queries: Sequence[Query], warmup_queries: int) -> Sequence[Query]:
        """Validate arguments, run the warmup prefix, return the measured tail."""
        if not queries:
            raise ValueError("run() needs at least one query")
        if warmup_queries < 0:
            raise ValueError(f"warmup_queries must be non-negative: {warmup_queries}")
        if warmup_queries >= len(queries):
            raise ValueError(
                f"warmup_queries ({warmup_queries}) must leave measured queries "
                f"({len(queries)} supplied)"
            )
        if warmup_queries:
            # Warmup exercises the caches but is not part of the measured
            # run; spans from it would overlap the measured ones at time 0.
            self.recorder.pause()
            try:
                for query in queries[:warmup_queries]:
                    self.engine.run_query(query, start_time=0.0)
            finally:
                self.recorder.resume()
        return queries[warmup_queries:]

    def _name_stream_tracks(self, recorder: TraceRecorder) -> None:
        """Label the per-stream trace tracks on recorders that support it."""
        name_thread = getattr(recorder, "name_thread", None)
        if callable(name_thread):
            for stream in range(self.concurrency):
                name_thread(stream + 1, f"stream {stream}")


class ServingSimulator:
    """Closed-loop compatibility front end over :class:`ServingEngine`.

    Kept as the historical entry point for the paper's end-to-end comparisons
    (Figure 6 placement sensitivity, Table 8/9 per-host QPS): a thin wrapper
    whose :meth:`run` is exactly :meth:`ServingEngine.run_closed_loop`.
    """

    def __init__(
        self, engine: InferenceEngine, concurrency: int = 1, store_results: bool = True
    ) -> None:
        self._engine = ServingEngine(engine, concurrency, store_results=store_results)

    @property
    def engine(self) -> InferenceEngine:
        return self._engine.engine

    @property
    def concurrency(self) -> int:
        return self._engine.concurrency

    def run(self, queries: Sequence[Query], warmup_queries: int = 0) -> HostSimulationResult:
        """Serve ``queries`` closed-loop; see :meth:`ServingEngine.run_closed_loop`."""
        return self._engine.run_closed_loop(queries, warmup_queries=warmup_queries)
