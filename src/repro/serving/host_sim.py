"""Host-level serving simulation.

Runs a query stream through an :class:`~repro.dlrm.inference.InferenceEngine`
(whose user-embedding backend may be a DRAM reference or an SDM instance),
collects per-query latencies in simulated time, and reports achieved QPS and
whether the latency SLO is met.  This is the harness behind the end-to-end
comparisons (Figure 6 placement sensitivity, the Table 8/9 per-host QPS
checks and the appendix ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import Histogram
from repro.dlrm.inference import InferenceEngine, Query, QueryResult
from repro.serving.latency import LatencyTarget, latency_percentiles


@dataclass
class HostSimulationResult:
    """Outcome of serving one query stream on one simulated host."""

    num_queries: int
    concurrency: int
    makespan_seconds: float
    latencies: List[float]
    results: List[QueryResult] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.num_queries / self.makespan_seconds

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile_latency(self, pct: float) -> float:
        from repro.analysis.metrics import percentile

        return percentile(self.latencies, pct)

    def percentiles(self) -> Dict[str, float]:
        return latency_percentiles(self.latencies)

    def qps_at_latency(self, target: LatencyTarget) -> float:
        """Throughput sustainable while meeting the latency SLO.

        With ``concurrency`` independent serving streams, the host can accept
        one query per stream per target-percentile latency; if the SLO is
        already violated, throughput is scaled down by the ratio of budget to
        observed latency (the host must shed load to recover the SLO).
        """
        observed = self.percentile_latency(target.percentile)
        per_stream_rate = 1.0 / max(observed, 1e-12)
        qps = self.concurrency * per_stream_rate
        if observed <= target.budget_seconds:
            return qps
        return qps * (target.budget_seconds / observed)

    def meets(self, target: LatencyTarget) -> bool:
        return target.met_by(self.latencies)


class ServingSimulator:
    """Drives queries through an inference engine on one simulated host."""

    def __init__(self, engine: InferenceEngine, concurrency: int = 1) -> None:
        if concurrency <= 0:
            raise ValueError(f"concurrency must be positive: {concurrency}")
        self.engine = engine
        self.concurrency = concurrency

    def run(self, queries: Sequence[Query], warmup_queries: int = 0) -> HostSimulationResult:
        """Serve ``queries`` closed-loop across ``concurrency`` streams.

        The first ``warmup_queries`` are executed (so caches warm up) but are
        excluded from the reported latencies and the makespan, mirroring the
        paper's focus on steady-state behaviour.
        """
        if not queries:
            raise ValueError("run() needs at least one query")
        if warmup_queries < 0:
            raise ValueError(f"warmup_queries must be non-negative: {warmup_queries}")
        if warmup_queries >= len(queries):
            raise ValueError(
                f"warmup_queries ({warmup_queries}) must leave measured queries "
                f"({len(queries)} supplied)"
            )

        for query in queries[:warmup_queries]:
            self.engine.run_query(query, start_time=0.0)

        measured = queries[warmup_queries:]
        stream_clock = [0.0] * self.concurrency
        latencies: List[float] = []
        results: List[QueryResult] = []
        histogram = Histogram("latency")
        for position, query in enumerate(measured):
            stream = position % self.concurrency
            result = self.engine.run_query(query, start_time=stream_clock[stream])
            stream_clock[stream] += result.latency
            latencies.append(result.latency)
            histogram.add(result.latency)
            results.append(result)

        return HostSimulationResult(
            num_queries=len(measured),
            concurrency=self.concurrency,
            makespan_seconds=max(stream_clock),
            latencies=latencies,
            results=results,
        )
