"""Host-level serving simulation (compatibility module).

The serving stack now lives in :mod:`repro.serving.engine`, which runs both
the seed's closed-loop round-robin schedule and the event-driven open-loop
mode on one engine.  This module re-exports the historical names so existing
imports (``from repro.serving.host_sim import ServingSimulator``) keep
working; new code should import from :mod:`repro.serving.engine` (or
:mod:`repro.serving`) directly.
"""

from __future__ import annotations

from repro.serving.engine import (
    HostSimulationResult,
    OpenLoopResult,
    QueryRecord,
    ServingEngine,
    ServingSimulator,
)

__all__ = [
    "HostSimulationResult",
    "OpenLoopResult",
    "QueryRecord",
    "ServingEngine",
    "ServingSimulator",
]
