"""Scale-out serving: sharding user embeddings across helper hosts.

The alternative to SDM for models that exceed host DRAM (Lui et al., 2021):
the user embedding tables are sharded over remote ``HW-S`` hosts and fetched
over the network.  The paper's M2 deployment needs one helper per five
accelerator hosts; scale-out adds power, operational complexity and a larger
failure domain, which is exactly what the SDM configuration avoids
(section 5.2, Table 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.serving.engine import HostSimulationResult
from repro.serving.latency import LatencyTarget
from repro.serving.platform import HostPlatform
from repro.serving.power import PowerModel
from repro.sim.units import MICROSECOND


@dataclass(frozen=True)
class ScaleOutPlan:
    """Resource plan for a scale-out deployment of one model."""

    main_platform: HostPlatform
    helper_platform: HostPlatform
    num_main_hosts: int
    num_helper_hosts: int
    remote_fetch_latency: float
    hosts_per_query: float

    @property
    def total_hosts(self) -> int:
        return self.num_main_hosts + self.num_helper_hosts

    def total_power(self, power_model: PowerModel) -> float:
        return (
            power_model.fleet_power(self.main_platform, self.num_main_hosts)
            + power_model.fleet_power(self.helper_platform, self.num_helper_hosts)
        )

    @property
    def failure_domain_factor(self) -> float:
        """How many hosts participate in serving a single query (complexity/
        failure-exposure proxy; 1.0 for a scale-up deployment)."""
        return self.hosts_per_query


def plan_scale_out(
    main_platform: HostPlatform,
    helper_platform: HostPlatform,
    num_main_hosts: int,
    main_hosts_per_helper: float = 5.0,
    user_capacity_bytes: float = 0.0,
    remote_fetch_latency: float = 300 * MICROSECOND,
) -> ScaleOutPlan:
    """Plan a scale-out deployment.

    ``main_hosts_per_helper`` is the paper's "a HW-S on average can serve 5
    HW-AN".  ``user_capacity_bytes`` checks the helpers actually have the DRAM
    to shard the user embeddings.
    """
    if num_main_hosts <= 0:
        raise ValueError(f"num_main_hosts must be positive: {num_main_hosts}")
    if main_hosts_per_helper <= 0:
        raise ValueError(f"main_hosts_per_helper must be positive: {main_hosts_per_helper}")
    num_helpers = max(int(round(num_main_hosts / main_hosts_per_helper)), 1)
    if user_capacity_bytes > 0:
        shard_bytes = user_capacity_bytes  # each helper holds a full replica shard set
        helpers_for_capacity = int(shard_bytes // helper_platform.dram_bytes) + 1
        num_helpers = max(num_helpers, helpers_for_capacity)
    return ScaleOutPlan(
        main_platform=main_platform,
        helper_platform=helper_platform,
        num_main_hosts=num_main_hosts,
        num_helper_hosts=num_helpers,
        remote_fetch_latency=remote_fetch_latency,
        hosts_per_query=1.0 + 1.0,  # the main host plus (at least) one helper
    )


def plan_scale_out_from_result(
    main_platform: HostPlatform,
    helper_platform: HostPlatform,
    host_result: HostSimulationResult,
    target: LatencyTarget,
    fleet_qps: float,
    main_hosts_per_helper: float = 5.0,
    user_capacity_bytes: float = 0.0,
    remote_fetch_latency: float = 300 * MICROSECOND,
) -> ScaleOutPlan:
    """Plan a scale-out deployment sized by a *measured* host simulation.

    The number of main hosts comes from the fleet demand divided by the
    per-host throughput the simulation sustained at the SLO
    (:meth:`~repro.serving.engine.HostSimulationResult.qps_at_latency`), so an
    open-loop run that saturates — queueing delay pushing the observed
    percentile over budget — directly inflates the host count, exactly the
    effect scale-out deployments pay for (section 5.2, Table 9).
    """
    if fleet_qps <= 0:
        raise ValueError(f"fleet_qps must be positive: {fleet_qps}")
    qps_per_host = host_result.qps_at_latency(target)
    if qps_per_host <= 0:
        raise ValueError(
            f"host simulation sustains no throughput at the SLO: {qps_per_host}"
        )
    num_main_hosts = math.ceil(fleet_qps / qps_per_host)
    return plan_scale_out(
        main_platform,
        helper_platform,
        num_main_hosts,
        main_hosts_per_helper=main_hosts_per_helper,
        user_capacity_bytes=user_capacity_bytes,
        remote_fetch_latency=remote_fetch_latency,
    )
