"""Hyper-scale deployment modelling: platforms, power, capacity planning.

Implements the warehouse-scale accounting of sections 2.3 and 5: hardware
platform configurations (Table 7), the QPS/latency/resource rooflines of
Equations 5-7, the normalised power model behind Tables 8, 9 and 11, the
scale-out alternative, the multi-tenancy study, and a host-level serving
simulator that runs a scaled model end to end through an SDM backend.
"""

from repro.serving.platform import (
    AcceleratorSpec,
    HostPlatform,
    HW_AN,
    HW_AO,
    HW_FA,
    HW_FAO,
    HW_L,
    HW_S,
    HW_SS,
)
from repro.serving.power import PowerModel, power_saving
from repro.serving.latency import LatencyTarget, latency_percentiles
from repro.serving.capacity_planner import (
    CapacityPlan,
    DeploymentScenario,
    hosts_needed,
    plan_deployment,
    qps_per_host,
    capacity_plan_from_host_result,
    sm_bound_qps,
    ssds_needed,
)
from repro.serving.scaleout import ScaleOutPlan, plan_scale_out, plan_scale_out_from_result
from repro.serving.multitenancy import MultiTenancyScenario, evaluate_multi_tenancy
from repro.serving.engine import (
    HostSimulationResult,
    OpenLoopResult,
    QueryRecord,
    ServingEngine,
    ServingSimulator,
)
from repro.serving.fleet import (
    RollingUpdateConfig,
    RollingUpdateReport,
    rolling_update_from_host_result,
    simulate_rolling_update,
)

__all__ = [
    "HostPlatform",
    "AcceleratorSpec",
    "HW_L",
    "HW_S",
    "HW_SS",
    "HW_AN",
    "HW_AO",
    "HW_FA",
    "HW_FAO",
    "PowerModel",
    "power_saving",
    "LatencyTarget",
    "latency_percentiles",
    "CapacityPlan",
    "DeploymentScenario",
    "qps_per_host",
    "hosts_needed",
    "plan_deployment",
    "sm_bound_qps",
    "ssds_needed",
    "ScaleOutPlan",
    "plan_scale_out",
    "plan_scale_out_from_result",
    "MultiTenancyScenario",
    "evaluate_multi_tenancy",
    "ServingEngine",
    "ServingSimulator",
    "HostSimulationResult",
    "OpenLoopResult",
    "QueryRecord",
    "RollingUpdateConfig",
    "RollingUpdateReport",
    "capacity_plan_from_host_result",
    "rolling_update_from_host_result",
    "simulate_rolling_update",
]
