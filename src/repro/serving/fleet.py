"""Fleet-level rolling-update simulation.

Combines the deployment plan (Eq. 5-7), the model-update planner (appendix
A.3) and the warmup model (appendix A.4) into a single simulation of a fleet
serving one model while its hosts are refreshed in rolling batches: at any
moment some hosts are offline writing the new embedding tables to SM and some
are back online but serving at reduced throughput until their caches warm.
The result is the effective fleet capacity over time and the extra hosts that
must be provisioned to keep serving the target QPS throughout an update wave.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.model_update import ModelUpdatePlanner, UpdateStrategy
from repro.core.warmup import warmup_capacity_overhead
from repro.serving.capacity_planner import CapacityPlan, capacity_plan_from_host_result
from repro.serving.engine import HostSimulationResult
from repro.serving.latency import LatencyTarget
from repro.serving.platform import HostPlatform


@dataclass(frozen=True)
class RollingUpdateConfig:
    """Parameters of one rolling update wave across a fleet.

    Attributes
    ----------
    batch_fraction:
        Fraction of hosts taken through the update at a time (the paper's
        ``r``).
    warmup_seconds:
        Time a freshly updated host needs to re-warm its SM cache.
    warmup_performance:
        Relative throughput of a host while its cache warms (the paper's
        ``p``).
    update_interval_seconds:
        Time between consecutive model refreshes (the paper's ``t``).
    strategy:
        How the refresh is applied to SM (offline, online or incremental).
    """

    batch_fraction: float = 0.10
    warmup_seconds: float = 300.0
    warmup_performance: float = 0.5
    update_interval_seconds: float = 1800.0
    strategy: UpdateStrategy = UpdateStrategy.FULL_OFFLINE

    def __post_init__(self) -> None:
        if not 0.0 < self.batch_fraction <= 1.0:
            raise ValueError(f"batch_fraction must be in (0, 1]: {self.batch_fraction}")
        if self.warmup_seconds <= 0:
            raise ValueError(f"warmup_seconds must be positive: {self.warmup_seconds}")
        if not 0.0 < self.warmup_performance <= 1.0:
            raise ValueError(
                f"warmup_performance must be in (0, 1]: {self.warmup_performance}"
            )
        if self.update_interval_seconds <= 0:
            raise ValueError(
                f"update_interval_seconds must be positive: {self.update_interval_seconds}"
            )


@dataclass(frozen=True)
class FleetCapacityPoint:
    """Effective fleet capacity at one moment of the update wave."""

    time_seconds: float
    hosts_offline: int
    hosts_warming: int
    effective_qps: float


@dataclass(frozen=True)
class RollingUpdateReport:
    """Outcome of simulating one full rolling-update wave."""

    plan: CapacityPlan
    config: RollingUpdateConfig
    update_duration_seconds: float
    wave_duration_seconds: float
    timeline: List[FleetCapacityPoint]
    minimum_effective_qps: float
    capacity_overhead: float

    @property
    def worst_case_capacity_fraction(self) -> float:
        """Lowest effective capacity relative to the fully-online fleet."""
        return self.minimum_effective_qps / (
            self.plan.num_hosts * self.plan.scenario.qps_per_host
        )

    def extra_hosts_needed(self, target_qps: float) -> int:
        """Hosts to add so the fleet still serves ``target_qps`` at the worst point."""
        if target_qps <= 0:
            raise ValueError(f"target_qps must be positive: {target_qps}")
        shortfall = target_qps - self.minimum_effective_qps
        if shortfall <= 0:
            return 0
        return math.ceil(shortfall / self.plan.scenario.qps_per_host)


def simulate_rolling_update(
    plan: CapacityPlan,
    update_planner: ModelUpdatePlanner,
    config: RollingUpdateConfig,
    time_step_seconds: float = 30.0,
) -> RollingUpdateReport:
    """Simulate one rolling-update wave over a deployed fleet.

    Hosts are updated in batches of ``batch_fraction * num_hosts``.  A host in
    the offline phase contributes no capacity (unless the update strategy
    serves during the update), and a host in the warmup phase contributes
    ``warmup_performance`` of its capacity.
    """
    if time_step_seconds <= 0:
        raise ValueError(f"time_step_seconds must be positive: {time_step_seconds}")

    update_plan = update_planner.plan(config.strategy)
    per_host_update_seconds = update_plan.duration_seconds
    host_qps = plan.scenario.qps_per_host
    num_hosts = plan.num_hosts
    batch_size = max(int(round(num_hosts * config.batch_fraction)), 1)
    num_batches = math.ceil(num_hosts / batch_size)

    offline_counts_towards_capacity = update_plan.host_serving_during_update
    wave_duration = num_batches * per_host_update_seconds + config.warmup_seconds

    timeline: List[FleetCapacityPoint] = []
    minimum_qps = float("inf")
    steps = max(int(math.ceil(wave_duration / time_step_seconds)), 1) + 1
    for step in range(steps):
        now = min(step * time_step_seconds, wave_duration)
        offline = 0
        warming = 0
        for batch in range(num_batches):
            batch_hosts = min(batch_size, num_hosts - batch * batch_size)
            update_start = batch * per_host_update_seconds
            update_end = update_start + per_host_update_seconds
            warmup_end = update_end + config.warmup_seconds
            if update_start <= now < update_end:
                offline += batch_hosts
            elif update_end <= now < warmup_end:
                warming += batch_hosts
        online = num_hosts - offline - warming
        effective = online * host_qps + warming * host_qps * config.warmup_performance
        if offline_counts_towards_capacity:
            effective += offline * host_qps * config.warmup_performance
        minimum_qps = min(minimum_qps, effective)
        timeline.append(
            FleetCapacityPoint(
                time_seconds=now,
                hosts_offline=offline,
                hosts_warming=warming,
                effective_qps=effective,
            )
        )

    overhead = warmup_capacity_overhead(
        updating_fraction=config.batch_fraction,
        warmup_minutes=config.warmup_seconds / 60.0,
        warmup_performance=config.warmup_performance,
        update_interval_minutes=config.update_interval_seconds / 60.0,
    )
    return RollingUpdateReport(
        plan=plan,
        config=config,
        update_duration_seconds=per_host_update_seconds,
        wave_duration_seconds=wave_duration,
        timeline=timeline,
        minimum_effective_qps=minimum_qps,
        capacity_overhead=overhead,
    )


def rolling_update_from_host_result(
    scenario_name: str,
    platform: HostPlatform,
    host_result: HostSimulationResult,
    target: LatencyTarget,
    fleet_qps: float,
    update_planner: ModelUpdatePlanner,
    config: RollingUpdateConfig,
    time_step_seconds: float = 30.0,
) -> RollingUpdateReport:
    """Simulate a rolling update over a fleet sized by a *measured* host run.

    The fleet is planned from the throughput the host simulation sustained at
    the SLO (:func:`~repro.serving.capacity_planner.capacity_plan_from_host_result`),
    so an open-loop run that saturates — queueing delay eating the latency
    budget — yields a larger fleet and a correspondingly different update
    wave, instead of assuming the analytic closed-loop service rate.
    """
    plan = capacity_plan_from_host_result(
        scenario_name, platform, host_result, target, fleet_qps
    )
    return simulate_rolling_update(plan, update_planner, config, time_step_seconds)
