"""Capacity planning rooflines (Equations 5-7) and SSD sizing (Table 10).

``QPS(HW) ∝ min(BW(HW)/BWq, Comp(HW)/Compq)`` -- a host serves queries at the
rate allowed by its most constrained resource; the total demand then
translates into a host count and, with the power model, fleet power.  For
SDM hosts the additional constraint is the SM tier's IOPS at acceptable
latency, which is where Nand Flash and Optane differentiate (section 5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dlrm.model_config import TableProfile
from repro.serving.engine import HostSimulationResult
from repro.serving.latency import LatencyTarget
from repro.serving.platform import HostPlatform
from repro.serving.power import PowerModel
from repro.storage.latency_model import LoadedLatencyModel
from repro.storage.spec import DeviceSpec


def qps_per_host(
    platform: HostPlatform,
    bytes_per_query: float,
    flops_per_query: float,
) -> float:
    """Equation 5: the QPS one host sustains, memory- or compute-bound."""
    if bytes_per_query <= 0:
        raise ValueError(f"bytes_per_query must be positive: {bytes_per_query}")
    if flops_per_query <= 0:
        raise ValueError(f"flops_per_query must be positive: {flops_per_query}")
    memory_bound = platform.fast_memory_bandwidth / bytes_per_query
    compute_bound = platform.compute_flops / flops_per_query
    return min(memory_bound, compute_bound)


def query_latency_estimate(
    platform: HostPlatform,
    bytes_per_query: float,
    flops_per_query: float,
) -> float:
    """Equation 6: sum of the memory and compute service times of one query."""
    if bytes_per_query <= 0:
        raise ValueError(f"bytes_per_query must be positive: {bytes_per_query}")
    if flops_per_query <= 0:
        raise ValueError(f"flops_per_query must be positive: {flops_per_query}")
    return (
        bytes_per_query / platform.fast_memory_bandwidth
        + flops_per_query / platform.compute_flops
    )


def hosts_needed(total_qps: float, host_qps: float) -> int:
    """Equation 7: hosts required to serve the region-level throughput."""
    if total_qps <= 0:
        raise ValueError(f"total_qps must be positive: {total_qps}")
    if host_qps <= 0:
        raise ValueError(f"host_qps must be positive: {host_qps}")
    return math.ceil(total_qps / host_qps)


def sm_bound_qps(
    user_lookups_per_query: float,
    devices: Sequence[DeviceSpec],
    cache_hit_rate: float,
    latency_budget: float,
) -> float:
    """QPS ceiling imposed by the SM tier's IOPS at acceptable latency.

    Each query generates ``user_lookups_per_query * (1 - hit_rate)`` device
    IOs; each device contributes the largest IOPS whose expected loaded
    latency stays within ``latency_budget`` (Nand Flash must be considerably
    under-utilised, Optane barely at all -- section 5.2).
    """
    if user_lookups_per_query <= 0:
        raise ValueError(f"user_lookups_per_query must be positive: {user_lookups_per_query}")
    if not 0.0 <= cache_hit_rate < 1.0:
        raise ValueError(f"cache_hit_rate must be in [0, 1): {cache_hit_rate}")
    if not devices:
        raise ValueError("sm_bound_qps needs at least one device")
    usable_iops = sum(
        LoadedLatencyModel(spec).max_iops_within_latency(latency_budget) for spec in devices
    )
    ios_per_query = user_lookups_per_query * (1.0 - cache_hit_rate)
    return usable_iops / ios_per_query


def ssds_needed(required_iops: float, device: DeviceSpec, derate: float = 1.0) -> int:
    """Number of SSDs needed to sustain ``required_iops`` (Table 10 sizing).

    ``derate`` < 1 under-utilises each device (mandatory for Nand Flash to
    keep its latency acceptable).
    """
    if required_iops <= 0:
        raise ValueError(f"required_iops must be positive: {required_iops}")
    if not 0.0 < derate <= 1.0:
        raise ValueError(f"derate must be in (0, 1]: {derate}")
    per_device = device.max_read_iops * derate
    return math.ceil(required_iops / per_device)


@dataclass(frozen=True)
class DeploymentScenario:
    """One row of a deployment comparison (e.g. a row of Table 8 or 9)."""

    name: str
    platform: HostPlatform
    qps_per_host: float
    total_qps: float
    helper_platform: Optional[HostPlatform] = None
    helper_hosts_per_host: float = 0.0

    def __post_init__(self) -> None:
        if self.qps_per_host <= 0:
            raise ValueError(f"qps_per_host must be positive: {self.qps_per_host}")
        if self.total_qps <= 0:
            raise ValueError(f"total_qps must be positive: {self.total_qps}")
        if self.helper_hosts_per_host < 0:
            raise ValueError(
                f"helper_hosts_per_host must be non-negative: {self.helper_hosts_per_host}"
            )
        if self.helper_hosts_per_host > 0 and self.helper_platform is None:
            raise ValueError("helper_hosts_per_host set but no helper_platform given")


@dataclass(frozen=True)
class CapacityPlan:
    """The host counts and power a scenario needs."""

    scenario: DeploymentScenario
    num_hosts: int
    num_helper_hosts: int
    host_power: float
    helper_host_power: float

    @property
    def total_power(self) -> float:
        return self.num_hosts * self.host_power + self.num_helper_hosts * self.helper_host_power

    @property
    def total_hosts(self) -> int:
        return self.num_hosts + self.num_helper_hosts

    @property
    def power_per_kqps(self) -> float:
        return self.total_power / (self.scenario.total_qps / 1000.0)


def plan_deployment(
    scenario: DeploymentScenario, power_model: Optional[PowerModel] = None
) -> CapacityPlan:
    """Turn a scenario into host counts and total power (Eq. 7 + power model)."""
    power_model = power_model if power_model is not None else PowerModel()
    num_hosts = hosts_needed(scenario.total_qps, scenario.qps_per_host)
    num_helpers = math.ceil(num_hosts * scenario.helper_hosts_per_host)
    helper_power = (
        power_model.host_power(scenario.helper_platform)
        if scenario.helper_platform is not None
        else 0.0
    )
    return CapacityPlan(
        scenario=scenario,
        num_hosts=num_hosts,
        num_helper_hosts=num_helpers,
        host_power=power_model.host_power(scenario.platform),
        helper_host_power=helper_power,
    )


def capacity_plan_from_host_result(
    scenario_name: str,
    platform: HostPlatform,
    host_result: HostSimulationResult,
    target: LatencyTarget,
    fleet_qps: float,
    helper_platform: Optional[HostPlatform] = None,
    helper_hosts_per_host: float = 0.0,
    power_model: Optional[PowerModel] = None,
) -> CapacityPlan:
    """Size a fleet from a *measured* host simulation instead of an analytic QPS.

    The per-host throughput is what the simulation demonstrated sustainable at
    the SLO (:meth:`~repro.serving.engine.HostSimulationResult.qps_at_latency`):
    for an open-loop run that is the measured throughput, shed down when the
    observed percentile exceeds the budget — so capacity plans inherit the
    queueing delay and admission backpressure the event-driven engine models,
    rather than assuming the host runs exactly at its closed-loop service rate.
    """
    qps_per_host = host_result.qps_at_latency(target)
    if qps_per_host <= 0:
        raise ValueError(
            f"host simulation sustains no throughput at the SLO: {qps_per_host}"
        )
    scenario = DeploymentScenario(
        name=scenario_name,
        platform=platform,
        qps_per_host=qps_per_host,
        total_qps=fleet_qps,
        helper_platform=helper_platform,
        helper_hosts_per_host=helper_hosts_per_host,
    )
    return plan_deployment(scenario, power_model)


def profile_flops_per_query(profiles: Sequence[TableProfile], mlp_flops: float, item_batch: int) -> float:
    """Rough compute demand per query: MLP flops for every ranked item."""
    if mlp_flops <= 0:
        raise ValueError(f"mlp_flops must be positive: {mlp_flops}")
    if item_batch <= 0:
        raise ValueError(f"item_batch must be positive: {item_batch}")
    del profiles  # embedding compute is negligible next to the MLPs
    return mlp_flops * item_batch
