"""Normalised power accounting for deployment comparisons.

Power (query/watt at acceptable latency) is the paper's primary fleet-level
metric.  The model here mirrors the paper's tables: per-host power is
normalised against the experiment's baseline platform, attached SSDs add a
small fraction, and fleet power is host power times host count (Table 8/9) or
host power divided by utilisation for the multi-tenancy roofline (Table 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.serving.platform import HostPlatform


def power_saving(baseline_power: float, candidate_power: float) -> float:
    """Fractional power saving of ``candidate`` relative to ``baseline``."""
    if baseline_power <= 0:
        raise ValueError(f"baseline_power must be positive: {baseline_power}")
    if candidate_power < 0:
        raise ValueError(f"candidate_power must be non-negative: {candidate_power}")
    return 1.0 - candidate_power / baseline_power


@dataclass(frozen=True)
class PowerModel:
    """Computes per-host and fleet power for deployment scenarios."""

    #: Additional relative power per attached SSD when the platform does not
    #: already fold SSD power into its ``relative_power``.
    default_ssd_power_fraction: float = 0.01

    def host_power(self, platform: HostPlatform) -> float:
        """Relative power of one host of this platform, including SSDs."""
        return platform.power_with_ssds

    def fleet_power(self, platform: HostPlatform, num_hosts: float) -> float:
        """Total relative power of a homogeneous fleet."""
        if num_hosts < 0:
            raise ValueError(f"num_hosts must be non-negative: {num_hosts}")
        return self.host_power(platform) * num_hosts

    def mixed_fleet_power(self, hosts: Mapping[HostPlatform, float]) -> float:
        """Total power of a fleet mixing several platforms (e.g. scale-out)."""
        return sum(self.fleet_power(platform, count) for platform, count in hosts.items())

    def utilisation_normalised_power(
        self, platform: HostPlatform, utilisation: float
    ) -> float:
        """Power per unit of useful work (the Table 11 'fleet power' metric).

        A fleet running at 63% utilisation needs ``1 / 0.63`` hosts per unit of
        work compared to a perfectly utilised fleet, so its normalised power is
        ``host_power / utilisation``.
        """
        if not 0.0 < utilisation <= 1.0:
            raise ValueError(f"utilisation must be in (0, 1]: {utilisation}")
        return self.host_power(platform) / utilisation
