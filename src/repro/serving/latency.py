"""Latency targets and percentile helpers.

Different models/use-cases have different latency disciplines: some require a
strict p99 with active load balancing, others a p95 achieved through static
allocation (section 2.3).  A :class:`LatencyTarget` captures which percentile
matters and the budget in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.analysis.metrics import percentile
from repro.sim.units import MILLISECOND


@dataclass(frozen=True)
class LatencyTarget:
    """A latency SLO: the percentile of interest and its budget."""

    percentile: float = 95.0
    budget_seconds: float = 25 * MILLISECOND

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100]: {self.percentile}")
        if self.budget_seconds <= 0:
            raise ValueError(f"budget_seconds must be positive: {self.budget_seconds}")

    def met_by(self, latencies: Sequence[float]) -> bool:
        """Whether a sample of per-query latencies meets the SLO."""
        return percentile(latencies, self.percentile) <= self.budget_seconds

    def headroom(self, latencies: Sequence[float]) -> float:
        """Fraction of the budget left at the target percentile (negative if violated)."""
        observed = percentile(latencies, self.percentile)
        return 1.0 - observed / self.budget_seconds


def latency_percentiles(latencies: Iterable[float]) -> Dict[str, float]:
    """The percentiles the paper reports (p50/p95/p99) plus the mean."""
    values = list(latencies)
    if not values:
        raise ValueError("latency sample set is empty")
    return {
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
    }
