"""Multi-tenancy modelling for future accelerator platforms (section 5.3).

Experimental models run at low traffic but still need their (large) user
embeddings resident, so co-locating several of them on one powerful host is
memory-capacity bound long before it is compute bound.  Moving the user
embeddings to SM lifts the memory ceiling, more models fit per host,
utilisation rises and the fleet burns less power per unit of work
(Table 11: 0.63 -> 0.90 utilisation, ~29% power saving).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.serving.platform import HostPlatform
from repro.serving.power import PowerModel
from repro.sim.units import GB


@dataclass(frozen=True)
class MultiTenancyScenario:
    """Co-location of experimental models on one host type."""

    platform: HostPlatform
    model_dram_bytes: float
    model_sm_bytes: float
    model_compute_fraction: float
    dram_reserved_bytes: float = 64 * GB
    use_sdm: bool = False

    def __post_init__(self) -> None:
        if self.model_dram_bytes < 0 or self.model_sm_bytes < 0:
            raise ValueError("per-model memory requirements must be non-negative")
        if not 0.0 < self.model_compute_fraction <= 1.0:
            raise ValueError(
                f"model_compute_fraction must be in (0, 1]: {self.model_compute_fraction}"
            )
        if self.dram_reserved_bytes < 0:
            raise ValueError(f"dram_reserved_bytes must be non-negative: {self.dram_reserved_bytes}")


@dataclass(frozen=True)
class MultiTenancyResult:
    """Utilisation and normalised fleet power for one scenario."""

    scenario: MultiTenancyScenario
    models_by_memory: float
    models_by_compute: float
    models_per_host: float
    utilisation: float
    fleet_power_per_work: float


def evaluate_multi_tenancy(
    scenario: MultiTenancyScenario, power_model: PowerModel | None = None
) -> MultiTenancyResult:
    """Roofline estimate of host utilisation and power per unit of work."""
    power_model = power_model if power_model is not None else PowerModel()
    platform = scenario.platform

    available_dram = max(platform.dram_bytes - scenario.dram_reserved_bytes, 0.0)
    if scenario.use_sdm:
        # With SDM the bulk of each model's capacity sits on SM; DRAM holds
        # only the row cache share (model_dram_bytes) and SM must fit the rest.
        dram_bound = (
            available_dram / scenario.model_dram_bytes
            if scenario.model_dram_bytes > 0
            else float("inf")
        )
        sm_bound = (
            platform.total_sm_capacity_bytes / scenario.model_sm_bytes
            if scenario.model_sm_bytes > 0
            else float("inf")
        )
        models_by_memory = min(dram_bound, sm_bound)
    else:
        total_model_dram = scenario.model_dram_bytes + scenario.model_sm_bytes
        models_by_memory = (
            available_dram / total_model_dram if total_model_dram > 0 else float("inf")
        )

    models_by_compute = 1.0 / scenario.model_compute_fraction
    models_per_host = min(models_by_memory, models_by_compute)
    if models_per_host < 1.0:
        raise ValueError(
            "the platform cannot host even one model under this scenario "
            f"(memory allows {models_by_memory:.2f}, compute allows {models_by_compute:.2f})"
        )
    utilisation = min(models_per_host * scenario.model_compute_fraction, 1.0)
    return MultiTenancyResult(
        scenario=scenario,
        models_by_memory=models_by_memory,
        models_by_compute=models_by_compute,
        models_per_host=models_per_host,
        utilisation=utilisation,
        fleet_power_per_work=power_model.utilisation_normalised_power(platform, utilisation),
    )


def compare_multi_tenancy(
    baseline: MultiTenancyScenario,
    with_sdm: MultiTenancyScenario,
    power_model: PowerModel | None = None,
) -> List[MultiTenancyResult]:
    """Evaluate both scenarios and normalise fleet power to the baseline."""
    power_model = power_model if power_model is not None else PowerModel()
    base = evaluate_multi_tenancy(baseline, power_model)
    sdm = evaluate_multi_tenancy(with_sdm, power_model)
    return [base, sdm]
