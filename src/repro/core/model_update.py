"""Model update planning (appendix A.3).

Models are refreshed frequently; embedding tables on SM make updates slower
(write bandwidth, endurance) and interact with the row cache (dirty
write-back lets a host keep serving during the update).  The planner computes
update duration, checks endurance sustainability and compares full vs
incremental update strategies, including the dense-only fast path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.storage.endurance import EnduranceModel
from repro.storage.spec import DeviceSpec


class UpdateStrategy(str, enum.Enum):
    """How a model refresh is applied to the SM tier."""

    FULL_OFFLINE = "full_offline"
    FULL_ONLINE = "full_online"
    INCREMENTAL = "incremental"
    DENSE_ONLY = "dense_only"


@dataclass(frozen=True)
class UpdatePlan:
    """Result of planning one model refresh."""

    strategy: UpdateStrategy
    bytes_written: float
    duration_seconds: float
    sustainable_interval_seconds: float
    host_serving_during_update: bool

    def sustainable_at_interval(self, interval_seconds: float) -> bool:
        """Whether refreshing at ``interval_seconds`` stays within endurance."""
        if interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be positive: {interval_seconds}")
        return self.sustainable_interval_seconds <= interval_seconds


class ModelUpdatePlanner:
    """Plans model refreshes for a set of SM devices."""

    def __init__(
        self,
        device_specs: Sequence[DeviceSpec],
        embedding_bytes_on_sm: float,
        dense_bytes: float,
        online_write_slowdown: float = 2.0,
    ) -> None:
        if not device_specs:
            raise ValueError("planner needs at least one device spec")
        if embedding_bytes_on_sm <= 0:
            raise ValueError(
                f"embedding_bytes_on_sm must be positive: {embedding_bytes_on_sm}"
            )
        if dense_bytes < 0:
            raise ValueError(f"dense_bytes must be non-negative: {dense_bytes}")
        if online_write_slowdown < 1.0:
            raise ValueError(
                f"online_write_slowdown must be >= 1.0: {online_write_slowdown}"
            )
        self.device_specs = list(device_specs)
        self.embedding_bytes_on_sm = embedding_bytes_on_sm
        self.dense_bytes = dense_bytes
        self.online_write_slowdown = online_write_slowdown

    @property
    def aggregate_write_bandwidth(self) -> float:
        return sum(spec.write_bandwidth for spec in self.device_specs)

    @property
    def aggregate_capacity_bytes(self) -> float:
        return float(sum(spec.capacity_bytes for spec in self.device_specs))

    def _sustainable_interval(self, bytes_written: float) -> float:
        """Shortest refresh interval the devices' endurance tolerates."""
        if bytes_written == 0:
            return 0.0
        intervals = []
        for spec in self.device_specs:
            share = spec.capacity_bytes / self.aggregate_capacity_bytes
            endurance = EnduranceModel(spec)
            intervals.append(endurance.min_update_interval_seconds(bytes_written * share))
        return max(intervals)

    def plan(
        self,
        strategy: UpdateStrategy,
        incremental_fraction: float = 0.1,
    ) -> UpdatePlan:
        """Plan a refresh with the given strategy.

        ``incremental_fraction`` is the share of embedding bytes rewritten by
        an incremental update.
        """
        strategy = UpdateStrategy(strategy)
        if not 0.0 < incremental_fraction <= 1.0:
            raise ValueError(
                f"incremental_fraction must be in (0, 1]: {incremental_fraction}"
            )

        if strategy is UpdateStrategy.DENSE_ONLY:
            # Dense parameters live in FM; no SM writes at all.
            return UpdatePlan(
                strategy=strategy,
                bytes_written=0.0,
                duration_seconds=self.dense_bytes / 10.0e9 if self.dense_bytes else 0.0,
                sustainable_interval_seconds=0.0,
                host_serving_during_update=True,
            )

        if strategy is UpdateStrategy.INCREMENTAL:
            bytes_written = self.embedding_bytes_on_sm * incremental_fraction
            serving = True
            slowdown = self.online_write_slowdown
        elif strategy is UpdateStrategy.FULL_ONLINE:
            bytes_written = self.embedding_bytes_on_sm
            serving = True
            slowdown = self.online_write_slowdown
        else:  # FULL_OFFLINE
            bytes_written = self.embedding_bytes_on_sm
            serving = False
            slowdown = 1.0

        duration = bytes_written * slowdown / self.aggregate_write_bandwidth
        return UpdatePlan(
            strategy=strategy,
            bytes_written=bytes_written,
            duration_seconds=duration,
            sustainable_interval_seconds=self._sustainable_interval(bytes_written),
            host_serving_during_update=serving,
        )
