"""Serving-configuration auto-tuning.

The paper exposes several Tuning APIs (cache sizes, outstanding IOs, DRAM
budget, LenThreshold) and notes that the desired serving configuration is
decided at model deployment time, e.g. through an auto-tuning tool.  This
module provides that tool: a deterministic grid search over
:class:`~repro.core.config.SDMConfig` overrides driven by a user-supplied
evaluation function (typically measured QPS at a latency target, or measured
p95 latency).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence

from repro.core.config import SDMConfig

#: An evaluation returns a score; higher is better.
EvaluationFn = Callable[[SDMConfig], float]


@dataclass(frozen=True)
class TuningResult:
    """One evaluated configuration."""

    overrides: Dict[str, object]
    config: SDMConfig
    score: float


@dataclass
class AutoTuner:
    """Grid search over SDMConfig overrides.

    ``search_space`` maps field names of :class:`SDMConfig` to the candidate
    values to try; every combination is evaluated.
    """

    base_config: SDMConfig
    search_space: Mapping[str, Sequence[object]]
    evaluate: EvaluationFn

    def __post_init__(self) -> None:
        if not self.search_space:
            raise ValueError("search_space must contain at least one parameter")
        for name, values in self.search_space.items():
            if not hasattr(self.base_config, name):
                raise ValueError(f"SDMConfig has no field {name!r}")
            if not values:
                raise ValueError(f"search_space[{name!r}] has no candidate values")

    def candidates(self) -> List[Dict[str, object]]:
        """All override combinations, in deterministic order."""
        names = sorted(self.search_space)
        combos = itertools.product(*(self.search_space[name] for name in names))
        return [dict(zip(names, combo)) for combo in combos]

    def run(self) -> List[TuningResult]:
        """Evaluate every candidate; results are sorted best-first."""
        results: List[TuningResult] = []
        for overrides in self.candidates():
            config = self.base_config.with_overrides(**overrides)
            score = self.evaluate(config)
            results.append(TuningResult(overrides=overrides, config=config, score=score))
        results.sort(key=lambda result: result.score, reverse=True)
        return results

    def best(self) -> TuningResult:
        """Run the search and return the best configuration."""
        results = self.run()
        return results[0]
