"""Software Defined Memory (SDM) -- the paper's primary contribution.

Ties the substrates together: embedding tables whose bandwidth demand is low
(user tables) are placed on simulated Storage Class Memory devices, a
software-managed row cache in fast memory captures the hot rows, a pooled
embedding cache short-circuits repeated full index sequences, and placement /
de-pruning / de-quantisation policies trade cheap SM capacity for FM space
and CPU work.  :class:`~repro.core.sdm.SoftwareDefinedMemory` implements the
:class:`~repro.dlrm.inference.EmbeddingBackend` interface, so any
:class:`~repro.dlrm.inference.InferenceEngine` can serve a model through it.
"""

from repro.core.config import AccessPathKind, SDMConfig
from repro.core.bandwidth import (
    BandwidthRequirement,
    bytes_per_query,
    bandwidth_requirement,
    iops_requirement,
    sm_time_budget,
    table_bandwidth_summary,
)
from repro.core.placement import (
    Placement,
    PlacementPolicy,
    TablePlacement,
    Tier,
    compute_placement,
)
from repro.core.pooled_cache import (
    PooledEmbeddingCache,
    PooledCacheStats,
    order_invariant_hash,
    order_invariant_hash_batch,
    profile_subsequence_schemes,
)
from repro.core.depruning import DepruneResult, deprune_table
from repro.core.dequantization import DequantizedTable, dequantize_table
from repro.core.warmup import warmup_capacity_overhead, warmup_hit_rate_curve
from repro.core.model_update import ModelUpdatePlanner, UpdateStrategy
from repro.core.sdm import SDMStats, SoftwareDefinedMemory
from repro.core.autotune import AutoTuner, TuningResult

__all__ = [
    "SDMConfig",
    "AccessPathKind",
    "BandwidthRequirement",
    "bytes_per_query",
    "bandwidth_requirement",
    "iops_requirement",
    "sm_time_budget",
    "table_bandwidth_summary",
    "Placement",
    "PlacementPolicy",
    "TablePlacement",
    "Tier",
    "compute_placement",
    "PooledEmbeddingCache",
    "PooledCacheStats",
    "order_invariant_hash",
    "order_invariant_hash_batch",
    "profile_subsequence_schemes",
    "DepruneResult",
    "deprune_table",
    "DequantizedTable",
    "dequantize_table",
    "warmup_capacity_overhead",
    "warmup_hit_rate_curve",
    "ModelUpdatePlanner",
    "UpdateStrategy",
    "SoftwareDefinedMemory",
    "SDMStats",
    "AutoTuner",
    "TuningResult",
]
