"""Cache warmup after model updates (appendix A.4).

After a full model update the SM row cache is cold and per-host performance
drops until the hot rows are re-admitted (the paper observes warmup within a
few minutes).  With rolling updates across a fleet, the transient slowdown is
compensated by over-provisioning capacity:

    extra_capacity = (r * w) / (p * t)

where ``r`` is the fraction of hosts updating at a time, ``w`` the warmup
duration, ``p`` the relative performance during warmup and ``t`` the update
interval.  The paper's example (r=10%, w=5 min, p=50%, t=30 min) gives 1.2%.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple


def warmup_capacity_overhead(
    updating_fraction: float,
    warmup_minutes: float,
    warmup_performance: float,
    update_interval_minutes: float,
) -> float:
    """Extra serving capacity needed to mask cache warmup during rolling updates."""
    if not 0.0 < updating_fraction <= 1.0:
        raise ValueError(f"updating_fraction must be in (0, 1]: {updating_fraction}")
    if warmup_minutes <= 0:
        raise ValueError(f"warmup_minutes must be positive: {warmup_minutes}")
    if not 0.0 < warmup_performance <= 1.0:
        raise ValueError(f"warmup_performance must be in (0, 1]: {warmup_performance}")
    if update_interval_minutes <= 0:
        raise ValueError(f"update_interval_minutes must be positive: {update_interval_minutes}")
    if warmup_minutes > update_interval_minutes:
        raise ValueError(
            "warmup cannot take longer than the update interval: "
            f"{warmup_minutes} > {update_interval_minutes}"
        )
    return (updating_fraction * warmup_minutes) / (
        warmup_performance * update_interval_minutes
    )


def warmup_hit_rate_curve(
    run_queries: Callable[[int], float],
    checkpoints: Sequence[int],
) -> List[Tuple[int, float]]:
    """Measure how the cache hit rate climbs as queries are served.

    ``run_queries(n)`` must serve ``n`` additional queries against a freshly
    loaded SDM instance and return the *cumulative* hit rate; the helper calls
    it with the increments implied by ``checkpoints`` and returns
    ``(queries_served, hit_rate)`` points suitable for plotting the warmup
    transient.
    """
    if not checkpoints:
        raise ValueError("checkpoints must not be empty")
    ordered = sorted(set(int(c) for c in checkpoints))
    if ordered[0] <= 0:
        raise ValueError(f"checkpoints must be positive: {ordered}")
    curve: List[Tuple[int, float]] = []
    served = 0
    for checkpoint in ordered:
        increment = checkpoint - served
        hit_rate = run_queries(increment)
        served = checkpoint
        curve.append((checkpoint, hit_rate))
    return curve
