"""The Software Defined Memory embedding backend.

:class:`SoftwareDefinedMemory` places the model's user embedding tables on
simulated SM devices according to a placement policy, serves row lookups
through the unified FM row cache backed by an io_uring-style engine with
sub-block reads, optionally short-circuits whole requests through the pooled
embedding cache (Algorithm 1), and accounts for the fast-memory and CPU costs
of every choice.  It implements :class:`~repro.dlrm.inference.EmbeddingBackend`,
so an :class:`~repro.dlrm.inference.InferenceEngine` can serve queries through
it and the end-to-end latency reflects whether the SM fetch is hidden behind
the item-side work (Equation 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cache.unified import UnifiedCacheConfig, UnifiedRowCache
from repro.core.config import AccessPathKind, SDMConfig
from repro.core.depruning import deprune_table
from repro.core.dequantization import DequantizedTable, dequantize_table
from repro.core.placement import Placement, Tier, compute_placement
from repro.core.pooled_cache import PooledEmbeddingCache
from repro.dlrm.embedding import EmbeddingTableSpec
from repro.dlrm.inference import ComputeSpec, EmbeddingBackend
from repro.dlrm.model import DLRMModel
from repro.dlrm.pruning import PRUNED, PrunedEmbeddingTable
from repro.dlrm.quantization import dequantize_rows
from repro.sim.units import BLOCK_SIZE
from repro.storage.access import DirectIOReader, MmapReader
from repro.storage.block_layout import BlockLayout
from repro.storage.device import DeviceStats, SimulatedDevice
from repro.storage.io_engine import IOEngine
from repro.storage.spec import DeviceSpec, TABLE1_SPECS

#: Host CPU time per FM-resident mapping-tensor lookup (pruned tables).
MAPPING_LOOKUP_SECONDS = 3.0e-8
#: Host CPU time per row-cache probe added to the query's latency.
CACHE_PROBE_SECONDS = 2.0e-7
#: Host CPU time for a pooled-embedding-cache probe (hash + lookup).
POOLED_PROBE_SECONDS = 5.0e-7


@dataclass
class _SMTable:
    """Serving state of one table placed on the SM tier."""

    spec: EmbeddingTableSpec
    stored_rows: int
    row_bytes: int
    decode: Callable[[bytes], np.ndarray]
    cache_enabled: bool
    mapping: Optional[np.ndarray] = None
    mapping_fm_bytes: int = 0
    depruned: bool = False
    dequantized: bool = False


@dataclass
class SDMStats:
    """Cumulative serving statistics of one SDM instance."""

    queries: int = 0
    sm_table_requests: int = 0
    sm_row_lookups: int = 0
    sm_ios: int = 0
    fm_direct_lookups: int = 0
    pruned_rows_skipped: int = 0
    pooled_cache_hits: int = 0
    pooled_cache_lookups: int = 0
    user_embedding_seconds: float = 0.0

    @property
    def ios_per_query(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.sm_ios / self.queries

    @property
    def sm_lookups_per_query(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.sm_row_lookups / self.queries


class SoftwareDefinedMemory(EmbeddingBackend):
    """Tiered-memory embedding backend (the paper's SDM stack)."""

    def __init__(
        self,
        model: DLRMModel,
        config: SDMConfig,
        compute: Optional[ComputeSpec] = None,
        placement: Optional[Placement] = None,
        pruned_tables: Optional[Mapping[str, PrunedEmbeddingTable]] = None,
        devices: Optional[Sequence[SimulatedDevice]] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.compute = compute if compute is not None else ComputeSpec()
        self.pruned_tables = dict(pruned_tables) if pruned_tables else {}
        unknown_pruned = set(self.pruned_tables) - set(model.tables)
        if unknown_pruned:
            raise ValueError(
                f"pruned tables not present in the model: {sorted(unknown_pruned)}"
            )

        self.placement = (
            placement
            if placement is not None
            else compute_placement(
                model.table_specs,
                policy=config.placement_policy,
                dram_budget_bytes=config.dram_budget_bytes,
                pinned_fm_tables=config.pinned_fm_tables,
                cache_disable_alpha_threshold=config.cache_disable_alpha_threshold,
            )
        )

        self.devices = list(devices) if devices is not None else self._build_devices()
        self.layout = BlockLayout([d.spec.capacity_bytes for d in self.devices])
        self.io_engine = IOEngine(self.devices, config.io)
        if config.access_path is AccessPathKind.DIRECT_IO:
            self.access_path = DirectIOReader(self.io_engine, self.layout)
        else:
            self.access_path = MmapReader(self.io_engine, self.layout)

        self.row_cache = UnifiedRowCache(
            UnifiedCacheConfig(
                capacity_bytes=config.row_cache_capacity_bytes,
                memory_optimized_fraction=config.memory_optimized_fraction,
                small_row_threshold_bytes=config.small_row_threshold_bytes,
                num_partitions=config.num_cache_partitions,
            )
        )
        self.pooled_cache: Optional[PooledEmbeddingCache] = None
        if config.pooled_cache_enabled:
            self.pooled_cache = PooledEmbeddingCache(
                config.pooled_cache_capacity_bytes,
                len_threshold=config.pooled_len_threshold,
            )

        self.stats = SDMStats()
        self._sm_tables: Dict[str, _SMTable] = {}
        self._load_sm_tables()

    # ------------------------------------------------------------------ setup
    def _build_devices(self) -> List[SimulatedDevice]:
        base_spec: DeviceSpec = TABLE1_SPECS[self.config.device_technology]
        if self.config.device_capacity_bytes is not None:
            base_spec = base_spec.with_capacity(self.config.device_capacity_bytes)
        return [
            SimulatedDevice(base_spec, seed=self.config.seed + index)
            for index in range(self.config.num_devices)
        ]

    def _sm_source_for(self, table_name: str) -> _SMTable:
        """Decide what bytes are stored on SM for one table."""
        decision = self.placement.for_table(table_name)
        spec = self.model.table(table_name).spec

        if table_name in self.pruned_tables:
            pruned = self.pruned_tables[table_name]
            if self.config.deprune_at_load:
                result = deprune_table(pruned)
                table = result.table
                return _SMTable(
                    spec=table.spec,
                    stored_rows=table.spec.num_rows,
                    row_bytes=table.spec.row_bytes,
                    decode=self._make_quantized_decoder(table.spec),
                    cache_enabled=decision.cache_enabled,
                    depruned=True,
                )
            return _SMTable(
                spec=pruned.original_spec,
                stored_rows=pruned.table.spec.num_rows,
                row_bytes=pruned.table.spec.row_bytes,
                decode=self._make_quantized_decoder(pruned.table.spec),
                cache_enabled=decision.cache_enabled,
                mapping=pruned.mapping,
                mapping_fm_bytes=pruned.mapping_tensor_bytes,
            )

        if self.config.dequantize_at_load:
            result = dequantize_table(self.model.table(table_name))
            dequantized = result.table
            return _SMTable(
                spec=spec,
                stored_rows=spec.num_rows,
                row_bytes=dequantized.row_bytes,
                decode=DequantizedTable.decode_row,
                cache_enabled=decision.cache_enabled,
                dequantized=True,
            )

        return _SMTable(
            spec=spec,
            stored_rows=spec.num_rows,
            row_bytes=spec.row_bytes,
            decode=self._make_quantized_decoder(spec),
            cache_enabled=decision.cache_enabled,
        )

    @staticmethod
    def _make_quantized_decoder(spec: EmbeddingTableSpec) -> Callable[[bytes], np.ndarray]:
        dim, bits = spec.dim, spec.quant_bits

        def decode(raw: bytes) -> np.ndarray:
            rows = np.frombuffer(raw, dtype=np.uint8)[None, :]
            return dequantize_rows(rows, dim, bits)[0]

        return decode

    def _row_source_bytes(self, table_name: str, state: _SMTable, stored_index: int) -> bytes:
        """Serialized bytes of one stored row (used when loading to devices)."""
        if state.dequantized:
            table = self.model.table(table_name)
            return table.lookup_dense([stored_index])[0].astype(np.float32).tobytes()
        if table_name in self.pruned_tables:
            pruned = self.pruned_tables[table_name]
            if state.depruned:
                if stored_index in self._depruned_cache[table_name]:
                    return self._depruned_cache[table_name][stored_index]
                return bytes(state.row_bytes)
            return pruned.table.row_bytes_at(stored_index)
        return self.model.table(table_name).row_bytes_at(stored_index)

    def _load_sm_tables(self) -> None:
        """Lay out and write every SM-placed table onto the devices."""
        self._depruned_cache: Dict[str, Dict[int, bytes]] = {}
        for table_name in self.placement.sm_tables():
            if table_name not in self.model.tables:
                raise KeyError(
                    f"placement references table {table_name!r} that the model lacks"
                )
            state = self._sm_source_for(table_name)
            if state.depruned:
                pruned = self.pruned_tables[table_name]
                live = np.nonzero(pruned.mapping != PRUNED)[0]
                self._depruned_cache[table_name] = {
                    int(unpruned_index): pruned.table.row_bytes_at(int(pruned.mapping[unpruned_index]))
                    for unpruned_index in live
                }
            self._sm_tables[table_name] = state
            self.layout.add_table(table_name, state.stored_rows, state.row_bytes)
            self._write_table_to_devices(table_name, state)

    def _write_table_to_devices(self, table_name: str, state: _SMTable) -> None:
        extent = self.layout.extent(table_name)
        device = self.devices[extent.device_index]
        rows_per_block = extent.rows_per_block
        for block_offset in range(extent.num_blocks):
            buffer = bytearray(BLOCK_SIZE)
            first_row = block_offset * rows_per_block
            for slot in range(rows_per_block):
                row_index = first_row + slot
                if row_index >= state.stored_rows:
                    break
                row = self._row_source_bytes(table_name, state, row_index)
                start = slot * state.row_bytes
                buffer[start : start + len(row)] = row
            device.write_block(extent.first_lba + block_offset, bytes(buffer))

    # ------------------------------------------------------------ accounting
    def fm_footprint_bytes(self) -> int:
        """Fast memory consumed: direct tables, mapping tensors, caches."""
        specs = {t.spec.name: t.spec for t in self.model.tables.values()}
        direct = self.placement.fm_direct_bytes(specs)
        mappings = sum(state.mapping_fm_bytes for state in self._sm_tables.values())
        pooled = self.pooled_cache.capacity_bytes if self.pooled_cache else 0
        access_path_fm = self.access_path.fm_footprint_bytes()
        return direct + mappings + self.row_cache.capacity_bytes + pooled + access_path_fm

    def sm_footprint_bytes(self) -> int:
        """Slow memory consumed by the placed tables."""
        return self.layout.total_allocated_bytes()

    def device_stats(self) -> DeviceStats:
        merged = DeviceStats()
        for device in self.devices:
            merged.merge(device.stats)
        return merged

    @property
    def row_cache_hit_rate(self) -> float:
        return self.row_cache.stats.hit_rate

    @property
    def pooled_cache_hit_rate(self) -> float:
        if self.pooled_cache is None:
            return 0.0
        return self.pooled_cache.stats.hit_rate

    def reset_stats(self) -> None:
        self.stats = SDMStats()
        self.row_cache.reset_stats()
        if self.pooled_cache is not None:
            self.pooled_cache.reset_stats()
        self.io_engine.reset_stats()
        for device in self.devices:
            device.reset_stats()

    def clear_caches(self) -> None:
        """Drop cached rows and pooled vectors (cold start / full update)."""
        self.row_cache.clear()
        if self.pooled_cache is not None:
            self.pooled_cache.clear()

    # --------------------------------------------------------------- serving
    def pooled_embeddings(
        self,
        requests: Mapping[str, Sequence[int]],
        start_time: float,
    ) -> Tuple[Dict[str, np.ndarray], float]:
        results: Dict[str, np.ndarray] = {}
        completion_times: List[float] = []
        cursor = start_time
        for table_name, indices in requests.items():
            table_start = start_time if self.config.inter_op_parallelism else cursor
            vector, done = self._pooled_one_table(table_name, list(indices), table_start)
            results[table_name] = vector
            completion_times.append(done)
            cursor = done
        if not completion_times:
            return results, start_time
        completion = max(completion_times) if self.config.inter_op_parallelism else cursor
        self.stats.user_embedding_seconds += completion - start_time
        return results, completion

    def on_query_complete(self) -> None:
        self.stats.queries += 1

    # ------------------------------------------------------------- internals
    def _pooled_one_table(
        self, table_name: str, indices: List[int], start_time: float
    ) -> Tuple[np.ndarray, float]:
        if not indices:
            raise ValueError(f"table {table_name!r}: request has no indices")
        decision = self.placement.for_table(table_name)
        if decision.tier is Tier.FM_DIRECT:
            return self._serve_from_fm(table_name, indices, start_time)
        return self._serve_from_sm(table_name, indices, start_time)

    def _serve_from_fm(
        self, table_name: str, indices: List[int], start_time: float
    ) -> Tuple[np.ndarray, float]:
        table = self.model.table(table_name)
        vector = table.bag(indices)
        elapsed = self.compute.embedding_read_time(len(indices), table.spec.row_bytes)
        self.stats.fm_direct_lookups += len(indices)
        return vector, start_time + elapsed

    def _serve_from_sm(
        self, table_name: str, indices: List[int], start_time: float
    ) -> Tuple[np.ndarray, float]:
        state = self._sm_tables[table_name]
        self.stats.sm_table_requests += 1
        self.stats.sm_row_lookups += len(indices)
        cursor = start_time

        # Algorithm 1: try the pooled embedding cache first.
        if self.pooled_cache is not None and self.pooled_cache.eligible(indices):
            cursor += POOLED_PROBE_SECONDS
            self.stats.pooled_cache_lookups += 1
            cached = self.pooled_cache.get(table_name, indices)
            if cached is not None:
                self.stats.pooled_cache_hits += 1
                return cached, cursor

        # Resolve the stored index of each requested (unpruned-space) index.
        stored_indices: List[Optional[int]] = []
        if state.mapping is not None:
            cursor += len(indices) * MAPPING_LOOKUP_SECONDS
            for index in indices:
                mapped = int(state.mapping[index])
                if mapped == PRUNED:
                    stored_indices.append(None)
                    self.stats.pruned_rows_skipped += 1
                else:
                    stored_indices.append(mapped)
        else:
            stored_indices = [int(index) for index in indices]

        # Row cache probes.
        row_bytes_by_position: Dict[int, bytes] = {}
        missing_positions: List[int] = []
        for position, stored in enumerate(stored_indices):
            if stored is None:
                continue
            if state.cache_enabled:
                cursor += CACHE_PROBE_SECONDS
                cached_row = self.row_cache.get((table_name, stored), size_hint=state.row_bytes)
                if cached_row is not None:
                    row_bytes_by_position[position] = cached_row
                    continue
            missing_positions.append(position)

        # IO phase for the misses.
        if missing_positions:
            missing_stored = [stored_indices[p] for p in missing_positions]
            reads = self.access_path.read_rows(table_name, missing_stored, cursor)
            io_done = max(read.completion_time for read in reads)
            self.stats.sm_ios += len(reads)
            for position, read in zip(missing_positions, reads):
                row_bytes_by_position[position] = read.data
                if state.cache_enabled:
                    self.row_cache.put((table_name, stored_indices[position]), read.data)
            cursor = max(cursor, io_done)

        # Dequantise and pool in the original request order so results are
        # bit-identical to the in-memory reference path.
        rows = np.zeros((len(indices), state.spec.dim), dtype=np.float32)
        fetched_bytes = 0
        for position in range(len(indices)):
            raw = row_bytes_by_position.get(position)
            if raw is None:
                continue  # pruned row contributes zeros
            rows[position] = state.decode(raw)
            fetched_bytes += len(raw)
        pooled = rows.sum(axis=0)
        cursor += fetched_bytes / self.compute.dequant_bytes_per_second

        if self.pooled_cache is not None:
            self.pooled_cache.put(table_name, indices, pooled)
        return pooled, cursor
