"""The Software Defined Memory embedding backend.

:class:`SoftwareDefinedMemory` places the model's user embedding tables
across an ordered hierarchy of memory tiers (:mod:`repro.hierarchy`) and
serves row lookups through the tier chain: probe the row caches of faster
tiers, miss down to the row's home tier, promote on a configurable policy.
The classic configuration — one fast-memory tier with the unified row cache
in front of one SM device technology — is the two-tier special case and is
bit-identical to the original hard-coded FM-cache-then-SM path.  Requests
can optionally short-circuit through the pooled embedding cache
(Algorithm 1), and the fast-memory and CPU costs of every choice are
accounted.  It implements :class:`~repro.dlrm.inference.EmbeddingBackend`,
so an :class:`~repro.dlrm.inference.InferenceEngine` can serve queries
through it and the end-to-end latency reflects whether the slow-tier fetch
is hidden behind the item-side work (Equation 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache.unified import UnifiedCacheConfig, UnifiedRowCache
from repro.core.config import AccessPathKind, SDMConfig
from repro.core.depruning import deprune_table
from repro.core.dequantization import DequantizedTable, dequantize_table
from repro.core.placement import Placement, PlacementPolicy, compute_placement
from repro.core.pooled_cache import PooledEmbeddingCache
from repro.dlrm.embedding import EmbeddingTableSpec
from repro.dlrm.inference import ComputeSpec, EmbeddingBackend
from repro.dlrm.model import DLRMModel
from repro.dlrm.pruning import PRUNED, PrunedEmbeddingTable
from repro.dlrm.quantization import dequantize_rows
from repro.hierarchy.chain import TierChain
from repro.hierarchy.placement import (
    TieredPlacement,
    compute_tiered_placement,
    whole_table_segments,
)
from repro.hierarchy.tier import DeviceTier, MemoryTier, TierSpec, build_tiers
from repro.obs.metrics import (
    CACHE_COUNTER_FIELDS,
    IO_COUNTER_FIELDS,
    TIER_COUNTER_FIELDS,
    stats_counters,
)
from repro.obs.profile import wall_seconds
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.storage.device import DeviceStats, SimulatedDevice

#: Host CPU time per FM-resident mapping-tensor lookup (pruned tables).
MAPPING_LOOKUP_SECONDS = 3.0e-8
#: Host CPU time per row-cache probe added to the query's latency.
CACHE_PROBE_SECONDS = 2.0e-7
#: Host CPU time for a pooled-embedding-cache probe (hash + lookup).
POOLED_PROBE_SECONDS = 5.0e-7
#: Bytes per entry of the rank mapping tensor kept in FM for row-split tables.
RANK_INDEX_BYTES = 4


@dataclass
class _SMTable:
    """Serving state of one table with rows homed below tier 0."""

    spec: EmbeddingTableSpec
    stored_rows: int
    row_bytes: int
    decode: Callable[[bytes], np.ndarray]
    decode_batch: Callable[[np.ndarray], np.ndarray]
    cache_enabled: bool
    mapping: Optional[np.ndarray] = None
    mapping_fm_bytes: int = 0
    rank_order: Optional[np.ndarray] = None
    depruned: bool = False
    dequantized: bool = False


@dataclass
class SDMStats:
    """Cumulative serving statistics of one SDM instance."""

    queries: int = 0
    sm_table_requests: int = 0
    sm_row_lookups: int = 0
    sm_ios: int = 0
    fm_direct_lookups: int = 0
    pruned_rows_skipped: int = 0
    pooled_cache_hits: int = 0
    pooled_cache_lookups: int = 0
    user_embedding_seconds: float = 0.0

    @property
    def ios_per_query(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.sm_ios / self.queries

    @property
    def sm_lookups_per_query(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.sm_row_lookups / self.queries


class SoftwareDefinedMemory(EmbeddingBackend):
    """Tiered-memory embedding backend (the paper's SDM stack)."""

    def __init__(
        self,
        model: DLRMModel,
        config: SDMConfig,
        compute: Optional[ComputeSpec] = None,
        placement: Optional[Union[Placement, TieredPlacement]] = None,
        pruned_tables: Optional[Mapping[str, PrunedEmbeddingTable]] = None,
        devices: Optional[Sequence[SimulatedDevice]] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.compute = compute if compute is not None else ComputeSpec()
        self.pruned_tables = dict(pruned_tables) if pruned_tables else {}
        unknown_pruned = set(self.pruned_tables) - set(model.tables)
        if unknown_pruned:
            raise ValueError(
                f"pruned tables not present in the model: {sorted(unknown_pruned)}"
            )

        self.tier_specs: Tuple[TierSpec, ...] = config.resolved_tiers()
        if devices is not None and config.tiers is not None:
            raise ValueError(
                "prebuilt devices cannot be combined with an explicit tiers config"
            )
        self._init_placement(placement)
        self._build_tiers(devices)

        self.pooled_cache: Optional[PooledEmbeddingCache] = None
        if config.pooled_cache_enabled:
            self.pooled_cache = PooledEmbeddingCache(
                config.pooled_cache_capacity_bytes,
                len_threshold=config.pooled_len_threshold,
            )

        self.stats = SDMStats()
        self._sm_tables: Dict[str, _SMTable] = {}
        self._load_sm_tables()
        self._resolve_fast_segments()

        self.chain = TierChain(
            self.tiers,
            self.tiered_placement,
            promotion=config.promotion,
            cache_probe_seconds=CACHE_PROBE_SECONDS,
            fm_lookup_overhead=self.compute.per_lookup_overhead,
            fm_bandwidth=self.compute.memory_bandwidth,
        )
        # Observability: shared no-op unless a session attaches a live
        # recorder via set_trace_recorder().  Never consulted for timing.
        self.recorder: TraceRecorder = NULL_RECORDER

    # ------------------------------------------------------------------ setup
    def _init_placement(self, placement: Optional[Union[Placement, TieredPlacement]]) -> None:
        """Resolve the (possibly user-supplied) placement for this config.

        In legacy two-tier mode the original :func:`compute_placement`
        policies run unchanged and are lifted into the N-tier representation,
        so the decisions — and therefore the serving path — stay identical.
        """
        if isinstance(placement, TieredPlacement):
            if placement.num_tiers > len(self.tier_specs):
                raise ValueError(
                    f"placement references {placement.num_tiers} tiers but the "
                    f"config resolves to {len(self.tier_specs)}"
                )
            # Work on a copy: loading re-anchors whole-table segments on the
            # stored row count, which must not mutate the caller's object.
            self.tiered_placement = placement.copy()
            self.placement: Union[Placement, TieredPlacement] = self.tiered_placement
            return
        if placement is not None or self.config.tiers is None:
            legacy = (
                placement
                if placement is not None
                else compute_placement(
                    self.model.table_specs,
                    policy=self.config.placement_policy,
                    dram_budget_bytes=self.config.dram_budget_bytes,
                    pinned_fm_tables=self.config.pinned_fm_tables,
                    cache_disable_alpha_threshold=self.config.cache_disable_alpha_threshold,
                )
            )
            self.placement = legacy
            self.tiered_placement = TieredPlacement.from_legacy(
                legacy, num_tiers=len(self.tier_specs)
            )
            return
        threshold = (
            self.config.cache_disable_alpha_threshold
            if self.config.placement_policy is PlacementPolicy.PER_TABLE_CACHE
            else None
        )
        self.tiered_placement = compute_tiered_placement(
            self.model.table_specs,
            self.tier_specs,
            pinned_fast_tables=self.config.pinned_fm_tables,
            cache_disable_alpha_threshold=threshold,
            granularity="rows" if self.config.split_rows else "table",
        )
        self.placement = self.tiered_placement

    def _build_tiers(self, devices: Optional[Sequence[SimulatedDevice]]) -> None:
        config = self.config
        fast_spec = self.tier_specs[0]
        cache_bytes = (
            fast_spec.cache_bytes
            if fast_spec.cache_bytes is not None
            else config.row_cache_capacity_bytes
        )
        if cache_bytes <= 0:
            raise ValueError(
                "tier 0 needs a positive row-cache budget; omit 'cache' to use "
                "row_cache_capacity_bytes"
            )
        self.row_cache = UnifiedRowCache(self._cache_config(cache_bytes))
        self.tiers: List[MemoryTier] = build_tiers(
            self.tier_specs,
            io_config=config.io,
            fast_cache=self.row_cache,
            device_cache_config=lambda spec: (
                self._cache_config(spec.cache_bytes) if spec.cache_bytes else None
            ),
            use_mmap=config.access_path is AccessPathKind.MMAP,
            seed=config.seed,
            fast_row_source=self._fast_row_bytes,
            fast_matrix_row_source=self._fast_rows_matrix,
            first_device_tier_devices=devices,
        )

        device_tiers = self.device_tiers
        # Legacy aliases: the first device tier's machinery, plus the flat
        # device list across every tier.
        self.devices = [device for tier in device_tiers for device in tier.devices]
        self.layout = device_tiers[0].layout
        self.io_engine = device_tiers[0].io_engine
        self.access_path = device_tiers[0].access_path

    def _cache_config(self, capacity_bytes: int) -> UnifiedCacheConfig:
        return UnifiedCacheConfig(
            capacity_bytes=capacity_bytes,
            memory_optimized_fraction=self.config.memory_optimized_fraction,
            small_row_threshold_bytes=self.config.small_row_threshold_bytes,
            num_partitions=self.config.num_cache_partitions,
        )

    @property
    def device_tiers(self) -> List[DeviceTier]:
        return [tier for tier in self.tiers if isinstance(tier, DeviceTier)]

    def _sm_source_for(self, table_name: str) -> _SMTable:
        """Decide what bytes are stored below tier 0 for one table."""
        decision = self.tiered_placement.for_table(table_name)
        spec = self.model.table(table_name).spec

        if table_name in self.pruned_tables:
            pruned = self.pruned_tables[table_name]
            if self.config.deprune_at_load:
                result = deprune_table(pruned)
                table = result.table
                return _SMTable(
                    spec=table.spec,
                    stored_rows=table.spec.num_rows,
                    row_bytes=table.spec.row_bytes,
                    decode=self._make_quantized_decoder(table.spec),
                    decode_batch=self._make_quantized_batch_decoder(table.spec),
                    cache_enabled=decision.cache_enabled,
                    depruned=True,
                )
            return _SMTable(
                spec=pruned.original_spec,
                stored_rows=pruned.table.spec.num_rows,
                row_bytes=pruned.table.spec.row_bytes,
                decode=self._make_quantized_decoder(pruned.table.spec),
                decode_batch=self._make_quantized_batch_decoder(pruned.table.spec),
                cache_enabled=decision.cache_enabled,
                mapping=pruned.mapping,
                mapping_fm_bytes=pruned.mapping_tensor_bytes,
            )

        if self.config.dequantize_at_load:
            result = dequantize_table(self.model.table(table_name))
            dequantized = result.table
            return _SMTable(
                spec=spec,
                stored_rows=spec.num_rows,
                row_bytes=dequantized.row_bytes,
                decode=DequantizedTable.decode_row,
                decode_batch=self._decode_float_batch,
                cache_enabled=decision.cache_enabled,
                dequantized=True,
            )

        return _SMTable(
            spec=spec,
            stored_rows=spec.num_rows,
            row_bytes=spec.row_bytes,
            decode=self._make_quantized_decoder(spec),
            decode_batch=self._make_quantized_batch_decoder(spec),
            cache_enabled=decision.cache_enabled,
        )

    @staticmethod
    def _make_quantized_decoder(spec: EmbeddingTableSpec) -> Callable[[bytes], np.ndarray]:
        dim, bits = spec.dim, spec.quant_bits

        def decode(raw: bytes) -> np.ndarray:
            rows = np.frombuffer(raw, dtype=np.uint8)[None, :]
            return dequantize_rows(rows, dim, bits)[0]

        return decode

    @staticmethod
    def _make_quantized_batch_decoder(
        spec: EmbeddingTableSpec,
    ) -> Callable[[np.ndarray], np.ndarray]:
        dim, bits = spec.dim, spec.quant_bits

        def decode_batch(rows: np.ndarray) -> np.ndarray:
            return dequantize_rows(rows, dim, bits)

        return decode_batch

    @staticmethod
    def _decode_float_batch(rows: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(rows).view(np.float32)

    def _row_source_bytes(self, table_name: str, state: _SMTable, stored_index: int) -> bytes:
        """Serialized bytes of one stored row (used when loading to devices)."""
        if state.rank_order is not None:
            return self.model.table(table_name).row_bytes_at(
                int(state.rank_order[stored_index])
            )
        if state.dequantized:
            table = self.model.table(table_name)
            return table.lookup_dense([stored_index])[0].astype(np.float32).tobytes()
        if table_name in self.pruned_tables:
            pruned = self.pruned_tables[table_name]
            if state.depruned:
                if stored_index in self._depruned_cache[table_name]:
                    return self._depruned_cache[table_name][stored_index]
                return bytes(state.row_bytes)
            return pruned.table.row_bytes_at(stored_index)
        return self.model.table(table_name).row_bytes_at(stored_index)

    def _fast_row_bytes(self, table_name: str, stored_index: int) -> bytes:
        """Row source for stored rows homed on the fast tier (row splits)."""
        return self._row_source_bytes(table_name, self._sm_tables[table_name], stored_index)

    def _fast_rows_matrix(self, table_name: str, stored_indices: np.ndarray) -> np.ndarray:
        """Whole-batch row source for fast-tier-homed stored rows.

        Only row-split tables route stored rows to tier 0 (tables homed
        whole on the fast tier are served by :meth:`_serve_from_fm`), and
        row splits exclude pruned/dequantised tables, so the stored bytes
        are exactly the in-memory table rows — one matrix gather replaces
        the per-row ``bytes`` round-trip of :meth:`_fast_row_bytes`.
        """
        state = self._sm_tables[table_name]
        data = self.model.table(table_name).data
        if state.rank_order is not None:
            return data[state.rank_order[stored_indices]]
        return data[stored_indices]

    def _load_sm_tables(self) -> None:
        """Lay out and write every device-homed table segment onto its tier."""
        self._depruned_cache: Dict[str, Dict[int, bytes]] = {}
        for table_name in self.tiered_placement.storage_tables():
            if table_name not in self.model.tables:
                raise KeyError(
                    f"placement references table {table_name!r} that the model lacks"
                )
            decision = self.tiered_placement.for_table(table_name)
            state = self._sm_source_for(table_name)
            if decision.is_split or decision.rank_order is not None:
                if table_name in self.pruned_tables or state.dequantized:
                    raise ValueError(
                        f"table {table_name!r}: row-split placement cannot be "
                        f"combined with pruned or dequantize-at-load tables"
                    )
                if decision.rank_order is not None:
                    # Hotness-ranked split: rows are stored rank-ordered, so a
                    # mapping tensor (row id -> stored rank) lives in FM —
                    # exactly like the pruning mapping, and with the same
                    # per-lookup cost.
                    state.rank_order = decision.rank_order
                    mapping = np.empty(state.stored_rows, dtype=np.int64)
                    mapping[decision.rank_order] = np.arange(
                        state.stored_rows, dtype=np.int64
                    )
                    state.mapping = mapping
                    state.mapping_fm_bytes = state.stored_rows * RANK_INDEX_BYTES
            if state.depruned:
                pruned = self.pruned_tables[table_name]
                live = np.nonzero(pruned.mapping != PRUNED)[0]
                self._depruned_cache[table_name] = {
                    int(unpruned_index): pruned.table.row_bytes_at(
                        int(pruned.mapping[unpruned_index])
                    )
                    for unpruned_index in live
                }
            self._sm_tables[table_name] = state
            segments = whole_table_segments(decision, state.stored_rows)
            decision.segments = segments
            whole = len(segments) == 1
            for segment in segments:
                if segment.tier == 0:
                    continue
                tier = self.tiers[segment.tier]
                assert isinstance(tier, DeviceTier)
                tier.add_segment(
                    table_name,
                    segment.start,
                    segment.end,
                    state.row_bytes,
                    row_source=lambda stored, name=table_name, st=state: (
                        self._row_source_bytes(name, st, stored)
                    ),
                    whole_table=whole,
                )

    def _resolve_fast_segments(self) -> None:
        """Resolve whole-table sentinel segments of tables homed on tier 0."""
        for table_name, decision in self.tiered_placement.decisions.items():
            if table_name in self._sm_tables or table_name not in self.model.tables:
                continue
            stored_rows = self.model.table(table_name).spec.num_rows
            decision.segments = whole_table_segments(decision, stored_rows)

    # ------------------------------------------------------------ accounting
    def fm_footprint_bytes(self) -> int:
        """Fast memory consumed: tier-0 data, mapping tensors, caches."""
        specs = {t.spec.name: t.spec for t in self.model.tables.values()}
        direct = self.tiered_placement.tier_bytes(specs, 0)
        mappings = sum(state.mapping_fm_bytes for state in self._sm_tables.values())
        pooled = self.pooled_cache.capacity_bytes if self.pooled_cache else 0
        access_path_fm = sum(tier.fm_footprint_bytes() for tier in self.device_tiers)
        return direct + mappings + self.row_cache.capacity_bytes + pooled + access_path_fm

    def sm_footprint_bytes(self) -> int:
        """Bytes of table data stored on the device tiers."""
        return sum(tier.allocated_bytes() for tier in self.device_tiers)

    def device_stats(self) -> DeviceStats:
        merged = DeviceStats()
        for device in self.devices:
            merged.merge(device.stats)
        return merged

    @property
    def row_cache_hit_rate(self) -> float:
        return self.row_cache.stats.hit_rate

    @property
    def pooled_cache_hit_rate(self) -> float:
        if self.pooled_cache is None:
            return 0.0
        return self.pooled_cache.stats.hit_rate

    def tier_summaries(self) -> List[Dict[str, Any]]:
        """Per-tier serving summary: geometry, hit rates, rows/bytes served."""
        specs = {t.spec.name: t.spec for t in self.model.tables.values()}
        summaries: List[Dict[str, Any]] = []
        for index, tier in enumerate(self.tiers):
            data_bytes = (
                self.tiered_placement.tier_bytes(specs, 0)
                if index == 0
                else tier.allocated_bytes()
            )
            summaries.append(
                {
                    "tier": index,
                    "name": tier.spec.name,
                    "technology": tier.spec.technology.value,
                    "capacity_bytes": tier.spec.capacity_bytes,
                    "data_bytes": data_bytes,
                    "cache_capacity_bytes": (
                        tier.cache.capacity_bytes if tier.cache is not None else 0
                    ),
                    "cache_hit_rate": (
                        tier.cache.stats.hit_rate if tier.cache is not None else None
                    ),
                    "rows_served": tier.stats.rows_served,
                    "bytes_served": tier.stats.bytes_served,
                    "ios": tier.stats.ios,
                    "tables": len(self.tiered_placement.tables_on(index)),
                }
            )
        return summaries

    def set_trace_recorder(self, recorder: TraceRecorder) -> None:
        """Attach a span recorder to the backend and its tier chain."""
        self.recorder = recorder
        self.chain.recorder = recorder

    def telemetry_counters(self) -> Dict[str, float]:
        """Flat cumulative counters for interval sampling (repro.obs).

        Every value is monotone over a run, so per-window deltas telescope
        back to the aggregate statistics.
        """
        counters: Dict[str, float] = {
            "sdm.queries": self.stats.queries,
            "sdm.sm_ios": self.stats.sm_ios,
            "sdm.sm_row_lookups": self.stats.sm_row_lookups,
            "sdm.fm_direct_lookups": self.stats.fm_direct_lookups,
            "sdm.pooled_cache_hits": self.stats.pooled_cache_hits,
            "sdm.pooled_cache_lookups": self.stats.pooled_cache_lookups,
        }
        for index, tier in enumerate(self.tiers):
            prefix = f"tier{index}"
            for key, value in stats_counters(tier.stats, TIER_COUNTER_FIELDS).items():
                counters[f"{prefix}.{key}"] = value
            if tier.cache is not None:
                cache = stats_counters(tier.cache.stats, CACHE_COUNTER_FIELDS)
                for key, value in cache.items():
                    counters[f"{prefix}.cache.{key}"] = value
            if isinstance(tier, DeviceTier):
                io = stats_counters(tier.io_engine.stats, IO_COUNTER_FIELDS)
                for key, value in io.items():
                    counters[f"{prefix}.io.{key}"] = value
        return counters

    def reset_stats(self) -> None:
        """Zero every counter; queue state (outstanding IOs, busy channels)
        survives — use :meth:`reset_queues` to drop behavioural state."""
        self.stats = SDMStats()
        if self.pooled_cache is not None:
            self.pooled_cache.reset_stats()
        self.chain.reset_stats()

    def reset_queues(self) -> None:
        """Clear behavioural queue state on every tier; counters untouched."""
        self.chain.reset_queues()

    def clear_caches(self) -> None:
        """Drop cached rows and pooled vectors (cold start / full update)."""
        self.chain.clear_caches()
        if self.pooled_cache is not None:
            self.pooled_cache.clear()

    def restore_pristine(self) -> None:
        """Return the built backend to its exactly-as-constructed state.

        This is the worker-resident reuse contract (:mod:`repro.runtime.runtimes`):
        after ``restore_pristine()`` a run over the backend must be
        bit-identical to a run over a freshly built one.  Construction-time
        products (placement, tier chain, materialised device blocks,
        SM tables) are pure functions of the model and config and are kept;
        everything a run accumulates — cached rows and pages, counters,
        outstanding-IO queue state, advanced RNG streams, an attached trace
        recorder — is dropped or rewound.
        """
        self.clear_caches()
        self.reset_stats()
        self.reset_queues()
        self.chain.reset_rng()
        self.set_trace_recorder(NULL_RECORDER)

    # --------------------------------------------------------------- serving
    def pooled_embeddings(
        self,
        requests: Mapping[str, Sequence[int]],
        start_time: float,
    ) -> Tuple[Dict[str, np.ndarray], float]:
        results: Dict[str, np.ndarray] = {}
        completion_times: List[float] = []
        cursor = start_time
        for table_name, indices in requests.items():
            table_start = start_time if self.config.inter_op_parallelism else cursor
            vector, done = self._pooled_one_table(table_name, list(indices), table_start)
            results[table_name] = vector
            completion_times.append(done)
            cursor = done
        if not completion_times:
            return results, start_time
        completion = max(completion_times) if self.config.inter_op_parallelism else cursor
        self.stats.user_embedding_seconds += completion - start_time
        return results, completion

    def on_query_complete(self) -> None:
        self.stats.queries += 1

    # ------------------------------------------------------------- internals
    def _pooled_one_table(
        self, table_name: str, indices: List[int], start_time: float
    ) -> Tuple[np.ndarray, float]:
        if not indices:
            raise ValueError(f"table {table_name!r}: request has no indices")
        if table_name not in self._sm_tables:
            # Raises KeyError for tables the placement never decided — a
            # partial user-supplied placement must fail loudly, not silently
            # serve from fast memory.
            self.tiered_placement.for_table(table_name)
            return self._serve_from_fm(table_name, indices, start_time)
        return self._serve_from_sm(table_name, indices, start_time)

    def _serve_from_fm(
        self, table_name: str, indices: List[int], start_time: float
    ) -> Tuple[np.ndarray, float]:
        table = self.model.table(table_name)
        vector = table.bag(indices)
        elapsed = self.compute.embedding_read_time(len(indices), table.spec.row_bytes)
        self.stats.fm_direct_lookups += len(indices)
        fast = self.tiers[0]
        fast.stats.rows_served += len(indices)
        fast.stats.bytes_served += len(indices) * table.spec.row_bytes
        return vector, start_time + elapsed

    def _serve_from_sm(
        self, table_name: str, indices: List[int], start_time: float
    ) -> Tuple[np.ndarray, float]:
        if not self.recorder.wall_profiling:
            return self._sm_lookup(table_name, indices, start_time)
        # Wall-clock profiling of the serve core: measures host time only,
        # never feeds back into simulated time or results (see repro.obs).
        started = wall_seconds()
        result = self._sm_lookup(table_name, indices, start_time)
        self.recorder.wall_span(
            f"sm:{table_name}",
            started,
            wall_seconds() - started,
            args={"rows": len(indices)},
        )
        return result

    def _sm_lookup(
        self, table_name: str, indices: List[int], start_time: float
    ) -> Tuple[np.ndarray, float]:
        state = self._sm_tables[table_name]
        self.stats.sm_table_requests += 1
        self.stats.sm_row_lookups += len(indices)
        cursor = start_time
        recorder = self.recorder
        index_array = np.asarray(indices, dtype=np.int64)

        # Algorithm 1: try the pooled embedding cache first.  The batched
        # serve mode hashes the key with the vectorised splitmix64; key,
        # stats and LRU effects are bit-identical to the scalar probe.
        if self.pooled_cache is not None and self.pooled_cache.eligible(indices):
            cursor += POOLED_PROBE_SECONDS
            self.stats.pooled_cache_lookups += 1
            if self.config.serve_mode == "batched":
                cached = self.pooled_cache.probe_batch(table_name, index_array)
            else:
                cached = self.pooled_cache.get(table_name, indices)
            if cached is not None:
                self.stats.pooled_cache_hits += 1
            if recorder.enabled:
                recorder.span(
                    "pooled_probe",
                    "sdm",
                    cursor - POOLED_PROBE_SECONDS,
                    POOLED_PROBE_SECONDS,
                    args={"table": table_name, "hit": cached is not None},
                )
            if cached is not None:
                return cached, cursor

        # Resolve the stored index of each requested (unpruned-space) index
        # with one batched mapping-tensor gather.
        if state.mapping is not None:
            lookup_seconds = index_array.size * MAPPING_LOOKUP_SECONDS
            if recorder.enabled:
                recorder.span(
                    "mapping_lookup",
                    "sdm",
                    cursor,
                    lookup_seconds,
                    args={"table": table_name, "rows": int(index_array.size)},
                )
            cursor += lookup_seconds
            stored = state.mapping[index_array]
            self.stats.pruned_rows_skipped += int(np.count_nonzero(stored == PRUNED))
        else:
            stored = index_array

        if self.config.serve_mode == "batched":
            served = self._serve_batched(
                table_name, state, indices, index_array, stored, cursor
            )
            if served is not None:
                return served
        return self._serve_scalar(table_name, state, indices, stored, cursor)

    def _serve_batched(
        self,
        table_name: str,
        state: _SMTable,
        indices: List[int],
        index_array: np.ndarray,
        stored: np.ndarray,
        cursor: float,
    ) -> Optional[Tuple[np.ndarray, float]]:
        """Array-native serve: one whole-batch tier-chain gather.

        Returns ``None`` when the chain cannot replay the scalar walk with
        bit-identical side effects (a mid-batch promotion hazard); the
        caller then falls back to :meth:`_serve_scalar` with no tier, cache
        or timing state perturbed.
        """
        valid = stored != PRUNED
        positions = np.nonzero(valid)[0].astype(np.int64)
        outcome = self.chain.fetch_batch(
            table_name,
            positions,
            stored[valid],
            cursor,
            cache_enabled=state.cache_enabled,
            size_hint=state.row_bytes,
        )
        if outcome is None:
            return None
        self.stats.sm_ios += outcome.device_reads
        if self.recorder.enabled:
            self.recorder.span(
                f"fetch:{table_name}",
                "sdm",
                cursor,
                outcome.completion_time - cursor,
                args={
                    "rows": int(positions.size),
                    "device_reads": outcome.device_reads,
                },
            )
        cursor = outcome.completion_time

        # Dequantise the whole fetched matrix in one batched call and pool in
        # the original request order — bit-identical to the scalar decode.
        rows = np.zeros((len(indices), state.spec.dim), dtype=np.float32)
        fetched_bytes = outcome.rows.shape[0] * state.row_bytes
        if outcome.rows.shape[0]:
            rows[outcome.served_positions] = state.decode_batch(outcome.rows)
        pooled = rows.sum(axis=0)
        dequant_seconds = fetched_bytes / self.compute.dequant_bytes_per_second
        if self.recorder.enabled and fetched_bytes:
            self.recorder.span(
                "dequantise", "sdm", cursor, dequant_seconds,
                args={"table": table_name, "bytes": fetched_bytes},
            )
        cursor += dequant_seconds

        if self.pooled_cache is not None:
            self.pooled_cache.put_batch(table_name, index_array, pooled)
        return pooled, cursor

    def _serve_scalar(
        self,
        table_name: str,
        state: _SMTable,
        indices: List[int],
        stored: np.ndarray,
        cursor: float,
    ) -> Tuple[np.ndarray, float]:
        """Per-row reference walk (the parity oracle for the batched path)."""
        stored_by_position = [
            (position, stored_index)
            for position, stored_index in enumerate(stored.tolist())
            if stored_index != PRUNED
        ]

        # Serve through the tier chain: probe upper caches, read misses from
        # each row's home tier, promote per policy.
        outcome = self.chain.fetch_rows(
            table_name,
            stored_by_position,
            cursor,
            cache_enabled=state.cache_enabled,
            size_hint=state.row_bytes,
        )
        self.stats.sm_ios += outcome.device_reads
        if self.recorder.enabled:
            self.recorder.span(
                f"fetch:{table_name}",
                "sdm",
                cursor,
                outcome.completion_time - cursor,
                args={
                    "rows": len(stored_by_position),
                    "device_reads": outcome.device_reads,
                },
            )
        cursor = outcome.completion_time

        # Dequantise and pool in the original request order so results are
        # bit-identical to the in-memory reference path.  All fetched rows of
        # one table share a byte length, so decoding is one batched call.
        rows = np.zeros((len(indices), state.spec.dim), dtype=np.float32)
        served_positions = sorted(outcome.rows_by_position)
        raws = [outcome.rows_by_position[position] for position in served_positions]
        fetched_bytes = 0
        if raws:
            fetched_bytes = sum(len(raw) for raw in raws)
            lengths = {len(raw) for raw in raws}
            if len(lengths) == 1:
                matrix = np.frombuffer(b"".join(raws), dtype=np.uint8).reshape(
                    len(raws), lengths.pop()
                )
                rows[served_positions] = state.decode_batch(matrix)
            else:  # pragma: no cover - defensive; row lengths are uniform
                for position, raw in zip(served_positions, raws):
                    rows[position] = state.decode(raw)
        pooled = rows.sum(axis=0)
        dequant_seconds = fetched_bytes / self.compute.dequant_bytes_per_second
        if self.recorder.enabled and fetched_bytes:
            self.recorder.span(
                "dequantise", "sdm", cursor, dequant_seconds,
                args={"table": table_name, "bytes": fetched_bytes},
            )
        cursor += dequant_seconds

        if self.pooled_cache is not None:
            self.pooled_cache.put(table_name, indices, pooled)
        return pooled, cursor
