"""Pooled embedding cache (section 4.4, Algorithm 1) and its profiling.

For every embedding operator, ``p_i`` rows are read, dequantised and pooled.
If the *pooled result* for the exact index sequence is already cached, all of
that work is skipped.  The paper profiles subsequence-caching schemes
(Table 3) and concludes only the full-sequence case (``c = P``) has low
enough overhead to be practical, observing ~5% hit rate; Table 4 sweeps the
``LenThreshold`` knob.

Keys are an order-invariant hash of the index multiset, so ``[3, 1, 2]`` and
``[2, 3, 1]`` hit the same entry (pooling is a sum and therefore order
invariant).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from math import comb
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.lru import LRUCache

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """A small, stable 64-bit mixer (used per index before combining)."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def order_invariant_hash(indices: Sequence[int]) -> int:
    """Hash of an index sequence that is invariant to ordering.

    Each index is mixed through splitmix64 and the results are summed modulo
    2^64; summation is commutative, hence order invariance, while the mixing
    keeps distinct multisets from colliding the way a plain sum would.
    """
    if len(indices) == 0:
        raise ValueError("cannot hash an empty index sequence")
    total = 0
    for index in indices:
        if index < 0:
            raise ValueError(f"indices must be non-negative: {index}")
        total = (total + _splitmix64(int(index))) & _MASK64
    # Fold in the multiset size so {1} and {1, 1} differ even under collisions.
    return (total ^ _splitmix64(len(indices))) & _MASK64


_SPLITMIX_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_MUL2 = np.uint64(0x94D049BB133111EB)


def order_invariant_hash_batch(indices: np.ndarray) -> int:
    """Vectorised :func:`order_invariant_hash`; produces the identical value.

    splitmix64 on a uint64 ndarray: numpy's unsigned arithmetic wraps modulo
    2^64 exactly like the masked scalar chain, and the commutative sum means
    one ``sum(dtype=uint64)`` matches the scalar left-to-right accumulation.
    Keys computed here interoperate with scalar-hashed entries in the same
    cache.
    """
    array = np.asarray(indices, dtype=np.int64)
    if array.size == 0:
        raise ValueError("cannot hash an empty index sequence")
    negative = array < 0
    if bool(negative.any()):
        raise ValueError(f"indices must be non-negative: {int(array[negative][0])}")
    with np.errstate(over="ignore"):
        mixed = array.astype(np.uint64) + _SPLITMIX_GOLDEN
        mixed = (mixed ^ (mixed >> np.uint64(30))) * _SPLITMIX_MUL1
        mixed = (mixed ^ (mixed >> np.uint64(27))) * _SPLITMIX_MUL2
        mixed ^= mixed >> np.uint64(31)
        total = int(mixed.sum(dtype=np.uint64))
    return (total ^ _splitmix64(int(array.size))) & _MASK64


@dataclass
class PooledCacheStats:
    """Hit/miss counters plus the average hit sequence length (Table 4)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    inserts: int = 0
    skipped_short: int = 0
    hit_index_count: int = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def average_hit_length(self) -> float:
        if self.hits == 0:
            return 0.0
        return self.hit_index_count / self.hits


class PooledEmbeddingCache:
    """Caches pooled (already dequantised and summed) embedding vectors."""

    def __init__(self, capacity_bytes: int, len_threshold: int = 1) -> None:
        if len_threshold < 0:
            raise ValueError(f"len_threshold must be non-negative: {len_threshold}")
        self.len_threshold = len_threshold
        # Pooled vectors are float32; per-item overhead mirrors the
        # CPU-optimised cache since values are comparatively large.
        self._cache = LRUCache(capacity_bytes, per_item_overhead_bytes=56)
        self.stats = PooledCacheStats()

    @property
    def capacity_bytes(self) -> int:
        return self._cache.capacity_bytes

    @property
    def used_bytes(self) -> int:
        return self._cache.used_bytes

    @property
    def item_count(self) -> int:
        return self._cache.item_count

    def eligible(self, indices: Sequence[int]) -> bool:
        """Algorithm 1's ``doPooledEmbCache`` predicate."""
        return len(indices) > self.len_threshold

    def _key(self, table_name: str, indices: Sequence[int]) -> Tuple[str, int]:
        return (table_name, order_invariant_hash(indices))

    def get(self, table_name: str, indices: Sequence[int]) -> Optional[np.ndarray]:
        """Return the cached pooled vector for this exact index multiset."""
        if not self.eligible(indices):
            self.stats.skipped_short += 1
            return None
        self.stats.lookups += 1
        raw = self._cache.get(self._key(table_name, indices))
        if raw is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.hit_index_count += len(indices)
        return np.frombuffer(raw, dtype=np.float32).copy()

    def put(self, table_name: str, indices: Sequence[int], pooled: np.ndarray) -> bool:
        """Insert the pooled vector computed for this index multiset."""
        if not self.eligible(indices):
            return False
        vector = np.asarray(pooled, dtype=np.float32)
        inserted = self._cache.put(self._key(table_name, indices), vector.tobytes())
        if inserted:
            self.stats.inserts += 1
        return inserted

    def probe_batch(self, table_name: str, indices: np.ndarray) -> Optional[np.ndarray]:
        """:meth:`get` with the key hash vectorised.

        Stats, LRU effects and the cache key are bit-identical to the scalar
        probe, so batched and scalar serve modes interoperate on one cache.
        """
        array = np.asarray(indices, dtype=np.int64)
        if not int(array.size) > self.len_threshold:
            self.stats.skipped_short += 1
            return None
        self.stats.lookups += 1
        raw = self._cache.get((table_name, order_invariant_hash_batch(array)))
        if raw is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.hit_index_count += int(array.size)
        return np.frombuffer(raw, dtype=np.float32).copy()

    def put_batch(self, table_name: str, indices: np.ndarray, pooled: np.ndarray) -> bool:
        """:meth:`put` with the key hash vectorised; effects identical."""
        array = np.asarray(indices, dtype=np.int64)
        if not int(array.size) > self.len_threshold:
            return False
        vector = np.asarray(pooled, dtype=np.float32)
        inserted = self._cache.put(
            (table_name, order_invariant_hash_batch(array)), vector.tobytes()
        )
        if inserted:
            self.stats.inserts += 1
        return inserted

    def clear(self) -> None:
        self._cache.clear()

    def reset_stats(self) -> None:
        self.stats = PooledCacheStats()


# ---------------------------------------------------------------------------
# Profiling of subsequence caching schemes (Table 3).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SubsequenceProfile:
    """One row of Table 3."""

    scheme: str
    hit_rate: float
    generated_sequences_per_query: float


def _full_sequence_hits(sequences: Sequence[Sequence[int]]) -> int:
    seen: set = set()
    hits = 0
    for sequence in sequences:
        key = order_invariant_hash(sequence)
        if key in seen:
            hits += 1
        else:
            seen.add(key)
    return hits


def _shared_subset_hits(
    sequences: Sequence[Sequence[int]],
    subset_size: int,
    restrict_to_top: Optional[int] = None,
) -> int:
    """Queries sharing at least ``subset_size`` indices with an earlier query.

    Sharing ``c`` indices with an earlier request means some subsequence of
    length ``c`` repeats, which is what the ``c = 10`` schemes in Table 3
    count.  ``restrict_to_top`` limits matching to the N most frequent
    indices (the paper's "top indices" variant).
    """
    top_only: Optional[set] = None
    if restrict_to_top is not None:
        counts: Dict[int, int] = defaultdict(int)
        for sequence in sequences:
            for index in sequence:
                counts[index] += 1
        ranked = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)
        top_only = {index for index, _ in ranked[:restrict_to_top]}

    postings: Dict[int, List[int]] = defaultdict(list)
    hits = 0
    for query_id, sequence in enumerate(sequences):
        candidates = set(sequence)
        if top_only is not None:
            candidates &= top_only
        overlap_counts: Dict[int, int] = defaultdict(int)
        is_hit = False
        for index in candidates:
            for earlier in postings[index]:
                overlap_counts[earlier] += 1
                if overlap_counts[earlier] >= subset_size:
                    is_hit = True
                    break
            if is_hit:
                break
        if is_hit:
            hits += 1
        for index in candidates:
            postings[index].append(query_id)
    return hits


def profile_subsequence_schemes(
    sequences: Sequence[Sequence[int]],
    subsequence_length: int = 10,
    top_indices: int = 100,
) -> List[SubsequenceProfile]:
    """Reproduce Table 3's comparison of subsequence caching schemes.

    ``sequences`` is the per-query index sequence for one table.  Returns a
    profile per scheme: ``c = 10`` (any repeated 10-index subset),
    ``c = 10 top-indices`` (only the globally hottest indices considered) and
    ``c = P`` (the full sequence must repeat -- the practical scheme).
    """
    if not sequences:
        raise ValueError("profile needs at least one query sequence")
    if subsequence_length <= 0:
        raise ValueError(f"subsequence_length must be positive: {subsequence_length}")
    total = len(sequences)
    avg_pooling = sum(len(sequence) for sequence in sequences) / total

    eligible = [s for s in sequences if len(s) >= subsequence_length]
    general_hits = _shared_subset_hits(eligible, subsequence_length) if eligible else 0
    top_hits = (
        _shared_subset_hits(eligible, subsequence_length, restrict_to_top=top_indices)
        if eligible
        else 0
    )
    full_hits = _full_sequence_hits(sequences)

    generated_general = float(comb(int(round(avg_pooling)), subsequence_length)) if avg_pooling >= subsequence_length else 0.0
    return [
        SubsequenceProfile(
            scheme=f"c={subsequence_length}",
            hit_rate=general_hits / total,
            generated_sequences_per_query=generated_general,
        ),
        SubsequenceProfile(
            scheme=f"c={subsequence_length}, top indices",
            hit_rate=top_hits / total,
            generated_sequences_per_query=float(top_indices),
        ),
        SubsequenceProfile(
            scheme="c=P",
            hit_rate=full_hits / total,
            generated_sequences_per_query=1.0,
        ),
    ]
