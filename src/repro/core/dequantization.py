"""De-quantisation at load time (appendix A.5).

With cheap SM capacity, embedding tables can be expanded to float32 when
loaded onto SM, saving the dequantisation work at serving time.  The cost is
a larger SM footprint and -- more importantly -- a less efficient FM cache,
because each cached row is now ``4 * dim`` bytes instead of ``dim + 8``.  The
paper finds this only helps in very CPU-bound cases; the pooled embedding
cache is the more targeted alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dlrm.embedding import EmbeddingTable, EmbeddingTableSpec


@dataclass
class DequantizedTable:
    """A table expanded to float32 rows for SM storage."""

    spec: EmbeddingTableSpec
    data: np.ndarray  # (num_rows, dim) float32

    def __post_init__(self) -> None:
        expected = (self.spec.num_rows, self.spec.dim)
        if self.data.shape != expected:
            raise ValueError(
                f"dequantised table {self.spec.name!r} expected shape {expected}, "
                f"got {self.data.shape}"
            )

    @property
    def row_bytes(self) -> int:
        """Serialized bytes per row on SM (float32 elements, no quant params)."""
        return self.spec.dim * 4

    @property
    def size_bytes(self) -> int:
        return self.spec.num_rows * self.row_bytes

    def row_bytes_at(self, index: int) -> bytes:
        if not 0 <= index < self.spec.num_rows:
            raise IndexError(
                f"row {index} out of range for table {self.spec.name!r} "
                f"with {self.spec.num_rows} rows"
            )
        return self.data[index].astype(np.float32).tobytes()

    @staticmethod
    def decode_row(raw: bytes) -> np.ndarray:
        """Decode a serialized float32 row back to a vector."""
        return np.frombuffer(raw, dtype=np.float32).copy()


@dataclass(frozen=True)
class DequantizeResult:
    """Outcome of de-quantising one table for SM placement."""

    table: DequantizedTable
    sm_bytes_before: int
    sm_bytes_after: int
    cache_rows_per_mib_before: float
    cache_rows_per_mib_after: float

    @property
    def sm_growth_factor(self) -> float:
        return self.sm_bytes_after / self.sm_bytes_before

    @property
    def cache_efficiency_loss(self) -> float:
        """Fractional reduction in rows cacheable per MiB of FM."""
        return 1.0 - self.cache_rows_per_mib_after / self.cache_rows_per_mib_before


def dequantize_table(table: EmbeddingTable) -> DequantizeResult:
    """Expand a quantised table to float32 rows at load time."""
    dense = table.lookup_dense(range(table.spec.num_rows)).astype(np.float32)
    dequantized = DequantizedTable(spec=table.spec, data=dense)
    mib = 1024.0 * 1024.0
    return DequantizeResult(
        table=dequantized,
        sm_bytes_before=table.size_bytes,
        sm_bytes_after=dequantized.size_bytes,
        cache_rows_per_mib_before=mib / table.spec.row_bytes,
        cache_rows_per_mib_after=mib / dequantized.row_bytes,
    )
