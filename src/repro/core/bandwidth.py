"""Bandwidth, IOPS and capacity requirement analysis (Equations 1-4 and 8).

These are the planning formulas the paper uses to decide which tables can
live on slow memory, how many SSDs a host needs, and whether SM latency is
hidden behind the item-side work:

* Eq. 1/2 -- memory bandwidth demand ``BW = QPS * sum(B * p_i * d_i)`` with
  separate user and item batch sizes.
* Eq. 3/4 -- the SM time budget: user-embedding fetch time must not exceed
  item-embedding fetch time.
* Eq. 8 -- IOPS demand of the SM tier ``IOPS ∝ QPS * sum(p_i)`` over the
  tables placed on SM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dlrm.model_config import TableProfile


@dataclass(frozen=True)
class BandwidthRequirement:
    """Aggregate bandwidth/IOPS demand of a model at a given QPS."""

    qps: float
    user_bytes_per_query: float
    item_bytes_per_query: float
    user_lookups_per_query: float
    item_lookups_per_query: float

    @property
    def bytes_per_query(self) -> float:
        return self.user_bytes_per_query + self.item_bytes_per_query

    @property
    def total_bandwidth(self) -> float:
        """Bytes/second demanded by embedding reads (Eq. 2)."""
        return self.qps * self.bytes_per_query

    @property
    def user_bandwidth(self) -> float:
        return self.qps * self.user_bytes_per_query

    @property
    def item_bandwidth(self) -> float:
        return self.qps * self.item_bytes_per_query

    @property
    def user_iops(self) -> float:
        """Row lookups per second against user tables (Eq. 8 numerator)."""
        return self.qps * self.user_lookups_per_query

    @property
    def item_iops(self) -> float:
        return self.qps * self.item_lookups_per_query


def bytes_per_query(profiles: Sequence[TableProfile]) -> float:
    """Total embedding bytes read per query (Eq. 2 without the QPS factor)."""
    return sum(profile.bytes_per_query for profile in profiles)


def bandwidth_requirement(profiles: Sequence[TableProfile], qps: float) -> BandwidthRequirement:
    """Aggregate the per-table profiles into a :class:`BandwidthRequirement`."""
    if qps <= 0:
        raise ValueError(f"qps must be positive: {qps}")
    user = [p for p in profiles if p.spec.is_user]
    item = [p for p in profiles if not p.spec.is_user]
    return BandwidthRequirement(
        qps=qps,
        user_bytes_per_query=sum(p.bytes_per_query for p in user),
        item_bytes_per_query=sum(p.bytes_per_query for p in item),
        user_lookups_per_query=sum(p.lookups_per_query for p in user),
        item_lookups_per_query=sum(p.lookups_per_query for p in item),
    )


def iops_requirement(
    profiles: Sequence[TableProfile],
    qps: float,
    cache_hit_rate: float = 0.0,
    sm_table_names: Optional[Iterable[str]] = None,
) -> float:
    """IOPS the SM tier must sustain (Eq. 8), after FM-cache filtering.

    ``sm_table_names`` restricts the sum to the tables actually placed on SM;
    by default all user tables are counted (the paper's placement).
    """
    if qps <= 0:
        raise ValueError(f"qps must be positive: {qps}")
    if not 0.0 <= cache_hit_rate <= 1.0:
        raise ValueError(f"cache_hit_rate must be in [0, 1]: {cache_hit_rate}")
    if sm_table_names is None:
        selected = [p for p in profiles if p.spec.is_user]
    else:
        names = set(sm_table_names)
        selected = [p for p in profiles if p.spec.name in names]
    lookups_per_query = sum(p.lookups_per_query for p in selected)
    return qps * lookups_per_query * (1.0 - cache_hit_rate)


def sm_time_budget(
    profiles: Sequence[TableProfile],
    fast_memory_bandwidth: float,
) -> float:
    """Time budget for the user-embedding fetch (Eq. 3/4).

    The user-side fetch from SM stays off the critical path as long as it
    finishes within the time the item-side fetch takes from fast memory.
    """
    if fast_memory_bandwidth <= 0:
        raise ValueError(f"fast_memory_bandwidth must be positive: {fast_memory_bandwidth}")
    item = [p for p in profiles if not p.spec.is_user]
    item_bytes = sum(p.bytes_per_query for p in item)
    return item_bytes / fast_memory_bandwidth


def required_sm_bandwidth(
    profiles: Sequence[TableProfile],
    fast_memory_bandwidth: float,
) -> float:
    """Minimum SM bandwidth that keeps user fetches within the Eq. 4 budget."""
    budget = sm_time_budget(profiles, fast_memory_bandwidth)
    if budget <= 0:
        raise ValueError("item-side bytes per query is zero; no budget to fit within")
    user_bytes = sum(p.bytes_per_query for p in profiles if p.spec.is_user)
    return user_bytes / budget


def table_bandwidth_summary(
    profiles: Sequence[TableProfile],
) -> List[Tuple[str, bool, int, float]]:
    """Per-table (name, is_user, size_bytes, bytes_per_query) rows (Figure 1)."""
    return [
        (p.spec.name, p.spec.is_user, p.size_bytes, p.bytes_per_query)
        for p in profiles
    ]


def capacity_split(profiles: Sequence[TableProfile]) -> Dict[str, float]:
    """Capacity contributed by user vs item tables (paper: user > 2/3)."""
    user_bytes = float(sum(p.size_bytes for p in profiles if p.spec.is_user))
    item_bytes = float(sum(p.size_bytes for p in profiles if not p.spec.is_user))
    total = user_bytes + item_bytes
    if total == 0:
        raise ValueError("profiles describe no capacity")
    return {
        "user_bytes": user_bytes,
        "item_bytes": item_bytes,
        "user_fraction": user_bytes / total,
        "item_fraction": item_bytes / total,
    }
