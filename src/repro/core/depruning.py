"""De-pruning at model load time (section 4.5, Algorithm 2).

A pruned table served from SM needs its mapping tensor resident in fast
memory; as models grow, those tensors eat into the FM space available to the
row cache.  De-pruning expands the table back to the unpruned index space at
load time (pruned rows become zero rows), trading cheap SM capacity for FM
cache space.  The paper reports ~2.5% extra SM requests (the zero rows do get
accessed and cached) in exchange for up to 2x the effective cache size and up
to 48% better performance when SM-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dlrm.embedding import EmbeddingTable, EmbeddingTableSpec
from repro.dlrm.pruning import PRUNED, PrunedEmbeddingTable


@dataclass(frozen=True)
class DepruneResult:
    """Outcome of de-pruning one table."""

    table: EmbeddingTable
    extra_sm_bytes: int
    freed_fm_bytes: int
    num_zero_rows: int

    @property
    def sm_growth_factor(self) -> float:
        original = self.table.size_bytes - self.extra_sm_bytes
        if original <= 0:
            return float("inf")
        return self.table.size_bytes / original


def deprune_table(pruned: PrunedEmbeddingTable) -> DepruneResult:
    """Expand a pruned table back to the unpruned index space (Algorithm 2).

    The resulting table is addressed directly with unpruned indices; pruned
    rows are all-zero quantised rows (scale 0, bias 0), which dequantise to
    zero vectors and therefore leave pooled outputs unchanged.
    """
    original_spec = pruned.original_spec
    row_bytes = pruned.table.spec.row_bytes
    data = np.zeros((original_spec.num_rows, row_bytes), dtype=np.uint8)
    kept_mask = pruned.mapping != PRUNED
    kept_unpruned_indices = np.nonzero(kept_mask)[0]
    kept_pruned_indices = pruned.mapping[kept_mask]
    data[kept_unpruned_indices] = pruned.table.data[kept_pruned_indices]

    depruned_spec = EmbeddingTableSpec(
        name=original_spec.name,
        num_rows=original_spec.num_rows,
        dim=original_spec.dim,
        quant_bits=original_spec.quant_bits,
        is_user=original_spec.is_user,
        avg_pooling_factor=original_spec.avg_pooling_factor,
        zipf_alpha=original_spec.zipf_alpha,
        pruned_fraction=0.0,
    )
    table = EmbeddingTable(depruned_spec, data)
    num_zero_rows = int(original_spec.num_rows - kept_unpruned_indices.size)
    return DepruneResult(
        table=table,
        extra_sm_bytes=num_zero_rows * row_bytes,
        freed_fm_bytes=pruned.mapping_tensor_bytes,
        num_zero_rows=num_zero_rows,
    )
