"""Configuration (Tuning API) of the Software Defined Memory stack.

Every knob the paper exposes as a "Tuning API" is a field here: cache sizes
and partition counts (section 4.3), the pooled-embedding-cache length
threshold (4.4), outstanding-IO limits (4.1), placement policy and DRAM
budget (4.6), de-pruning / de-quantisation at load time (4.5, A.5), the
access path (DIRECT-IO vs mmap) and inter-op parallelism (A.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.placement import PlacementPolicy
from repro.sim.units import MIB
from repro.storage.io_engine import IOEngineConfig
from repro.storage.spec import Technology


class AccessPathKind(str, enum.Enum):
    """How the application reads SM data (section 4.1)."""

    DIRECT_IO = "direct_io"
    MMAP = "mmap"


@dataclass(frozen=True)
class SDMConfig:
    """Tuning parameters of one SDM deployment on one host.

    Attributes
    ----------
    device_technology / num_devices / device_capacity_bytes:
        The SM devices attached to the host (e.g. 2x 2 TB Nand Flash on
        HW-SS, 2x 400 GB Optane on HW-AO).
    row_cache_capacity_bytes:
        FM byte budget of the unified row cache.
    memory_optimized_fraction / small_row_threshold_bytes / num_cache_partitions:
        Unified-cache organisation knobs (section 4.3).
    pooled_cache_enabled / pooled_cache_capacity_bytes / pooled_len_threshold:
        Pooled embedding cache (section 4.4, Algorithm 1).  ``pooled_len_threshold``
        is the paper's ``LenThreshold``: only requests with more indices are
        considered for pooled caching.
    placement_policy / dram_budget_bytes / pinned_fm_tables:
        Placement strategy (section 4.6, Table 5).  ``pinned_fm_tables`` is the
        "list of tables which should not be placed in SM" Tuning API.
    cache_disable_alpha_threshold:
        For the PER_TABLE_CACHE policy: tables whose access-skew alpha is
        below this get the row cache disabled (low temporal locality).
    io:
        io_uring engine configuration (section 4.1).
    access_path:
        DIRECT-IO with an application cache (the paper's choice) or mmap.
    inter_op_parallelism:
        Overlap the IO of different embedding operators (appendix A.2).
    deprune_at_load / dequantize_at_load:
        SM-vs-FM capacity trade-offs (section 4.5 and appendix A.5).
    """

    device_technology: Technology = Technology.NAND_FLASH
    num_devices: int = 2
    device_capacity_bytes: Optional[int] = None

    row_cache_capacity_bytes: int = 8 * MIB
    memory_optimized_fraction: float = 0.8
    small_row_threshold_bytes: int = 255
    num_cache_partitions: int = 1

    pooled_cache_enabled: bool = True
    pooled_cache_capacity_bytes: int = 4 * MIB
    pooled_len_threshold: int = 1

    placement_policy: PlacementPolicy = PlacementPolicy.SM_ONLY_WITH_CACHE
    dram_budget_bytes: int = 0
    pinned_fm_tables: Tuple[str, ...] = ()
    cache_disable_alpha_threshold: float = 0.6

    io: IOEngineConfig = field(default_factory=IOEngineConfig)
    access_path: AccessPathKind = AccessPathKind.DIRECT_IO
    inter_op_parallelism: bool = True

    deprune_at_load: bool = False
    dequantize_at_load: bool = False

    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise ValueError(f"num_devices must be positive: {self.num_devices}")
        if self.device_capacity_bytes is not None and self.device_capacity_bytes <= 0:
            raise ValueError(
                f"device_capacity_bytes must be positive: {self.device_capacity_bytes}"
            )
        if self.row_cache_capacity_bytes <= 0:
            raise ValueError(
                f"row_cache_capacity_bytes must be positive: {self.row_cache_capacity_bytes}"
            )
        if not 0.0 < self.memory_optimized_fraction < 1.0:
            raise ValueError(
                f"memory_optimized_fraction must be in (0, 1): {self.memory_optimized_fraction}"
            )
        if self.pooled_cache_capacity_bytes <= 0:
            raise ValueError(
                f"pooled_cache_capacity_bytes must be positive: {self.pooled_cache_capacity_bytes}"
            )
        if self.pooled_len_threshold < 0:
            raise ValueError(
                f"pooled_len_threshold must be non-negative: {self.pooled_len_threshold}"
            )
        if self.dram_budget_bytes < 0:
            raise ValueError(f"dram_budget_bytes must be non-negative: {self.dram_budget_bytes}")

    def with_overrides(self, **kwargs) -> "SDMConfig":
        """Return a copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **kwargs)
