"""Configuration (Tuning API) of the Software Defined Memory stack.

Every knob the paper exposes as a "Tuning API" is a field here: cache sizes
and partition counts (section 4.3), the pooled-embedding-cache length
threshold (4.4), outstanding-IO limits (4.1), placement policy and DRAM
budget (4.6), de-pruning / de-quantisation at load time (4.5, A.5), the
access path (DIRECT-IO vs mmap) and inter-op parallelism (A.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.placement import PlacementPolicy
from repro.hierarchy.tier import PROMOTION_POLICIES, TierSpec, parse_tiers
from repro.sim.units import MIB
from repro.storage.io_engine import IOEngineConfig
from repro.storage.spec import TABLE1_SPECS, Technology


class AccessPathKind(str, enum.Enum):
    """How the application reads SM data (section 4.1)."""

    DIRECT_IO = "direct_io"
    MMAP = "mmap"


#: How the serve core walks the tier chain: ``"batched"`` flows a whole batch
#: of lookups through the hierarchy as arrays (the fast path; falls back to
#: the scalar walk whenever an exact replay is not possible), ``"scalar"``
#: forces the original per-row walk (the parity oracle).
SERVE_MODES = ("batched", "scalar")


@dataclass(frozen=True)
class SDMConfig:
    """Tuning parameters of one SDM deployment on one host.

    Attributes
    ----------
    device_technology / num_devices / device_capacity_bytes:
        The SM devices attached to the host (e.g. 2x 2 TB Nand Flash on
        HW-SS, 2x 400 GB Optane on HW-AO).
    row_cache_capacity_bytes:
        FM byte budget of the unified row cache.
    memory_optimized_fraction / small_row_threshold_bytes / num_cache_partitions:
        Unified-cache organisation knobs (section 4.3).
    pooled_cache_enabled / pooled_cache_capacity_bytes / pooled_len_threshold:
        Pooled embedding cache (section 4.4, Algorithm 1).  ``pooled_len_threshold``
        is the paper's ``LenThreshold``: only requests with more indices are
        considered for pooled caching.
    placement_policy / dram_budget_bytes / pinned_fm_tables:
        Placement strategy (section 4.6, Table 5).  ``pinned_fm_tables`` is the
        "list of tables which should not be placed in SM" Tuning API.
    cache_disable_alpha_threshold:
        For the PER_TABLE_CACHE policy: tables whose access-skew alpha is
        below this get the row cache disabled (low temporal locality).
    io:
        io_uring engine configuration (section 4.1).
    access_path:
        DIRECT-IO with an application cache (the paper's choice) or mmap.
    inter_op_parallelism:
        Overlap the IO of different embedding operators (appendix A.2).
    deprune_at_load / dequantize_at_load:
        SM-vs-FM capacity trade-offs (section 4.5 and appendix A.5).
    tiers:
        Optional N-tier memory hierarchy (fastest first), e.g.
        ``"dram:64KiB,cxl:4MiB,nand:1GiB"`` or a list of
        :class:`~repro.hierarchy.tier.TierSpec`/mapping entries.  ``None``
        (the default) keeps the classic two-tier FM/SM stack built from
        ``device_technology``/``num_devices``/``dram_budget_bytes`` — a
        bit-identical special case of the tier chain.  When set, those
        legacy device fields are ignored, and placement is
        **capacity-driven**: the N-tier generalisation of FIXED_FM_SM,
        greedily homing the highest-bandwidth-density tables on the fastest
        tier with room.  ``placement_policy`` then only contributes the
        PER_TABLE_CACHE cache-disable threshold; for SM-only semantics give
        tier 0 a zero capacity (``"dram:0,..."``).
    promotion:
        Which upper-tier row caches a row read from a slower tier is
        promoted into: ``"all"`` (every cache above the home tier — the
        default, so configured device-tier caches actually fill; identical
        to ``"top"`` whenever only tier 0 has a cache, which includes every
        legacy two-tier config), ``"top"`` (the fastest cache only), or
        ``"none"``.
    split_rows:
        With ``tiers``: allow a table that straddles a tier budget boundary
        to be row-split across tiers instead of homed whole on the first
        tier with room.
    serve_mode:
        ``"batched"`` (default) serves each embedding-table request through
        the array-native whole-batch tier-chain gather; ``"scalar"`` forces
        the per-row reference walk.  Both produce bit-identical embeddings,
        latencies and tier statistics.
    """

    device_technology: Technology = Technology.NAND_FLASH
    num_devices: int = 2
    device_capacity_bytes: Optional[int] = None

    row_cache_capacity_bytes: int = 8 * MIB
    memory_optimized_fraction: float = 0.8
    small_row_threshold_bytes: int = 255
    num_cache_partitions: int = 1

    pooled_cache_enabled: bool = True
    pooled_cache_capacity_bytes: int = 4 * MIB
    pooled_len_threshold: int = 1

    placement_policy: PlacementPolicy = PlacementPolicy.SM_ONLY_WITH_CACHE
    dram_budget_bytes: int = 0
    pinned_fm_tables: Tuple[str, ...] = ()
    cache_disable_alpha_threshold: float = 0.6

    io: IOEngineConfig = field(default_factory=IOEngineConfig)
    access_path: AccessPathKind = AccessPathKind.DIRECT_IO
    inter_op_parallelism: bool = True

    deprune_at_load: bool = False
    dequantize_at_load: bool = False

    tiers: Optional[Tuple[TierSpec, ...]] = None
    promotion: str = "all"
    split_rows: bool = False

    serve_mode: str = "batched"

    seed: int = 0

    def __post_init__(self) -> None:
        if self.tiers is not None:
            parsed = parse_tiers(self.tiers)
            if not parsed:
                # An explicitly-set but empty hierarchy is a malformed
                # config, not a request for the legacy two-tier default.
                raise ValueError(
                    "tiers was set but names no tiers; omit it (or pass None) "
                    "for the legacy two-tier stack"
                )
            object.__setattr__(self, "tiers", parsed)
        if self.promotion not in PROMOTION_POLICIES:
            raise ValueError(
                f"promotion must be one of {PROMOTION_POLICIES}: {self.promotion!r}"
            )
        if self.split_rows and self.tiers is None:
            raise ValueError(
                "split_rows requires an explicit tiers hierarchy; the legacy "
                "two-tier stack places whole tables only"
            )
        if self.num_devices <= 0:
            raise ValueError(f"num_devices must be positive: {self.num_devices}")
        if self.device_capacity_bytes is not None and self.device_capacity_bytes <= 0:
            raise ValueError(
                f"device_capacity_bytes must be positive: {self.device_capacity_bytes}"
            )
        if self.row_cache_capacity_bytes <= 0:
            raise ValueError(
                f"row_cache_capacity_bytes must be positive: {self.row_cache_capacity_bytes}"
            )
        if not 0.0 < self.memory_optimized_fraction < 1.0:
            raise ValueError(
                f"memory_optimized_fraction must be in (0, 1): {self.memory_optimized_fraction}"
            )
        if self.pooled_cache_capacity_bytes <= 0:
            raise ValueError(
                f"pooled_cache_capacity_bytes must be positive: {self.pooled_cache_capacity_bytes}"
            )
        if self.pooled_len_threshold < 0:
            raise ValueError(
                f"pooled_len_threshold must be non-negative: {self.pooled_len_threshold}"
            )
        if self.dram_budget_bytes < 0:
            raise ValueError(f"dram_budget_bytes must be non-negative: {self.dram_budget_bytes}")
        if self.serve_mode not in SERVE_MODES:
            raise ValueError(f"serve_mode must be one of {SERVE_MODES}: {self.serve_mode!r}")

    def with_overrides(self, **kwargs) -> "SDMConfig":
        """Return a copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **kwargs)

    def resolved_tiers(self) -> Tuple[TierSpec, ...]:
        """The tier geometry this config describes (fastest first).

        With ``tiers`` set, that list verbatim; otherwise the classic
        two-tier equivalent: a DRAM tier whose placement budget is
        ``dram_budget_bytes`` and whose row cache is the unified cache,
        plus one device tier built from the legacy device fields.
        """
        if self.tiers is not None:
            return self.tiers
        device_capacity = (
            self.device_capacity_bytes
            if self.device_capacity_bytes is not None
            else TABLE1_SPECS[self.device_technology].capacity_bytes
        )
        return (
            TierSpec(
                technology=Technology.DRAM,
                capacity_bytes=self.dram_budget_bytes,
                cache_bytes=self.row_cache_capacity_bytes,
            ),
            TierSpec(
                technology=self.device_technology,
                capacity_bytes=device_capacity * self.num_devices,
                num_devices=self.num_devices,
            ),
        )
