"""Table placement across the memory tiers (section 4.6, Table 5).

Three strategies are implemented:

* ``SM_ONLY_WITH_CACHE`` -- every user table goes to SM and relies on the FM
  row cache for hot rows (performs well across the board per the paper).
* ``FIXED_FM_SM`` -- a configurable DRAM budget is spent pinning the tables
  with the highest bandwidth density (bytes/query per byte of capacity)
  directly in FM; the rest go to SM with the cache.
* ``PER_TABLE_CACHE`` -- like SM-only, but tables with low temporal locality
  do not use the row cache at all (caching them only pollutes it).

Item tables always stay in fast memory (or accelerator memory): the paper
places only user embeddings on the slow tier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.dlrm.embedding import EmbeddingTableSpec


class Tier(str, enum.Enum):
    """Where a table's rows live."""

    FM_DIRECT = "fm_direct"
    SM = "sm"


class PlacementPolicy(str, enum.Enum):
    """Placement strategies from Table 5 of the paper."""

    SM_ONLY_WITH_CACHE = "sm_only_with_cache"
    FIXED_FM_SM = "fixed_fm_sm"
    PER_TABLE_CACHE = "per_table_cache"


@dataclass(frozen=True)
class TablePlacement:
    """Placement decision for one table."""

    table_name: str
    tier: Tier
    cache_enabled: bool


@dataclass
class Placement:
    """The full placement decision for a model."""

    decisions: Dict[str, TablePlacement] = field(default_factory=dict)

    def add(self, decision: TablePlacement) -> None:
        if decision.table_name in self.decisions:
            raise ValueError(f"table {decision.table_name!r} already has a placement")
        self.decisions[decision.table_name] = decision

    def for_table(self, table_name: str) -> TablePlacement:
        if table_name not in self.decisions:
            raise KeyError(f"no placement decision for table {table_name!r}")
        return self.decisions[table_name]

    def tier_of(self, table_name: str) -> Tier:
        return self.for_table(table_name).tier

    def tables_on(self, tier: Tier) -> List[str]:
        return [name for name, d in self.decisions.items() if d.tier is tier]

    def sm_tables(self) -> List[str]:
        return self.tables_on(Tier.SM)

    def fm_tables(self) -> List[str]:
        return self.tables_on(Tier.FM_DIRECT)

    def fm_direct_bytes(self, specs: Dict[str, EmbeddingTableSpec]) -> int:
        """FM consumed by directly placed tables."""
        return sum(
            specs[name].size_bytes
            for name in self.fm_tables()
            if name in specs
        )

    def sm_bytes(self, specs: Dict[str, EmbeddingTableSpec]) -> int:
        """SM consumed by tables on the slow tier."""
        return sum(
            specs[name].size_bytes
            for name in self.sm_tables()
            if name in specs
        )


def _bandwidth_density(spec: EmbeddingTableSpec) -> float:
    """Bytes/query per byte of capacity -- higher means more cache-worthy of FM."""
    return spec.bytes_per_query / spec.size_bytes


def compute_placement(
    specs: Sequence[EmbeddingTableSpec],
    policy: PlacementPolicy = PlacementPolicy.SM_ONLY_WITH_CACHE,
    dram_budget_bytes: int = 0,
    pinned_fm_tables: Iterable[str] = (),
    cache_disable_alpha_threshold: float = 0.6,
) -> Placement:
    """Compute a placement for the given table specs.

    ``pinned_fm_tables`` is the paper's Tuning API for an offline-computed
    list of tables that must never go to SM; it is honoured by every policy
    and does not count against ``dram_budget_bytes``.
    """
    policy = PlacementPolicy(policy)
    pinned = set(pinned_fm_tables)
    unknown = pinned - {spec.name for spec in specs}
    if unknown:
        raise ValueError(f"pinned tables not present in the model: {sorted(unknown)}")

    placement = Placement()
    user_specs = [s for s in specs if s.is_user]
    item_specs = [s for s in specs if not s.is_user]

    # Item tables (and anything explicitly pinned) stay in fast memory.
    for spec in item_specs:
        placement.add(TablePlacement(spec.name, Tier.FM_DIRECT, cache_enabled=False))
    for spec in user_specs:
        if spec.name in pinned:
            placement.add(TablePlacement(spec.name, Tier.FM_DIRECT, cache_enabled=False))

    remaining = [s for s in user_specs if s.name not in pinned]

    if policy is PlacementPolicy.SM_ONLY_WITH_CACHE:
        for spec in remaining:
            placement.add(TablePlacement(spec.name, Tier.SM, cache_enabled=True))
        return placement

    if policy is PlacementPolicy.FIXED_FM_SM:
        budget = dram_budget_bytes
        # Spend the DRAM budget on the tables with the highest bandwidth
        # density: they generate the most SM traffic per byte of capacity.
        for spec in sorted(remaining, key=_bandwidth_density, reverse=True):
            if spec.size_bytes <= budget:
                placement.add(TablePlacement(spec.name, Tier.FM_DIRECT, cache_enabled=False))
                budget -= spec.size_bytes
            else:
                placement.add(TablePlacement(spec.name, Tier.SM, cache_enabled=True))
        return placement

    # PER_TABLE_CACHE: everything on SM, but low-locality tables skip the cache.
    for spec in remaining:
        cache_enabled = spec.zipf_alpha >= cache_disable_alpha_threshold
        placement.add(TablePlacement(spec.name, Tier.SM, cache_enabled=cache_enabled))
    return placement
