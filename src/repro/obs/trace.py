"""Per-query span tracing on the simulated clock.

The serving stack (:class:`~repro.serving.engine.ServingEngine`,
:class:`~repro.hierarchy.chain.TierChain`,
:class:`~repro.core.sdm.SoftwareDefinedMemory`) emits structured spans —
admission, queue wait, per-tier cache probes, storage-IO waits, dequantise —
against a pluggable :class:`TraceRecorder`.  The default recorder is the
shared :data:`NULL_RECORDER` no-op whose ``enabled`` flag is ``False``; hot
paths guard every emission with ``if recorder.enabled:`` so tracing-off runs
execute exactly the pre-trace instruction stream (the parity tests pin this
down as bit-identical results).

:class:`ChromeTraceRecorder` collects spans in the Chrome trace-event JSON
format (the ``{"traceEvents": [...]}`` container of *complete* ``ph: "X"``
events), which https://ui.perfetto.dev loads directly.  Timestamps are the
*simulated* clock scaled to microseconds; wall-clock profiling spans (see
:mod:`repro.obs.profile`) land in a separate process track with their own
timebase so the two never get confused for each other.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

#: Simulated seconds → Chrome trace microseconds.
_US = 1e6

#: Track (pid) that carries simulated-time spans.
SIM_PID = 0
#: Track (pid) that carries wall-clock profiling spans.
WALL_PID = 1


class TraceRecorder:
    """No-op base recorder: the zero-overhead default.

    Every emission method is a ``pass``; the class-level ``enabled`` /
    ``wall_profiling`` flags are ``False`` so instrumented code skips even
    the argument construction.  Subclasses that record set ``enabled`` (and
    optionally ``wall_profiling``) to ``True`` on the instance.

    ``track`` is the thread id spans default to when the caller does not
    pass one; the serving engine points it at the current serving stream
    before dispatching a query so backend-emitted spans nest under the
    stream that is executing them.
    """

    enabled: bool = False
    wall_profiling: bool = False
    track: int = 0

    def set_track(self, tid: int) -> None:
        """Route subsequent default-track spans to thread ``tid``."""

    def pause(self) -> None:
        """Suspend span recording (warmup queries are not traced)."""

    def resume(self) -> None:
        """Re-arm span recording after :meth:`pause`."""

    def span(
        self,
        name: str,
        category: str,
        start: float,
        duration: float,
        *,
        tid: Optional[int] = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record one complete span on the simulated clock (seconds)."""

    def instant(
        self,
        name: str,
        category: str,
        time: float,
        *,
        tid: Optional[int] = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a zero-duration marker (e.g. a shed query)."""

    def counter(self, name: str, time: float, values: Mapping[str, float]) -> None:
        """Record a counter sample (e.g. admission-queue depth)."""

    def wall_span(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record one wall-clock profiling span (perf_counter seconds)."""


#: The shared zero-overhead default recorder.
NULL_RECORDER = TraceRecorder()


class ChromeTraceRecorder(TraceRecorder):
    """Collects spans as Chrome trace-event dicts, exportable as JSON.

    Events accumulate in memory up to ``max_events``; past the cap new spans
    are counted in ``dropped_events`` instead of stored, so a runaway trace
    degrades instead of exhausting memory.  ``to_chrome_trace`` returns the
    Perfetto-loadable ``{"traceEvents": [...]}`` container with process /
    thread metadata naming the simulated-host and wall-clock tracks.
    """

    def __init__(
        self, *, wall_profiling: bool = False, max_events: int = 1_000_000
    ) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be positive: {max_events}")
        self.enabled = True
        self.wall_profiling = wall_profiling
        self.track = 0
        self.max_events = max_events
        self.dropped_events = 0
        self._paused_enabled = True
        self._events: List[Dict[str, Any]] = []
        self._thread_names: Dict[int, str] = {0: "admission"}
        self._wall_epoch: Optional[float] = None

    def __len__(self) -> int:
        return len(self._events)

    # ----------------------------------------------------------- recording
    def set_track(self, tid: int) -> None:
        self.track = tid

    def pause(self) -> None:
        self._paused_enabled = self.enabled
        self.enabled = False

    def resume(self) -> None:
        # Restore rather than force True: wall-profiling-only recorders keep
        # simulated-clock spans off (enabled=False) across warmup.
        self.enabled = self._paused_enabled

    def name_thread(self, tid: int, name: str) -> None:
        """Label one simulated-host thread track (e.g. ``1`` → ``stream 0``)."""
        self._thread_names[tid] = name

    def _append(self, event: Dict[str, Any]) -> None:
        if len(self._events) >= self.max_events:
            self.dropped_events += 1
            return
        self._events.append(event)

    # span/instant/counter re-check ``enabled`` so pause() holds even for
    # callers that skip the hot-path ``if recorder.enabled:`` guard.
    def span(
        self,
        name: str,
        category: str,
        start: float,
        duration: float,
        *,
        tid: Optional[int] = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if not self.enabled:
            return
        event: Dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": start * _US,
            "dur": duration * _US,
            "pid": SIM_PID,
            "tid": self.track if tid is None else tid,
        }
        if args:
            event["args"] = dict(args)
        self._append(event)

    def instant(
        self,
        name: str,
        category: str,
        time: float,
        *,
        tid: Optional[int] = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if not self.enabled:
            return
        event: Dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "t",
            "ts": time * _US,
            "pid": SIM_PID,
            "tid": self.track if tid is None else tid,
        }
        if args:
            event["args"] = dict(args)
        self._append(event)

    def counter(self, name: str, time: float, values: Mapping[str, float]) -> None:
        if not self.enabled:
            return
        self._append(
            {
                "name": name,
                "ph": "C",
                "ts": time * _US,
                "pid": SIM_PID,
                "tid": 0,
                "args": dict(values),
            }
        )

    def wall_span(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        # Wall timestamps are perf_counter seconds with an arbitrary origin;
        # re-anchor on the first span so the track starts near zero.
        if self._wall_epoch is None:
            self._wall_epoch = start
        event: Dict[str, Any] = {
            "name": name,
            "cat": "wall",
            "ph": "X",
            "ts": (start - self._wall_epoch) * _US,
            "dur": duration * _US,
            "pid": WALL_PID,
            "tid": 0,
        }
        if args:
            event["args"] = dict(args)
        self._append(event)

    # ------------------------------------------------------------- exporting
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Perfetto-loadable trace container (metadata + events)."""
        metadata: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": SIM_PID,
                "tid": 0,
                "args": {"name": "simulated host"},
            }
        ]
        for tid in sorted(self._thread_names):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": SIM_PID,
                    "tid": tid,
                    "args": {"name": self._thread_names[tid]},
                }
            )
        if any(event["pid"] == WALL_PID for event in self._events):
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": WALL_PID,
                    "tid": 0,
                    "args": {"name": "wall clock (profiling)"},
                }
            )
        return {
            "traceEvents": metadata + list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated seconds x 1e6 (pid 0) / wall seconds (pid 1)",
                "dropped_events": self.dropped_events,
            },
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Write the Chrome trace JSON to ``path`` (parents created)."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.to_chrome_trace(), indent=2), encoding="utf-8")
        return out


def validate_chrome_trace(trace: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``trace`` is a loadable trace container.

    Checks the structural contract Perfetto's legacy JSON importer relies
    on: a ``traceEvents`` list whose entries carry ``ph``/``pid``/``tid``
    (+ ``ts``/``name`` for non-metadata phases, ``dur`` for complete
    events).  Shared by the golden tests and the CI ``obs-smoke`` job.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace needs a 'traceEvents' list")
    for index, event in enumerate(events):
        if not isinstance(event, Mapping):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in ("ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] lacks {key!r}: {event}")
        phase = event["ph"]
        if phase == "M":
            continue
        for key in ("name", "ts"):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] lacks {key!r}: {event}")
        if phase == "X" and "dur" not in event:
            raise ValueError(f"traceEvents[{index}] is complete but lacks 'dur'")
