"""Run reports: turn stored results + timelines into text or JSON.

``python -m repro report TARGET`` renders a report for a result JSON file
(the output of ``run --json``) or every record of a stored campaign
directory.  The text form is the scenario summary table followed by a
per-window timeline table (served QPS, drops, queue depth, per-tier hit
rates); the JSON form (``--json``) is the same data structured for
downstream tooling.

This module works on the plain-dict forms (:meth:`ScenarioResult.to_dict`
output and :meth:`Timeline.to_dict` output) so reports can be produced from
stored records without rebuilding any simulation state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.obs.metrics import Timeline, window_rate, window_ratio

#: Timeline counters always shown as per-window columns when present.
_DEFAULT_RATE_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("engine.served", "served QPS"),
    ("engine.dropped", "drop QPS"),
)


def _tier_prefixes(timeline: Timeline) -> List[str]:
    """Counter prefixes that look like per-tier stats (``backend.tier0``)."""
    prefixes: Set[str] = set()
    for window in timeline.windows:
        for key in window.counters:
            head, _, tail = key.rpartition(".")
            if tail == "cache_probes" and head:
                prefixes.add(head)
    return sorted(prefixes)


def timeline_table_data(
    timeline: Timeline,
) -> Tuple[List[str], List[List[Any]]]:
    """Headers + rows of the per-window report table."""
    tiers = _tier_prefixes(timeline)
    headers = ["window", "start (s)", "end (s)"]
    rate_columns = [
        (key, label)
        for key, label in _DEFAULT_RATE_COLUMNS
        if any(key in window.counters for window in timeline.windows)
    ]
    headers += [label for _, label in rate_columns]
    headers += [f"{prefix.rpartition('.')[2]} hit rate" for prefix in tiers]
    gauge_names = sorted(
        {name for window in timeline.windows for name in window.gauges}
    )
    headers += gauge_names
    rows: List[List[Any]] = []
    for window in timeline.windows:
        row: List[Any] = [
            window.index,
            round(window.start, 6),
            round(window.end, 6),
        ]
        for key, _ in rate_columns:
            row.append(round(window_rate(window, key), 1))
        for prefix in tiers:
            ratio = window_ratio(
                window, f"{prefix}.cache_hits", f"{prefix}.cache_probes"
            )
            row.append("-" if ratio is None else round(ratio, 3))
        for name in gauge_names:
            value = window.gauges.get(name)
            row.append("-" if value is None else value)
        rows.append(row)
    return headers, rows


def report_dict(result_dict: Mapping[str, Any]) -> Dict[str, Any]:
    """The structured (``--json``) report for one stored result dict."""
    report: Dict[str, Any] = {
        "scenario": result_dict.get("scenario"),
        "backend": result_dict.get("backend"),
        "summary": {
            key: result_dict.get(key)
            for key in (
                "num_queries",
                "achieved_qps",
                "offered_qps",
                "dropped_queries",
                "makespan_seconds",
                "meets_slo",
            )
        },
        "latency_seconds": result_dict.get("latency_seconds"),
        "queueing_seconds": result_dict.get("queueing_seconds"),
        "tiers": result_dict.get("tiers"),
    }
    raw_timeline = result_dict.get("timeline")
    if raw_timeline:
        timeline = Timeline.from_dict(raw_timeline)
        headers, rows = timeline_table_data(timeline)
        report["timeline"] = {
            "interval_seconds": timeline.interval,
            "num_windows": len(timeline),
            "totals": timeline.totals(),
            "columns": headers,
            "rows": rows,
        }
    return report


def render_report(result_dict: Mapping[str, Any], *, title: Optional[str] = None) -> str:
    """The text report for one stored result dict (summary + timeline)."""
    # Imported lazily: repro.api imports repro.obs at module load, so a
    # module-level import here would be circular.
    from repro.analysis.reporting import format_table
    from repro.api.results import ScenarioResult

    result = ScenarioResult.from_dict(result_dict)
    parts = [
        format_table(
            ["metric", "value"],
            result.summary_rows(),
            title=title or f"scenario: {result.scenario}",
        )
    ]
    if result.timeline:
        timeline = Timeline.from_dict(result.timeline)
        headers, rows = timeline_table_data(timeline)
        parts.append(
            format_table(
                headers,
                rows,
                title=(
                    f"timeline: {len(timeline)} windows of "
                    f"{timeline.interval:g}s (simulated)"
                ),
            )
        )
    return "\n\n".join(parts)
