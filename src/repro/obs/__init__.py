"""repro.obs — observability: sim-time tracing, time-series metrics, reports.

Three pieces, all driven by the serving stack:

* :mod:`repro.obs.trace` — per-query span tracing on the simulated clock
  behind the pluggable :class:`TraceRecorder` (no-op :data:`NULL_RECORDER`
  default, Chrome-trace-event :class:`ChromeTraceRecorder` exporter that
  https://ui.perfetto.dev loads directly).
* :mod:`repro.obs.metrics` — :class:`MetricsSampler` snapshots cumulative
  tier/cache/IO/admission counters every N simulated seconds and emits a
  :class:`Timeline` of window deltas (hit-rate / QPS / queue-depth curves
  over time instead of one end-of-run aggregate).
* :mod:`repro.obs.report` — renders stored results + timelines as text or
  JSON (the ``python -m repro report`` subcommand).

:mod:`repro.obs.profile` is the repository's single audited wall-clock
module (DET001 allow-lists exactly that file); wall-clock profiling of the
batched serve core and campaign ETA lines go through it and nowhere else.

Everything is wired through ``ScenarioSpec``'s ``telemetry`` section; with
telemetry disabled (the default) the serving stack's behaviour is
bit-identical to a build without this package, which the parity tests pin.
"""

from repro.obs.metrics import (
    CACHE_COUNTER_FIELDS,
    IO_COUNTER_FIELDS,
    TIER_COUNTER_FIELDS,
    MetricsSampler,
    Timeline,
    TimelineWindow,
    stats_counters,
    window_rate,
    window_ratio,
)
from repro.obs.profile import wall_seconds, wall_span
from repro.obs.report import render_report, report_dict, timeline_table_data
from repro.obs.trace import (
    NULL_RECORDER,
    ChromeTraceRecorder,
    TraceRecorder,
    validate_chrome_trace,
)

__all__ = [
    "CACHE_COUNTER_FIELDS",
    "IO_COUNTER_FIELDS",
    "TIER_COUNTER_FIELDS",
    "ChromeTraceRecorder",
    "MetricsSampler",
    "NULL_RECORDER",
    "Timeline",
    "TimelineWindow",
    "TraceRecorder",
    "render_report",
    "report_dict",
    "stats_counters",
    "timeline_table_data",
    "validate_chrome_trace",
    "wall_seconds",
    "wall_span",
    "window_rate",
    "window_ratio",
]
