"""Interval time-series sampling of cumulative serving counters.

A :class:`MetricsSampler` turns the stack's cumulative statistics
(:class:`~repro.hierarchy.tier.TierStats`,
:class:`~repro.cache.base.CacheStats`,
:class:`~repro.storage.io_engine.IOEngineStats`, engine admission counts)
into a :class:`Timeline` of fixed-width windows on the *simulated* clock,
each holding the **delta** of every counter over that window plus gauge
samples (queue depth, busy streams) at the window boundary.  Deltas of
cumulative counters telescope, so the windows of a run sum exactly to its
aggregate statistics — the property the acceptance tests pin down.

The sampler is deliberately *not* an event on the
:class:`~repro.sim.events.Simulator`: periodic sampler events would extend
``sim.clock.now`` past the last completion and change the measured makespan.
Instead the serving engine calls :meth:`advance` with the current simulated
time at the top of each event handler (before the handler mutates any
statistic) and :meth:`finish` once with the makespan — the event queue, and
therefore every simulated result, is untouched.  Window ``k`` covers
``[k*interval, (k+1)*interval)``; an event exactly on a boundary belongs to
the *next* window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

#: A counter source: returns a flat mapping of cumulative numeric counters.
CounterSource = Callable[[], Mapping[str, float]]
#: A gauge source: returns one instantaneous value.
GaugeSource = Callable[[], float]


@dataclass(frozen=True)
class TimelineWindow:
    """One sampling window: counter deltas over it, gauges at its end."""

    index: int
    start: float
    end: float
    counters: Dict[str, float]
    gauges: Dict[str, float]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }


@dataclass
class Timeline:
    """The full window series of one run, JSON-serialisable via ``to_dict``."""

    interval: float
    windows: List[TimelineWindow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.windows)

    def totals(self) -> Dict[str, float]:
        """Sum of every counter across all windows (== final − initial)."""
        totals: Dict[str, float] = {}
        for window in self.windows:
            for key, value in window.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def series(self, counter: str) -> List[float]:
        """One counter's per-window deltas, zero where it is absent."""
        return [window.counters.get(counter, 0) for window in self.windows]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "interval_seconds": self.interval,
            "num_windows": len(self.windows),
            "windows": [window.to_dict() for window in self.windows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Timeline":
        return cls(
            interval=data["interval_seconds"],
            windows=[
                TimelineWindow(
                    index=raw["index"],
                    start=raw["start"],
                    end=raw["end"],
                    counters=dict(raw["counters"]),
                    gauges=dict(raw["gauges"]),
                )
                for raw in data["windows"]
            ],
        )


class MetricsSampler:
    """Snapshots cumulative counters every ``interval`` simulated seconds.

    Counter sources are registered under a prefix (``"backend"``,
    ``"engine"``); their keys flatten to ``prefix.key``.  The engine drives
    the sampler: :meth:`start` right before serving begins (baselines every
    counter, so warmup activity never leaks into window 0), :meth:`advance`
    with the current simulated time before each event handler runs, and
    :meth:`finish` with the makespan — which closes the final partial
    window.  ``advance`` keeps an internal high-water mark, so closed-loop
    serving may report per-stream clocks out of order.
    """

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive: {interval}")
        self.interval = interval
        self._counters: List[Tuple[str, CounterSource]] = []
        self._gauges: List[Tuple[str, GaugeSource]] = []
        self._prev: Dict[str, float] = {}
        self._window = 0
        self._now = 0.0
        self._started = False
        self._finished = False
        self.timeline = Timeline(interval=interval)

    # ------------------------------------------------------------- sources
    def add_counters(self, prefix: str, source: CounterSource) -> None:
        """Register a cumulative-counter source; keys become ``prefix.key``."""
        if self._started:
            raise RuntimeError("cannot add sources after start()")
        self._counters.append((prefix, source))

    def add_gauge(self, name: str, source: GaugeSource) -> None:
        """Register an instantaneous gauge sampled at each window close."""
        if self._started:
            raise RuntimeError("cannot add sources after start()")
        self._gauges.append((name, source))

    def _collect(self) -> Dict[str, float]:
        flat: Dict[str, float] = {}
        for prefix, source in self._counters:
            for key, value in source().items():
                flat[f"{prefix}.{key}" if prefix else key] = value
        return flat

    # ------------------------------------------------------------- driving
    def start(self, now: float = 0.0) -> None:
        """Baseline every counter; window 0 starts at ``now``'s window."""
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        self._now = now
        self._window = int(now // self.interval)
        self._prev = self._collect()

    def advance(self, now: float) -> None:
        """Close every window that ends at or before ``now``."""
        if not self._started or self._finished:
            raise RuntimeError("advance() needs start() first (and no finish())")
        if now > self._now:
            self._now = now
        while self._now >= (self._window + 1) * self.interval:
            self._close((self._window + 1) * self.interval)

    def finish(self, now: float) -> Timeline:
        """Close the trailing partial window at ``now`` and seal the timeline."""
        if self._finished:
            return self.timeline
        self.advance(now)
        self._finished = True
        start = self._window * self.interval
        if self._now > start:
            self._close(self._now)
        return self.timeline

    def _close(self, end: float) -> None:
        current = self._collect()
        deltas = {
            key: current[key] - self._prev.get(key, 0) for key in sorted(current)
        }
        gauges = {name: source() for name, source in self._gauges}
        self.timeline.windows.append(
            TimelineWindow(
                index=self._window,
                start=self._window * self.interval,
                end=end,
                counters=deltas,
                gauges=gauges,
            )
        )
        self._prev = current
        self._window += 1


def stats_counters(stats: Any, fields: Tuple[str, ...]) -> Dict[str, float]:
    """Pick the named cumulative fields off a stats object as a flat dict."""
    return {name: getattr(stats, name) for name in fields}


#: The cumulative fields sampled off each stats object.  Ratios/properties
#: (hit rates, amplification) are recomputed per window from these deltas —
#: sampling a ratio directly would not telescope.
TIER_COUNTER_FIELDS: Tuple[str, ...] = (
    "cache_probes",
    "cache_hits",
    "rows_served",
    "bytes_served",
    "ios",
    "promoted_rows",
)
CACHE_COUNTER_FIELDS: Tuple[str, ...] = (
    "hits",
    "misses",
    "inserts",
    "evictions",
    "rejected_inserts",
    "cpu_seconds",
)
IO_COUNTER_FIELDS: Tuple[str, ...] = (
    "ios_submitted",
    "cpu_seconds",
    "memcpy_seconds",
    "bytes_requested",
    "bytes_transferred",
    "throttled_submissions",
)


def window_rate(window: TimelineWindow, counter: str) -> float:
    """One window's counter delta as a per-second rate."""
    width = window.end - window.start
    if width <= 0:
        return 0.0
    return window.counters.get(counter, 0) / width


def window_ratio(window: TimelineWindow, numerator: str, denominator: str) -> Optional[float]:
    """A within-window ratio (e.g. hit rate), ``None`` when the base is zero."""
    base = window.counters.get(denominator, 0)
    if not base:
        return None
    return window.counters.get(numerator, 0) / base
