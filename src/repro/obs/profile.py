"""The repository's single audited wall-clock module.

Everything under :mod:`repro` runs on simulated time — the DET001 lint rule
forbids wall-clock reads in library code because results must be a pure
function of the :class:`~repro.api.spec.ScenarioSpec`.  Two observability
features legitimately need the real clock anyway: wall-clock profiling of
the batched serve core (how long the *host* spends executing a simulated
query, as opposed to how long the simulated host takes) and progress/ETA
reporting for long campaigns.

Both go through this module, which is the one path DET001 allow-lists (see
``WALL_CLOCK_ALLOWED_SUFFIXES`` in :mod:`repro.lint.rules.determinism`).
The contract that keeps the allow-list safe: nothing returned from here may
flow into simulated time, serving results or anything hashed/stored — only
into :meth:`TraceRecorder.wall_span` profiling tracks and stderr progress
lines.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator

from repro.obs.trace import TraceRecorder


def wall_seconds() -> float:
    """Monotonic wall-clock seconds (``time.perf_counter``), arbitrary origin."""
    return time.perf_counter()


@contextmanager
def wall_span(
    recorder: TraceRecorder, name: str, **args: Any
) -> Iterator[Dict[str, Any]]:
    """Record the wall-clock duration of a block as a profiling span.

    Only measures when ``recorder.wall_profiling`` is set, so the default
    no-op recorder pays nothing.  The yielded dict is the span's ``args``;
    callers may add fields (row counts, byte totals) before the block ends.
    """
    payload: Dict[str, Any] = dict(args)
    if not recorder.wall_profiling:
        yield payload
        return
    started = wall_seconds()
    try:
        yield payload
    finally:
        recorder.wall_span(name, started, wall_seconds() - started, args=payload)
