"""CPU-optimised cache organisation.

The alternative CacheLib tuning: each entry carries a full hash-table slot
and LRU linkage (higher per-item memory overhead) but lookups are a single
pointer chase.  The unified cache routes embedding rows larger than 255 B
here, where the relative metadata overhead is small and CPU efficiency
matters more (Figure 6).
"""

from __future__ import annotations

from repro.cache.soa import SoALRUCache

#: Metadata bytes per item for the pointer-rich layout.
CPU_OPTIMIZED_OVERHEAD_BYTES = 56


class CPUOptimizedCache(SoALRUCache):
    """Higher metadata overhead, constant-time lookups."""

    def __init__(
        self,
        capacity_bytes: int,
        per_item_overhead_bytes: int = CPU_OPTIMIZED_OVERHEAD_BYTES,
        lookup_cpu_seconds: float = 1.2e-7,
        insert_cpu_seconds: float = 3.0e-7,
    ) -> None:
        super().__init__(
            capacity_bytes,
            per_item_overhead_bytes=per_item_overhead_bytes,
            lookup_cpu_seconds=lookup_cpu_seconds,
            insert_cpu_seconds=insert_cpu_seconds,
        )
