"""Cache admission policies.

The paper relies on LRU with admit-on-miss; these policies exist for the
ablation benchmarks (e.g. showing that de-pruned zero rows pollute the cache
only mildly because they are rarely re-referenced) and for tuning studies.
"""

from __future__ import annotations

import abc

from repro.cache.base import CacheKey
from repro.sim.rng import make_rng


class AdmissionPolicy(abc.ABC):
    """Decides whether a missed value should be inserted into the cache."""

    @abc.abstractmethod
    def admit(self, key: CacheKey, value: bytes) -> bool:
        """Return ``True`` to insert the value after a miss."""


class AlwaysAdmit(AdmissionPolicy):
    """Admit every miss (the default behaviour in the paper)."""

    def admit(self, key: CacheKey, value: bytes) -> bool:
        return True


class ProbabilisticAdmission(AdmissionPolicy):
    """Admit a miss with fixed probability (a cheap scan-resistance knob)."""

    def __init__(self, probability: float, seed: int = 0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1]: {probability}")
        self.probability = probability
        self._rng = make_rng(seed, "admission")

    def admit(self, key: CacheKey, value: bytes) -> bool:
        return bool(self._rng.random() < self.probability)


class SizeThresholdAdmission(AdmissionPolicy):
    """Reject values larger than a threshold (protects the cache from the
    small-but-growing set of very wide embedding rows)."""

    def __init__(self, max_value_bytes: int) -> None:
        if max_value_bytes <= 0:
            raise ValueError(f"max_value_bytes must be positive: {max_value_bytes}")
        self.max_value_bytes = max_value_bytes

    def admit(self, key: CacheKey, value: bytes) -> bool:
        return len(value) <= self.max_value_bytes
