"""Common cache interface and statistics."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Hashable, Optional

CacheKey = Hashable


@dataclass
class CacheStats:
    """Hit/miss/eviction counters plus CPU-time accounting.

    ``cpu_seconds`` accumulates the modelled host CPU cost of lookups and
    inserts, which is what differentiates the memory-optimised and
    CPU-optimised organisations in Figure 6 of the paper.
    """

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    rejected_inserts: int = 0
    cpu_seconds: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        self.hits += other.hits
        self.misses += other.misses
        self.inserts += other.inserts
        self.evictions += other.evictions
        self.rejected_inserts += other.rejected_inserts
        self.cpu_seconds += other.cpu_seconds
        return self


class RowCache(abc.ABC):
    """Byte-budgeted key/value cache for embedding rows."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()

    @abc.abstractmethod
    def get(self, key: CacheKey) -> Optional[bytes]:
        """Return the cached value or ``None``; records a hit or miss."""

    @abc.abstractmethod
    def put(self, key: CacheKey, value: bytes) -> bool:
        """Insert a value, evicting as needed.  Returns ``False`` if rejected."""

    @abc.abstractmethod
    def contains(self, key: CacheKey) -> bool:
        """Membership test without recording a hit/miss or touching LRU order."""

    @abc.abstractmethod
    def invalidate(self, key: CacheKey) -> bool:
        """Drop one entry (used during model update).  Returns whether present."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop all entries (full model update / cold start)."""

    @property
    @abc.abstractmethod
    def used_bytes(self) -> int:
        """Bytes currently consumed, including per-item metadata overhead."""

    @property
    @abc.abstractmethod
    def item_count(self) -> int:
        """Number of cached entries."""

    @property
    def occupancy(self) -> float:
        return self.used_bytes / self.capacity_bytes

    def reset_stats(self) -> None:
        self.stats = CacheStats()
