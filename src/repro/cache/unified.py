"""Unified row cache: the dual-cache organisation of section 4.3.

A single front door routes each embedding row to one of two internal caches
based on its size: rows with embedding dimension <= 255 B go to the
memory-optimised cache (metadata overhead dominates for small values), larger
rows go to the CPU-optimised cache.  The unified cache also supports
partitioning (the "number of cache partitions" Tuning API knob) to model
reduced lock contention / sharding.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cache.admission import AdmissionPolicy, AlwaysAdmit
from repro.cache.base import CacheKey, CacheStats
from repro.cache.cpu_optimized import CPUOptimizedCache
from repro.cache.memory_optimized import MemoryOptimizedCache

#: Rows at or below this size are routed to the memory-optimised cache.
SMALL_ROW_THRESHOLD_BYTES = 255


@dataclass(frozen=True)
class UnifiedCacheConfig:
    """Sizing and routing parameters for the unified row cache.

    ``memory_optimized_fraction`` splits the byte budget between the two
    internal caches; the default mirrors the paper's observation that the
    majority of tables (and hence cached rows) are small.
    """

    capacity_bytes: int
    memory_optimized_fraction: float = 0.8
    small_row_threshold_bytes: int = SMALL_ROW_THRESHOLD_BYTES
    num_partitions: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive: {self.capacity_bytes}")
        if not 0.0 < self.memory_optimized_fraction < 1.0:
            raise ValueError(
                "memory_optimized_fraction must be in (0, 1): "
                f"{self.memory_optimized_fraction}"
            )
        if self.small_row_threshold_bytes <= 0:
            raise ValueError(
                f"small_row_threshold_bytes must be positive: {self.small_row_threshold_bytes}"
            )
        if self.num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive: {self.num_partitions}")


class UnifiedRowCache:
    """Routes rows to the memory-optimised or CPU-optimised internal cache."""

    def __init__(
        self,
        config: UnifiedCacheConfig,
        admission: Optional[AdmissionPolicy] = None,
    ) -> None:
        self.config = config
        self.admission = admission if admission is not None else AlwaysAdmit()
        partitions = config.num_partitions
        memory_budget = int(config.capacity_bytes * config.memory_optimized_fraction)
        cpu_budget = config.capacity_bytes - memory_budget
        self._memory_caches: List[MemoryOptimizedCache] = [
            MemoryOptimizedCache(max(memory_budget // partitions, 1)) for _ in range(partitions)
        ]
        self._cpu_caches: List[CPUOptimizedCache] = [
            CPUOptimizedCache(max(cpu_budget // partitions, 1)) for _ in range(partitions)
        ]

    # ------------------------------------------------------------- routing
    def _partition_index(self, key: CacheKey) -> int:
        # ``hash()`` is salted per process for strings; use a stable digest so
        # partition routing (and therefore experiment results) is reproducible
        # across runs.
        return zlib.crc32(repr(key).encode("utf-8")) % self.config.num_partitions

    def _route(self, key: CacheKey, value_size: int):
        index = self._partition_index(key)
        if value_size <= self.config.small_row_threshold_bytes:
            return self._memory_caches[index]
        return self._cpu_caches[index]

    def _route_for_lookup(self, key: CacheKey, size_hint: Optional[int]):
        """When no size hint is available, check both internal caches."""
        index = self._partition_index(key)
        if size_hint is not None:
            return [self._route(key, size_hint)]
        return [self._memory_caches[index], self._cpu_caches[index]]

    # ------------------------------------------------------------------ API
    def get(self, key: CacheKey, size_hint: Optional[int] = None) -> Optional[bytes]:
        """Look up a row.  ``size_hint`` (the row byte size, known from the
        table spec) avoids probing both internal caches."""
        caches = self._route_for_lookup(key, size_hint)
        for position, cache in enumerate(caches):
            value = cache.get(key)
            if value is not None:
                # Credit back the misses recorded by earlier probes so the
                # unified hit rate counts one logical lookup.
                for probed in caches[:position]:
                    probed.stats.misses -= 1
                return value
        # Only count one logical miss even if both internal caches were probed.
        for probed in caches[1:]:
            probed.stats.misses -= 1
        return None

    def put(self, key: CacheKey, value: bytes) -> bool:
        if not self.admission.admit(key, value):
            self._route(key, len(value)).stats.rejected_inserts += 1
            return False
        return self._route(key, len(value)).put(key, value)

    def contains(self, key: CacheKey) -> bool:
        index = self._partition_index(key)
        return self._memory_caches[index].contains(key) or self._cpu_caches[index].contains(key)

    # ------------------------------------------------------------- batch API
    def _batch_cache(self, row_len: int):
        """The single internal cache all ``(table, stored)`` keys of one size
        route to when there is exactly one partition."""
        if row_len <= self.config.small_row_threshold_bytes:
            return self._memory_caches[0]
        return self._cpu_caches[0]

    def probe_batch(
        self, table_name: str, stored_indices: np.ndarray, row_len: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`get` with a size hint, one key per stored row.

        Returns ``(hit_mask, values)`` where ``values`` stacks the hit rows as
        a ``(num_hits, row_len)`` uint8 matrix in input order.  With one
        partition this is a handful of array ops; with more, an exact scalar
        fallback keeps partition routing (and stats) unchanged.
        """
        if self.config.num_partitions == 1:
            return self._batch_cache(row_len).probe_batch(table_name, stored_indices, row_len)
        stored = np.asarray(stored_indices, dtype=np.int64)
        hit_mask = np.zeros(stored.size, dtype=bool)
        hits: List[bytes] = []
        for position in range(stored.size):
            value = self.get((table_name, int(stored[position])), size_hint=row_len)
            if value is not None:
                hit_mask[position] = True
                hits.append(value)
        if not hits:
            return hit_mask, np.empty((0, row_len), dtype=np.uint8)
        values = np.frombuffer(b"".join(hits), dtype=np.uint8).reshape(len(hits), row_len)
        return hit_mask, values

    def fill_batch(
        self, table_name: str, stored_indices: np.ndarray, values: np.ndarray
    ) -> None:
        """Batched :meth:`put`, one key per stored row of a uint8 matrix."""
        row_len = int(values.shape[1])
        if self.config.num_partitions == 1 and isinstance(self.admission, AlwaysAdmit):
            self._batch_cache(row_len).fill_batch(table_name, stored_indices, values)
            return
        stored = np.asarray(stored_indices, dtype=np.int64)
        for position in range(stored.size):
            self.put((table_name, int(stored[position])), values[position].tobytes())

    def contains_batch(
        self,
        table_name: str,
        stored_indices: np.ndarray,
        size_hint: Optional[int] = None,
    ) -> np.ndarray:
        """Vectorised membership test; no stats, no LRU effect.

        With a size hint only the routed internal cache is consulted — a row
        of that size can never have been inserted into the other one.
        """
        stored = np.asarray(stored_indices, dtype=np.int64)
        if self.config.num_partitions == 1:
            if size_hint is not None:
                return self._batch_cache(size_hint).contains_batch(table_name, stored)
            memory = self._memory_caches[0].contains_batch(table_name, stored)
            return memory | self._cpu_caches[0].contains_batch(table_name, stored)
        mask = np.zeros(stored.size, dtype=bool)
        for position in range(stored.size):
            mask[position] = self.contains((table_name, int(stored[position])))
        return mask

    def invalidate(self, key: CacheKey) -> bool:
        index = self._partition_index(key)
        removed = self._memory_caches[index].invalidate(key)
        removed = self._cpu_caches[index].invalidate(key) or removed
        return removed

    def clear(self) -> None:
        for cache in self._all_caches():
            cache.clear()

    def _all_caches(self):
        return [*self._memory_caches, *self._cpu_caches]

    # ----------------------------------------------------------------- stats
    @property
    def stats(self) -> CacheStats:
        merged = CacheStats()
        for cache in self._all_caches():
            merged.merge(cache.stats)
        return merged

    @property
    def used_bytes(self) -> int:
        return sum(cache.used_bytes for cache in self._all_caches())

    @property
    def item_count(self) -> int:
        return sum(cache.item_count for cache in self._all_caches())

    @property
    def capacity_bytes(self) -> int:
        return self.config.capacity_bytes

    @property
    def memory_optimized_stats(self) -> CacheStats:
        merged = CacheStats()
        for cache in self._memory_caches:
            merged.merge(cache.stats)
        return merged

    @property
    def cpu_optimized_stats(self) -> CacheStats:
        merged = CacheStats()
        for cache in self._cpu_caches:
            merged.merge(cache.stats)
        return merged

    def reset_stats(self) -> None:
        for cache in self._all_caches():
            cache.reset_stats()
