"""Byte-budgeted LRU cache.

This is the core eviction machinery shared by the memory-optimised and
CPU-optimised cache organisations; the two differ only in per-item metadata
overhead and per-lookup CPU cost (see their modules).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.base import CacheKey, RowCache


class LRUCache(RowCache):
    """Least-recently-used cache with a byte capacity.

    Parameters
    ----------
    capacity_bytes:
        Total byte budget, including ``per_item_overhead_bytes`` for each
        cached entry.
    per_item_overhead_bytes:
        Metadata bytes charged per entry (hash table slot, LRU links,
        key storage).
    lookup_cpu_seconds / insert_cpu_seconds:
        Modelled host CPU time per operation, accumulated into ``stats``.
    """

    def __init__(
        self,
        capacity_bytes: int,
        per_item_overhead_bytes: int = 32,
        lookup_cpu_seconds: float = 2.0e-7,
        insert_cpu_seconds: float = 4.0e-7,
    ) -> None:
        super().__init__(capacity_bytes)
        if per_item_overhead_bytes < 0:
            raise ValueError(
                f"per_item_overhead_bytes must be non-negative: {per_item_overhead_bytes}"
            )
        self.per_item_overhead_bytes = per_item_overhead_bytes
        self.lookup_cpu_seconds = lookup_cpu_seconds
        self.insert_cpu_seconds = insert_cpu_seconds
        self._entries: "OrderedDict[CacheKey, bytes]" = OrderedDict()
        self._used_bytes = 0

    # ------------------------------------------------------------- internals
    def _entry_size(self, value: bytes) -> int:
        return len(value) + self.per_item_overhead_bytes

    def _evict_until_fits(self, needed: int) -> None:
        while self._entries and self._used_bytes + needed > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._used_bytes -= self._entry_size(evicted)
            self.stats.evictions += 1

    def _charge_lookup(self) -> None:
        self.stats.cpu_seconds += self.lookup_cpu_seconds

    # ------------------------------------------------------------------ API
    def get(self, key: CacheKey) -> Optional[bytes]:
        self._charge_lookup()
        value = self._entries.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: CacheKey, value: bytes) -> bool:
        self.stats.cpu_seconds += self.insert_cpu_seconds
        size = self._entry_size(value)
        if size > self.capacity_bytes:
            self.stats.rejected_inserts += 1
            return False
        if key in self._entries:
            self._used_bytes -= self._entry_size(self._entries[key])
            del self._entries[key]
        self._evict_until_fits(size)
        self._entries[key] = value
        self._used_bytes += size
        self.stats.inserts += 1
        return True

    def contains(self, key: CacheKey) -> bool:
        return key in self._entries

    def invalidate(self, key: CacheKey) -> bool:
        value = self._entries.pop(key, None)
        if value is None:
            return False
        self._used_bytes -= self._entry_size(value)
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._used_bytes = 0

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def item_count(self) -> int:
        return len(self._entries)

    def keys(self):
        """Iterate keys from least to most recently used (for inspection)."""
        return iter(self._entries.keys())
