"""Memory-optimised cache organisation.

The paper's CacheLib deployment can be tuned for *memory overhead*: entries
carry very little metadata (compact buckets), at the cost of searching within
a bucket on every lookup, i.e. more CPU per operation.  The majority of
embedding tables have rows smaller than 256 B, so this organisation stores
many more rows per GB of FM -- which is why the unified cache routes small
rows here (Figure 6).
"""

from __future__ import annotations

from repro.cache.soa import SoALRUCache

#: Metadata bytes per item for the compact/bucketed layout.
MEMORY_OPTIMIZED_OVERHEAD_BYTES = 12

#: Average entries scanned per bucket lookup; drives the higher CPU cost.
AVERAGE_BUCKET_SCAN = 4


class MemoryOptimizedCache(SoALRUCache):
    """Low metadata overhead, bucket-search lookups."""

    def __init__(
        self,
        capacity_bytes: int,
        per_item_overhead_bytes: int = MEMORY_OPTIMIZED_OVERHEAD_BYTES,
        base_lookup_cpu_seconds: float = 1.5e-7,
        bucket_scan_cpu_seconds: float = 0.8e-7,
        insert_cpu_seconds: float = 5.0e-7,
    ) -> None:
        lookup_cost = base_lookup_cpu_seconds + AVERAGE_BUCKET_SCAN * bucket_scan_cpu_seconds
        super().__init__(
            capacity_bytes,
            per_item_overhead_bytes=per_item_overhead_bytes,
            lookup_cpu_seconds=lookup_cost,
            insert_cpu_seconds=insert_cpu_seconds,
        )
