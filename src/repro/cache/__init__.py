"""Fast-memory (FM) software-managed cache substrate.

A stand-in for CacheLib as used by the paper (section 4.3): an LRU row cache
offered in two flavours -- a memory-optimised variant with low per-item
metadata overhead but a bucket search on lookup, and a CPU-optimised variant
with higher per-item overhead but constant-time lookups -- plus the unified
router that sends small embedding rows (dim <= 255 B) to the memory-optimised
cache and larger rows to the CPU-optimised cache.
"""

from repro.cache.base import CacheStats, RowCache
from repro.cache.lru import LRUCache
from repro.cache.soa import SoALRUCache
from repro.cache.memory_optimized import MemoryOptimizedCache
from repro.cache.cpu_optimized import CPUOptimizedCache
from repro.cache.unified import UnifiedRowCache, UnifiedCacheConfig
from repro.cache.admission import (
    AdmissionPolicy,
    AlwaysAdmit,
    ProbabilisticAdmission,
    SizeThresholdAdmission,
)

__all__ = [
    "CacheStats",
    "RowCache",
    "LRUCache",
    "SoALRUCache",
    "MemoryOptimizedCache",
    "CPUOptimizedCache",
    "UnifiedRowCache",
    "UnifiedCacheConfig",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "ProbabilisticAdmission",
    "SizeThresholdAdmission",
]
