"""Structure-of-arrays LRU row cache with whole-batch operations.

Drop-in replacement for the :class:`~repro.cache.lru.LRUCache` eviction
machinery, bit-identical in every observable — hit/miss/eviction counters,
modelled CPU seconds, eviction order, ``used_bytes`` — but organised as
parallel arrays so a whole batch of row keys can be probed or filled with a
handful of NumPy operations instead of one dict transaction per row:

* keys of the hot shape ``(table_name, stored_index)`` are resolved through a
  per-table int64 direct-index array (stored index -> slot, ``-1`` absent),
* row payloads live in contiguous per-row-length storage pools, so a batched
  probe gathers all hit rows as one ``(hits, row_bytes)`` uint8 matrix,
* recency is a monotonically increasing stamp per slot; eviction order
  (ascending stamp) equals the OrderedDict LRU order, found through a
  lazy-deletion min-heap that is only touched on insert and eviction — a
  batched probe refreshes stamps with one vectorised store.

CPU-time accounting replicates the scalar cache's float accumulation exactly:
``np.add.accumulate`` performs the same left-to-right chain of additions a
per-row ``+=`` loop would, so ``stats.cpu_seconds`` stays bitwise equal.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.cache.base import CacheKey, RowCache


class _RowPool:
    """Contiguous storage for fixed-length rows with a free list."""

    __slots__ = ("data", "count", "free")

    def __init__(self, row_len: int) -> None:
        self.data = np.empty((16, max(row_len, 1)), dtype=np.uint8)
        self.count = 0
        self.free: List[int] = []

    def alloc(self) -> int:
        if self.free:
            return self.free.pop()
        if self.count == self.data.shape[0]:
            grown = np.empty((self.data.shape[0] * 2, self.data.shape[1]), dtype=np.uint8)
            grown[: self.count] = self.data
            self.data = grown
        row = self.count
        self.count += 1
        return row


class SoALRUCache(RowCache):
    """Byte-budgeted LRU cache over structure-of-arrays storage.

    Constructor parameters and scalar ``get``/``put`` semantics mirror
    :class:`~repro.cache.lru.LRUCache` exactly; the batch methods
    (:meth:`probe_batch`, :meth:`fill_batch`, :meth:`contains_batch`) are the
    array-native equivalents of calling the scalar operations once per row in
    input order.
    """

    def __init__(
        self,
        capacity_bytes: int,
        per_item_overhead_bytes: int = 32,
        lookup_cpu_seconds: float = 2.0e-7,
        insert_cpu_seconds: float = 4.0e-7,
    ) -> None:
        super().__init__(capacity_bytes)
        if per_item_overhead_bytes < 0:
            raise ValueError(
                f"per_item_overhead_bytes must be non-negative: {per_item_overhead_bytes}"
            )
        self.per_item_overhead_bytes = per_item_overhead_bytes
        self.lookup_cpu_seconds = lookup_cpu_seconds
        self.insert_cpu_seconds = insert_cpu_seconds
        self._slot_of: Dict[CacheKey, int] = {}
        self._slot_key: List[Optional[CacheKey]] = []
        self._slot_len = np.zeros(0, dtype=np.int64)
        self._slot_stamp = np.zeros(0, dtype=np.int64)
        self._slot_row = np.zeros(0, dtype=np.int64)
        self._free_slots: List[int] = []
        self._pools: Dict[int, _RowPool] = {}
        # (stamp, slot) lazy-deletion min-heap: pushed on insert, refreshed on
        # stale pop, never touched by (batched) gets.
        self._heap: List[Tuple[int, int]] = []
        self._stamp = 0
        self._used_bytes = 0
        # Per-table direct index: stored row -> slot (-1 when absent).  Only
        # maintained for keys of the hot (table_name, stored_index) shape.
        self._table_index: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------- internals
    @staticmethod
    def _row_key_parts(key: CacheKey) -> Optional[Tuple[str, int]]:
        if (
            isinstance(key, tuple)
            and len(key) == 2
            and isinstance(key[0], str)
            and isinstance(key[1], (int, np.integer))
            and not isinstance(key[1], bool)
        ):
            return key[0], int(key[1])
        return None

    def _index_for(self, table_name: str, min_size: int) -> np.ndarray:
        index = self._table_index.get(table_name)
        if index is None or index.size < min_size:
            old_size = 0 if index is None else index.size
            grown = np.full(max(min_size, old_size * 2, 64), -1, dtype=np.int64)
            if index is not None:
                grown[:old_size] = index
            self._table_index[table_name] = grown
            index = grown
        return index

    def _grow_slots(self) -> None:
        old = self._slot_stamp.size
        new = max(old * 2, 16)
        for name in ("_slot_len", "_slot_stamp", "_slot_row"):
            grown = np.zeros(new, dtype=np.int64)
            grown[:old] = getattr(self, name)
            setattr(self, name, grown)
        self._slot_key.extend([None] * (new - old))
        self._free_slots.extend(range(old, new))

    def _pool_for(self, row_len: int) -> _RowPool:
        pool = self._pools.get(row_len)
        if pool is None:
            pool = _RowPool(row_len)
            self._pools[row_len] = pool
        return pool

    def _next_stamp(self) -> int:
        self._stamp += 1
        return self._stamp

    def _entry_size(self, value_len: int) -> int:
        return value_len + self.per_item_overhead_bytes

    def _insert_entry(self, key: CacheKey, value: np.ndarray) -> None:
        """Store one row; ``value`` is a 1-D uint8 view of the payload."""
        if not self._free_slots:
            self._grow_slots()
        slot = self._free_slots.pop()
        row_len = int(value.size)
        pool = self._pool_for(row_len)
        row = pool.alloc()
        pool.data[row, :row_len] = value
        self._slot_key[slot] = key
        self._slot_len[slot] = row_len
        self._slot_row[slot] = row
        stamp = self._next_stamp()
        self._slot_stamp[slot] = stamp
        heapq.heappush(self._heap, (stamp, slot))
        self._slot_of[key] = slot
        self._used_bytes += self._entry_size(row_len)
        parts = self._row_key_parts(key)
        if parts is not None:
            table_name, stored = parts
            self._index_for(table_name, stored + 1)[stored] = slot

    def _remove_slot(self, slot: int) -> None:
        key = self._slot_key[slot]
        row_len = int(self._slot_len[slot])
        self._pools[row_len].free.append(int(self._slot_row[slot]))
        self._used_bytes -= self._entry_size(row_len)
        self._slot_key[slot] = None
        del self._slot_of[key]
        self._free_slots.append(slot)
        parts = self._row_key_parts(key)
        if parts is not None:
            table_name, stored = parts
            index = self._table_index.get(table_name)
            if index is not None and stored < index.size:
                index[stored] = -1

    def _evict_lru(self) -> None:
        while True:
            stamp, slot = heapq.heappop(self._heap)
            if self._slot_key[slot] is None:
                continue  # slot freed since this entry was pushed
            current = int(self._slot_stamp[slot])
            if current != stamp:
                # Touched (or slot reused) since: refresh the lazy entry.
                heapq.heappush(self._heap, (current, slot))
                continue
            self._remove_slot(slot)
            return

    def _evict_until_fits(self, needed: int) -> None:
        while self._slot_of and self._used_bytes + needed > self.capacity_bytes:
            self._evict_lru()
            self.stats.evictions += 1

    def _charge_sequential(self, count: int, cost: float, total: float) -> float:
        """``count`` repetitions of ``total += cost`` as one accumulate."""
        increments = np.full(count + 1, cost, dtype=np.float64)
        increments[0] = total
        return float(np.add.accumulate(increments)[-1])

    # ------------------------------------------------------------ scalar API
    def get(self, key: CacheKey) -> Optional[bytes]:
        self.stats.cpu_seconds += self.lookup_cpu_seconds
        slot = self._slot_of.get(key)
        if slot is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._slot_stamp[slot] = self._next_stamp()
        row_len = int(self._slot_len[slot])
        return self._pools[row_len].data[int(self._slot_row[slot]), :row_len].tobytes()

    def put(self, key: CacheKey, value: bytes) -> bool:
        self.stats.cpu_seconds += self.insert_cpu_seconds
        size = self._entry_size(len(value))
        if size > self.capacity_bytes:
            self.stats.rejected_inserts += 1
            return False
        slot = self._slot_of.get(key)
        if slot is not None:
            self._remove_slot(slot)
        self._evict_until_fits(size)
        self._insert_entry(key, np.frombuffer(value, dtype=np.uint8))
        self.stats.inserts += 1
        return True

    def contains(self, key: CacheKey) -> bool:
        return key in self._slot_of

    def invalidate(self, key: CacheKey) -> bool:
        slot = self._slot_of.get(key)
        if slot is None:
            return False
        self._remove_slot(slot)
        return True

    def clear(self) -> None:
        self._slot_of.clear()
        self._slot_key = []
        self._slot_len = np.zeros(0, dtype=np.int64)
        self._slot_stamp = np.zeros(0, dtype=np.int64)
        self._slot_row = np.zeros(0, dtype=np.int64)
        self._free_slots = []
        self._pools = {}
        self._heap = []
        self._table_index = {}
        self._used_bytes = 0

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def item_count(self) -> int:
        return len(self._slot_of)

    def keys(self) -> Iterator[CacheKey]:
        """Iterate keys from least to most recently used (for inspection)."""
        slots = sorted(self._slot_of.values(), key=lambda slot: int(self._slot_stamp[slot]))
        return iter([self._slot_key[slot] for slot in slots])

    # ------------------------------------------------------------- batch API
    def probe_batch(
        self, table_name: str, stored_indices: np.ndarray, row_len: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Probe ``(table_name, stored)`` for a whole batch of stored rows.

        Equivalent to calling :meth:`get` once per row in input order — same
        hit/miss/CPU accounting, same final LRU order (for duplicate rows the
        last occurrence wins, as it would scalar-wise).  Returns a boolean hit
        mask aligned with the input and the hit rows as one
        ``(num_hits, row_len)`` uint8 matrix in input order.
        """
        stored = np.asarray(stored_indices, dtype=np.int64)
        count = int(stored.size)
        if count:
            self.stats.cpu_seconds = self._charge_sequential(
                count, self.lookup_cpu_seconds, self.stats.cpu_seconds
            )
        index = self._table_index.get(table_name)
        if index is None or count == 0:
            self.stats.misses += count
            return np.zeros(count, dtype=bool), np.empty((0, row_len), dtype=np.uint8)
        slots = np.full(count, -1, dtype=np.int64)
        in_range = (stored >= 0) & (stored < index.size)
        slots[in_range] = index[stored[in_range]]
        hit_mask = slots >= 0
        num_hits = int(np.count_nonzero(hit_mask))
        self.stats.hits += num_hits
        self.stats.misses += count - num_hits
        if num_hits == 0:
            return hit_mask, np.empty((0, row_len), dtype=np.uint8)
        hit_slots = slots[hit_mask]
        if not bool(np.all(self._slot_len[hit_slots] == row_len)):
            raise ValueError(
                f"table {table_name!r}: cached row length differs from "
                f"probe row_len {row_len}"
            )
        stamps = self._stamp + 1 + np.arange(num_hits, dtype=np.int64)
        self._stamp += num_hits
        # Fancy-index assignment applies in order, so a duplicate row keeps
        # its last (most recent) stamp — matching sequential move-to-end.
        self._slot_stamp[hit_slots] = stamps
        values = self._pools[row_len].data[self._slot_row[hit_slots], :row_len]
        return hit_mask, values

    def fill_batch(
        self, table_name: str, stored_indices: np.ndarray, values: np.ndarray
    ) -> None:
        """Insert a batch of rows; equivalent to per-row :meth:`put` calls.

        ``values`` is a ``(len(stored_indices), row_len)`` uint8 matrix.
        Eviction bookkeeping stays per-entry (fills are the miss path), but
        payload stores go straight matrix-row -> pool-row.
        """
        stored = np.asarray(stored_indices, dtype=np.int64)
        count = int(stored.size)
        if count == 0:
            return
        self.stats.cpu_seconds = self._charge_sequential(
            count, self.insert_cpu_seconds, self.stats.cpu_seconds
        )
        size = self._entry_size(int(values.shape[1]))
        if size > self.capacity_bytes:
            self.stats.rejected_inserts += count
            return
        for position in range(count):
            key = (table_name, int(stored[position]))
            slot = self._slot_of.get(key)
            if slot is not None:
                self._remove_slot(slot)
            self._evict_until_fits(size)
            self._insert_entry(key, values[position])
            self.stats.inserts += 1

    def contains_batch(self, table_name: str, stored_indices: np.ndarray) -> np.ndarray:
        """Vectorised membership test; no stats, no LRU effect."""
        stored = np.asarray(stored_indices, dtype=np.int64)
        mask = np.zeros(stored.size, dtype=bool)
        index = self._table_index.get(table_name)
        if index is None:
            return mask
        in_range = (stored >= 0) & (stored < index.size)
        mask[in_range] = index[stored[in_range]] >= 0
        return mask
