"""Endurance and model-update-interval modelling.

Section 3 of the paper notes that device endurance translates into a bound on
how frequently the embedding tables stored on SM can be refreshed:

    UpdateInterval = 365 * ModelSize / (pDWPD * SMCapacity)

where pDWPD is the physical drive writes per day rating.  Appendix A.3
discusses full vs incremental updates; the :class:`EnduranceModel` tracks
bytes written and exposes both the paper's formula and a rate-based view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.spec import DeviceSpec

SECONDS_PER_DAY = 86_400.0


def update_interval_days(model_size_bytes: float, dwpd: float, sm_capacity_bytes: float) -> float:
    """Minimum model update interval (days) allowed by endurance.

    Implements the paper's formula ``365 * ModelSize / (pDWPD * SMCapacity)``:
    the denominator is the total write volume per day the devices tolerate
    scaled by the drive's rated lifetime in years (365-day horizon), and the
    numerator is the bytes rewritten per full model update.
    """
    if model_size_bytes <= 0:
        raise ValueError(f"model_size_bytes must be positive: {model_size_bytes}")
    if dwpd <= 0:
        raise ValueError(f"dwpd must be positive: {dwpd}")
    if sm_capacity_bytes <= 0:
        raise ValueError(f"sm_capacity_bytes must be positive: {sm_capacity_bytes}")
    return 365.0 * model_size_bytes / (dwpd * sm_capacity_bytes)


@dataclass
class EnduranceModel:
    """Tracks write volume against a device's endurance budget."""

    spec: DeviceSpec
    lifetime_years: float = 5.0
    bytes_written: float = 0.0

    def __post_init__(self) -> None:
        if self.lifetime_years <= 0:
            raise ValueError(f"lifetime_years must be positive: {self.lifetime_years}")

    @property
    def lifetime_write_budget_bytes(self) -> float:
        """Total bytes the device may absorb over its rated lifetime."""
        days = self.lifetime_years * 365.0
        return self.spec.endurance_dwpd * self.spec.capacity_bytes * days

    def record_write(self, num_bytes: float) -> None:
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative: {num_bytes}")
        self.bytes_written += num_bytes

    @property
    def life_consumed_fraction(self) -> float:
        """Fraction of the endurance budget already consumed."""
        return self.bytes_written / self.lifetime_write_budget_bytes

    def min_update_interval_seconds(self, update_bytes: float) -> float:
        """Smallest sustainable interval between updates of ``update_bytes``.

        Writing ``update_bytes`` per interval, the device survives its rated
        lifetime iff ``update_bytes / interval <= dwpd * capacity / day``.
        """
        if update_bytes <= 0:
            raise ValueError(f"update_bytes must be positive: {update_bytes}")
        allowed_bytes_per_day = self.spec.endurance_dwpd * self.spec.capacity_bytes
        return update_bytes / allowed_bytes_per_day * SECONDS_PER_DAY

    def supports_update_interval(self, update_bytes: float, interval_seconds: float) -> bool:
        """Whether refreshing ``update_bytes`` every ``interval_seconds`` is sustainable."""
        if interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be positive: {interval_seconds}")
        return self.min_update_interval_seconds(update_bytes) <= interval_seconds
