"""Scatter-Gather List modelling of NVMe sub-block reads.

Section 4.1.1 of the paper enables arbitrary read granularity (down to a
DWORD) by combining an io_uring kernel extension with the NVMe SGL Bit Bucket
descriptor: the host describes which byte ranges of a logical block it wants,
and the rest of the block is discarded device-side instead of crossing the
PCIe bus.  This module models that descriptor and computes how many bytes
actually transfer with and without the feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.sim.units import BLOCK_SIZE

#: Smallest addressable granule of a sub-block read (a DWORD).
DWORD = 4


def _round_up(value: int, granule: int) -> int:
    return -(-value // granule) * granule


def _round_down(value: int, granule: int) -> int:
    return (value // granule) * granule


@dataclass(frozen=True)
class ScatterGatherEntry:
    """One desired byte range within a logical block."""

    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative: {self.offset}")
        if self.length <= 0:
            raise ValueError(f"length must be positive: {self.length}")
        if self.offset + self.length > BLOCK_SIZE:
            raise ValueError(
                f"range [{self.offset}, {self.offset + self.length}) exceeds the "
                f"{BLOCK_SIZE} B block"
            )

    def dword_aligned(self) -> Tuple[int, int]:
        """The DWORD-aligned (offset, length) that the device transfers."""
        start = _round_down(self.offset, DWORD)
        end = _round_up(self.offset + self.length, DWORD)
        return start, end - start


@dataclass
class ScatterGatherList:
    """The set of ranges of one block requested by a single IO."""

    entries: List[ScatterGatherEntry] = field(default_factory=list)

    def add(self, offset: int, length: int) -> None:
        self.entries.append(ScatterGatherEntry(offset=offset, length=length))

    def requested_bytes(self) -> int:
        """Bytes the application actually asked for."""
        return sum(entry.length for entry in self.entries)

    def transferred_bytes(self, sub_block_enabled: bool) -> int:
        """Bytes crossing the bus for this IO.

        With sub-block reads enabled only the DWORD-aligned union of the
        requested ranges transfers; otherwise the whole block does.
        """
        if not self.entries:
            raise ValueError("scatter-gather list has no entries")
        if not sub_block_enabled:
            return BLOCK_SIZE
        covered: List[Tuple[int, int]] = sorted(
            entry.dword_aligned() for entry in self.entries
        )
        merged: List[Tuple[int, int]] = []
        for start, length in covered:
            end = start + length
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return sum(end - start for start, end in merged)

    def bus_savings_fraction(self) -> float:
        """Fraction of bus bandwidth saved by sub-block reads.

        The paper reports around 75% savings for typical 128-256 B embedding
        rows read out of 4 KiB blocks.
        """
        full = self.transferred_bytes(sub_block_enabled=False)
        small = self.transferred_bytes(sub_block_enabled=True)
        return 1.0 - small / full
