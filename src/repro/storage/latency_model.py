"""Loaded latency model for SM devices.

Figure 3 of the paper shows how latency grows with offered IOPS and how Nand
Flash and Optane SSD differentiate: Optane stays in the tens of microseconds
until near its (much higher) IOPS ceiling, whereas Nand Flash latency climbs
steeply as load increases.  The model here combines the unloaded device
latency with an M/G/c-style queueing term so a closed analytic estimate is
available in addition to the discrete-event device simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.spec import DeviceSpec

#: Utilisation beyond which the analytic model clamps (the queue is unstable).
MAX_STABLE_UTILISATION = 0.99


@dataclass(frozen=True)
class LoadedLatencyModel:
    """Analytic loaded-latency estimate for a device spec.

    The expected latency of a read at offered load ``lambda`` (IOPS) is

    ``latency = base + queue_wait(rho) + transfer``

    where ``rho = lambda / max_iops`` and the queueing term follows the
    M/M/c waiting-time shape scaled by the per-IO service time.
    """

    spec: DeviceSpec

    def utilisation(self, offered_iops: float) -> float:
        """Offered load as a fraction of the device IOPS ceiling."""
        if offered_iops < 0:
            raise ValueError(f"offered_iops must be non-negative: {offered_iops}")
        return offered_iops / self.spec.max_read_iops

    def queue_wait(self, offered_iops: float) -> float:
        """Expected host-visible queueing delay at the given offered load."""
        rho = min(self.utilisation(offered_iops), MAX_STABLE_UTILISATION)
        if rho <= 0.0:
            return 0.0
        service_time = self.spec.service_time_per_io()
        # Erlang-C style waiting factor collapsed to its dominant rho/(1-rho)
        # behaviour.  The queueing exponent controls how early the curve
        # departs from the unloaded latency: Nand Flash (low exponent) climbs
        # at moderate load, Optane (high exponent) stays flat until close to
        # its IOPS ceiling -- the Figure 3 differentiation.
        waiting_factor = (rho ** self.spec.queueing_exponent) / (1.0 - rho)
        return service_time * waiting_factor

    def transfer_time(self, transfer_bytes: int) -> float:
        """Bus transfer time for a read of ``transfer_bytes``."""
        if transfer_bytes < 0:
            raise ValueError(f"transfer_bytes must be non-negative: {transfer_bytes}")
        return transfer_bytes / self.spec.read_bus_bandwidth

    def expected_latency(self, offered_iops: float, transfer_bytes: int | None = None) -> float:
        """Expected read latency at the given offered load.

        ``transfer_bytes`` defaults to the device's native access granularity.
        """
        if transfer_bytes is None:
            transfer_bytes = self.spec.access_granularity_bytes
        return (
            self.spec.base_read_latency
            + self.queue_wait(offered_iops)
            + self.transfer_time(transfer_bytes)
        )

    def max_iops_within_latency(self, latency_budget: float, transfer_bytes: int | None = None) -> float:
        """Largest offered IOPS whose expected latency stays within budget.

        Used when sizing deployments: the paper notes Nand Flash must be
        considerably under-utilised to keep latency low (section 5.2).
        """
        if latency_budget <= 0:
            raise ValueError(f"latency_budget must be positive: {latency_budget}")
        low, high = 0.0, self.spec.max_read_iops * MAX_STABLE_UTILISATION
        if self.expected_latency(low, transfer_bytes) > latency_budget:
            return 0.0
        if self.expected_latency(high, transfer_bytes) <= latency_budget:
            return high
        for _ in range(60):
            mid = (low + high) / 2.0
            if self.expected_latency(mid, transfer_bytes) <= latency_budget:
                low = mid
            else:
                high = mid
        return low
