"""io_uring-like asynchronous IO engine.

Section 4.1 of the paper chooses io_uring for its low per-IO overhead, limits
the number of outstanding requests per device to smooth bursts on Nand Flash,
and (Appendix A.1) observes that polling instead of IRQ completion improves
IOPS per core by ~50% but is hard to integrate with operator-based execution.
This module models those costs and constraints:

* per-IO CPU cost in IRQ vs polling mode,
* per-device and per-table outstanding-IO limits (the Tuning API),
* sub-block (SGL) transfers vs full-block reads with the extra host memcpy
  the full-block path requires.
"""

from __future__ import annotations

import enum
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sim.units import BLOCK_SIZE, MICROSECOND
from repro.storage.device import BatchReadScheduler, SimulatedDevice
from repro.storage.sgl import DWORD, ScatterGatherList
from repro.storage.block_layout import RowLocation, RowLocationBatch


class IOMode(str, enum.Enum):
    """Completion model for the IO engine."""

    IRQ = "irq"
    POLLING = "polling"


@dataclass(frozen=True)
class IOEngineConfig:
    """Tunable parameters of the IO engine (paper section 4.1 Tuning API).

    Attributes
    ----------
    mode:
        IRQ or polling completions.
    cpu_time_per_io_irq:
        Host CPU time consumed per IO with IRQ completions.
    polling_iops_per_core_gain:
        Relative IOPS/core improvement from polling (paper: ~50%).
    max_outstanding_per_device:
        Maximum IOs outstanding on one device; submissions beyond this wait
        for completions (smooths bursts, important for Nand Flash).
    max_outstanding_per_table:
        Maximum IOs outstanding for one embedding table.
    sub_block_reads:
        Whether the SGL bit-bucket sub-block read path is enabled.
    memcpy_bandwidth:
        Host memory bandwidth used to model the extra copy from a bounce
        buffer into the cache when sub-block reads are *not* available.
    """

    mode: IOMode = IOMode.IRQ
    cpu_time_per_io_irq: float = 5.0 * MICROSECOND
    polling_iops_per_core_gain: float = 0.5
    max_outstanding_per_device: int = 128
    max_outstanding_per_table: int = 64
    sub_block_reads: bool = True
    memcpy_bandwidth: float = 12.0e9

    def __post_init__(self) -> None:
        if self.cpu_time_per_io_irq <= 0:
            raise ValueError("cpu_time_per_io_irq must be positive")
        if self.polling_iops_per_core_gain < 0:
            raise ValueError("polling_iops_per_core_gain must be non-negative")
        if self.max_outstanding_per_device <= 0:
            raise ValueError("max_outstanding_per_device must be positive")
        if self.max_outstanding_per_table <= 0:
            raise ValueError("max_outstanding_per_table must be positive")
        if self.memcpy_bandwidth <= 0:
            raise ValueError("memcpy_bandwidth must be positive")

    @property
    def cpu_time_per_io(self) -> float:
        """Per-IO CPU time in the configured completion mode."""
        if self.mode is IOMode.POLLING:
            return self.cpu_time_per_io_irq / (1.0 + self.polling_iops_per_core_gain)
        return self.cpu_time_per_io_irq

    def iops_per_core(self, mode: Optional[IOMode] = None) -> float:
        """IOs per second a single core can drive in the given mode."""
        mode = mode if mode is not None else self.mode
        if mode is IOMode.POLLING:
            return (1.0 + self.polling_iops_per_core_gain) / self.cpu_time_per_io_irq
        return 1.0 / self.cpu_time_per_io_irq


@dataclass
class IORequest:
    """One row-read request against the SM tier."""

    table_name: str
    row_index: int
    location: RowLocation
    submit_time: float = 0.0
    completion_time: float = 0.0
    transferred_bytes: int = 0
    host_overhead: float = 0.0
    data: bytes = b""

    @property
    def latency(self) -> float:
        return self.completion_time - self.submit_time


@dataclass
class IORequestBatch:
    """Structure-of-arrays batch of row reads (single-entry SGLs).

    The array-native counterpart of a list of :class:`IORequest` objects:
    ``device_index``/``lba``/``offset``/``length`` are parallel int64 input
    arrays, and :meth:`IOEngine.submit_row_reads_batch` fills the
    ``submit_time``/``completion_time``/``transferred_bytes``/``host_overhead``
    output arrays in request order.
    """

    table_name: str
    device_index: np.ndarray
    lba: np.ndarray
    offset: np.ndarray
    length: np.ndarray
    submit_time: np.ndarray = field(default_factory=lambda: np.zeros(0))
    completion_time: np.ndarray = field(default_factory=lambda: np.zeros(0))
    transferred_bytes: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    host_overhead: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __post_init__(self) -> None:
        count = int(self.lba.size)
        if self.submit_time.size != count:
            self.submit_time = np.zeros(count, dtype=np.float64)
            self.completion_time = np.zeros(count, dtype=np.float64)
            self.transferred_bytes = np.zeros(count, dtype=np.int64)
            self.host_overhead = np.zeros(count, dtype=np.float64)

    def __len__(self) -> int:
        return int(self.lba.size)

    @classmethod
    def from_locations(cls, table_name: str, locations: RowLocationBatch) -> "IORequestBatch":
        """Build a batch from one extent's :class:`RowLocationBatch`."""
        count = len(locations)
        return cls(
            table_name=table_name,
            device_index=np.full(count, locations.device_index, dtype=np.int64),
            lba=np.asarray(locations.lba, dtype=np.int64),
            offset=np.asarray(locations.offset, dtype=np.int64),
            length=np.full(count, locations.length, dtype=np.int64),
        )


@dataclass
class IOEngineStats:
    """Cumulative counters for the IO engine."""

    ios_submitted: int = 0
    cpu_seconds: float = 0.0
    memcpy_seconds: float = 0.0
    bytes_requested: int = 0
    bytes_transferred: int = 0
    throttled_submissions: int = 0

    @property
    def read_amplification(self) -> float:
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_transferred / self.bytes_requested


class IOEngine:
    """Submits row reads to simulated devices with io_uring-like semantics."""

    def __init__(self, devices: Sequence[SimulatedDevice], config: Optional[IOEngineConfig] = None) -> None:
        if not devices:
            raise ValueError("IOEngine needs at least one device")
        self.devices = list(devices)
        self.config = config if config is not None else IOEngineConfig()
        self.stats = IOEngineStats()
        # Completion times of outstanding IOs, used to enforce queue-depth
        # limits without a full event loop.
        self._outstanding_per_device: Dict[int, List[float]] = {
            i: [] for i in range(len(self.devices))
        }
        self._outstanding_per_table: Dict[str, List[float]] = {}

    # --------------------------------------------------------------- helpers
    def _gate_submission(self, pool: List[float], limit: int, submit_time: float) -> float:
        """Delay a submission until the outstanding count drops below limit."""
        live = [t for t in pool if t > submit_time]
        pool[:] = live
        if len(live) < limit:
            return submit_time
        live.sort()
        gated_time = live[len(live) - limit]
        self.stats.throttled_submissions += 1
        pool[:] = [t for t in live if t > gated_time]
        return gated_time

    # ------------------------------------------------------------------ API
    def submit_row_reads(self, requests: Sequence[IORequest], start_time: float) -> List[IORequest]:
        """Submit a batch of row reads; fills completion metadata in place.

        The returned list is the same request objects, completed.  The caller
        obtains the batch completion time via ``max(r.completion_time ...)``.
        """
        completed: List[IORequest] = []
        for request in requests:
            device_index = request.location.device_index
            if not 0 <= device_index < len(self.devices):
                raise IndexError(
                    f"request for table {request.table_name!r} references device "
                    f"{device_index}, engine has {len(self.devices)}"
                )
            device = self.devices[device_index]

            submit_time = start_time
            submit_time = self._gate_submission(
                self._outstanding_per_device[device_index],
                self.config.max_outstanding_per_device,
                submit_time,
            )
            table_pool = self._outstanding_per_table.setdefault(request.table_name, [])
            submit_time = self._gate_submission(
                table_pool, self.config.max_outstanding_per_table, submit_time
            )

            sgl = ScatterGatherList()
            sgl.add(request.location.offset, request.location.length)
            data, completion, transferred = device.schedule_read(
                request.location.lba,
                sgl,
                arrival_time=submit_time,
                sub_block_enabled=self.config.sub_block_reads,
            )

            host_overhead = self.config.cpu_time_per_io
            if not self.config.sub_block_reads:
                # Full-block read lands in a bounce buffer; copying the wanted
                # row into the cache costs extra host memory bandwidth.
                memcpy_time = BLOCK_SIZE / self.config.memcpy_bandwidth
                host_overhead += memcpy_time
                self.stats.memcpy_seconds += memcpy_time
            completion += host_overhead

            request.submit_time = submit_time
            request.completion_time = completion
            request.transferred_bytes = transferred
            request.host_overhead = host_overhead
            request.data = data

            self._outstanding_per_device[device_index].append(completion)
            table_pool.append(completion)

            self.stats.ios_submitted += 1
            self.stats.cpu_seconds += self.config.cpu_time_per_io
            self.stats.bytes_requested += request.location.length
            self.stats.bytes_transferred += transferred
            completed.append(request)
        return completed

    def submit_row_reads_batch(self, batch: IORequestBatch, start_time: float) -> IORequestBatch:
        """Array-native :meth:`submit_row_reads`; fills the batch in place.

        Bit-identical to submitting the same requests one at a time: the
        per-device and per-table queue-depth gates are replayed over *sorted*
        outstanding-completion lists (pool order is semantically irrelevant —
        only the multiset of live completion times gates a submission — so
        each pool is sorted once on entry and kept sorted with ``insort``,
        turning the scalar path's per-call filter/sort passes into bisects),
        device scheduling steps through one :class:`BatchReadScheduler`
        session per device, and every float accumulation repeats the scalar
        left-to-right addition chain.  Transferred sizes (the DWORD-aligned
        single-entry SGL arithmetic) are precomputed vectorised.
        """
        count = len(batch)
        if count == 0:
            return batch
        if start_time < 0:
            raise ValueError(f"arrival_time must be non-negative: {start_time}")
        device_index = np.asarray(batch.device_index, dtype=np.int64)
        bad_device = (device_index < 0) | (device_index >= len(self.devices))
        if bool(bad_device.any()):
            raise IndexError(
                f"request for table {batch.table_name!r} references device "
                f"{int(device_index[bad_device][0])}, engine has {len(self.devices)}"
            )
        offset = np.asarray(batch.offset, dtype=np.int64)
        length = np.asarray(batch.length, dtype=np.int64)
        lba = np.asarray(batch.lba, dtype=np.int64)
        invalid = (offset < 0) | (length <= 0) | (offset + length > BLOCK_SIZE)
        if bool(invalid.any()):
            where = int(np.nonzero(invalid)[0][0])
            raise ValueError(
                f"range [{int(offset[where])}, {int(offset[where]) + int(length[where])}) "
                f"exceeds the {BLOCK_SIZE} B block"
            )

        sub_block = self.config.sub_block_reads
        transferred = np.empty(count, dtype=np.int64)
        schedulers: Dict[int, BatchReadScheduler] = {}
        pools = self._outstanding_per_device
        for raw_id in np.unique(device_index):
            device_id = int(raw_id)
            mask = device_index == device_id
            device = self.devices[device_id]
            device.check_lbas(lba[mask])
            if sub_block and device.spec.supports_sub_block:
                aligned_start = (offset[mask] // DWORD) * DWORD
                aligned_end = -(-(offset[mask] + length[mask]) // DWORD) * DWORD
                transferred[mask] = aligned_end - aligned_start
            else:
                transferred[mask] = BLOCK_SIZE
            pools[device_id].sort()
            schedulers[device_id] = device.schedule_read_batch(int(np.count_nonzero(mask)))
        table_pool = self._outstanding_per_table.setdefault(batch.table_name, [])
        table_pool.sort()

        device_ids = device_index.tolist()
        lengths = length.tolist()
        transfers = transferred.tolist()
        device_limit = self.config.max_outstanding_per_device
        table_limit = self.config.max_outstanding_per_table
        cpu_per_io = self.config.cpu_time_per_io
        memcpy_time = 0.0 if sub_block else BLOCK_SIZE / self.config.memcpy_bandwidth
        host_overhead = cpu_per_io if sub_block else cpu_per_io + memcpy_time
        cpu_seconds = self.stats.cpu_seconds
        memcpy_seconds = self.stats.memcpy_seconds
        throttled = 0
        submits: List[float] = []
        completions: List[float] = []

        for position in range(count):
            device_id = device_ids[position]
            pool = pools[device_id]
            submit = start_time
            if pool:
                cut = bisect_right(pool, submit)
                if cut:
                    del pool[:cut]
                if len(pool) >= device_limit:
                    submit = pool[len(pool) - device_limit]
                    throttled += 1
                    del pool[: bisect_right(pool, submit)]
            if table_pool:
                cut = bisect_right(table_pool, submit)
                if cut:
                    del table_pool[:cut]
                if len(table_pool) >= table_limit:
                    submit = table_pool[len(table_pool) - table_limit]
                    throttled += 1
                    del table_pool[: bisect_right(table_pool, submit)]
            completion = schedulers[device_id].schedule(
                submit, lengths[position], transfers[position]
            )
            cpu_seconds += cpu_per_io
            if memcpy_time:
                memcpy_seconds += memcpy_time
            completion = completion + host_overhead
            insort(pool, completion)
            insort(table_pool, completion)
            submits.append(submit)
            completions.append(completion)

        for scheduler in schedulers.values():
            scheduler.finish()
        batch.submit_time[:] = submits
        batch.completion_time[:] = completions
        batch.transferred_bytes[:] = transferred
        batch.host_overhead[:] = host_overhead
        self.stats.ios_submitted += count
        self.stats.cpu_seconds = cpu_seconds
        self.stats.memcpy_seconds = memcpy_seconds
        self.stats.bytes_requested += int(length.sum())
        self.stats.bytes_transferred += int(transferred.sum())
        self.stats.throttled_submissions += throttled
        return batch

    def batch_completion_time(self, requests: Sequence[IORequest]) -> float:
        """Completion time of the slowest request in a completed batch."""
        if not requests:
            raise ValueError("cannot compute completion time of an empty batch")
        return max(request.completion_time for request in requests)

    def reset_stats(self) -> None:
        """Zero the cumulative counters; outstanding-IO pools are untouched."""
        self.stats = IOEngineStats()

    def reset_queues(self) -> None:
        """Forget outstanding IOs (the queue-depth gating state); stats untouched."""
        for pool in self._outstanding_per_device.values():
            pool.clear()
        self._outstanding_per_table.clear()
