"""Slow-memory (SM) storage substrate.

Simulates the Storage Class Memory devices from Table 1 of the paper (PCIe
Nand Flash, PCIe Optane SSD, PCIe ZSSD, DIMM 3DXP, CXL 3DXP), an io_uring-like
asynchronous IO engine with queue-depth control and polling vs IRQ cost
accounting, sub-block (SGL bit-bucket) reads, table-to-block layout, and the
endurance / model-update-interval model.
"""

from repro.storage.spec import (
    DeviceSpec,
    Technology,
    TABLE1_SPECS,
    cxl_3dxp_spec,
    dimm_3dxp_spec,
    nand_flash_spec,
    optane_ssd_spec,
    zssd_spec,
)
from repro.storage.latency_model import LoadedLatencyModel
from repro.storage.device import BatchReadScheduler, DeviceStats, SimulatedDevice
from repro.storage.block_layout import BlockLayout, RowLocation, RowLocationBatch
from repro.storage.sgl import ScatterGatherEntry, ScatterGatherList
from repro.storage.io_engine import (
    IOEngine,
    IOEngineConfig,
    IOMode,
    IORequest,
    IORequestBatch,
)
from repro.storage.access import (
    AccessPath,
    BatchReadResult,
    DirectIOReader,
    MmapReader,
    ReadResult,
)
from repro.storage.endurance import EnduranceModel, update_interval_days

__all__ = [
    "DeviceSpec",
    "Technology",
    "TABLE1_SPECS",
    "nand_flash_spec",
    "optane_ssd_spec",
    "zssd_spec",
    "dimm_3dxp_spec",
    "cxl_3dxp_spec",
    "LoadedLatencyModel",
    "SimulatedDevice",
    "DeviceStats",
    "BatchReadScheduler",
    "BlockLayout",
    "RowLocation",
    "RowLocationBatch",
    "ScatterGatherList",
    "ScatterGatherEntry",
    "IOEngine",
    "IOEngineConfig",
    "IOMode",
    "IORequest",
    "IORequestBatch",
    "AccessPath",
    "BatchReadResult",
    "DirectIOReader",
    "MmapReader",
    "ReadResult",
    "EnduranceModel",
    "update_interval_days",
]
