"""Discrete-event simulation of a slow-memory (SM) block device.

The device stores real bytes (so embedding reads return real data the DLRM
layer can dequantise and pool) and models service time with a multi-channel
queue: each IO occupies one internal channel for ``1 / max_iops *
parallelism`` seconds, so aggregate throughput saturates at the spec's IOPS
ceiling while latency stays near the unloaded base latency until the device
approaches saturation -- the behaviour Figure 3 of the paper shows for Nand
Flash and Optane SSDs.

Block contents live in one contiguous uint8 ndarray (a slot per written
block, slot 0 reserved as the all-zero image of never-written blocks), so a
whole batch of row reads gathers with a single advanced-indexing operation
instead of a per-row ``bytes`` join.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.rng import make_rng
from repro.sim.units import BLOCK_SIZE
from repro.storage.latency_model import LoadedLatencyModel
from repro.storage.sgl import ScatterGatherList
from repro.storage.spec import DeviceSpec


@dataclass
class DeviceStats:
    """Cumulative counters for one simulated device."""

    reads: int = 0
    writes: int = 0
    bytes_requested: int = 0
    bytes_transferred: int = 0
    bytes_written: int = 0
    tail_events: int = 0
    busy_time: float = 0.0

    @property
    def read_amplification(self) -> float:
        """Bytes moved over the bus per byte the application asked for."""
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_transferred / self.bytes_requested

    def merge(self, other: "DeviceStats") -> "DeviceStats":
        self.reads += other.reads
        self.writes += other.writes
        self.bytes_requested += other.bytes_requested
        self.bytes_transferred += other.bytes_transferred
        self.bytes_written += other.bytes_written
        self.tail_events += other.tail_events
        self.busy_time += other.busy_time
        return self


class BatchReadScheduler:
    """Replays :meth:`SimulatedDevice.schedule_read` timing for one batch.

    Queue-depth gating in the IO engine makes batched submission inherently
    sequential -- the completion of request *i* feeds the outstanding-IO pools
    that gate request *i + 1* -- so the device side exposes a stepping session
    instead of a whole-array call: the engine opens one session per device in
    a batch, calls :meth:`schedule` once per IO in request order, and
    :meth:`finish` writes channel state and stats back exactly once.

    Bit-identical to the scalar path by construction:

    * channel assignment pops a ``(free_time, channel)`` heap whose
      lexicographic tie-break equals ``np.argmin``'s first-minimum rule;
    * the tail-penalty draws are one ``rng.random(count)`` call, which
      consumes the PCG64 stream exactly like ``count`` scalar ``random()``
      calls;
    * float accumulations (completion sum, ``busy_time``) replay the scalar
      left-to-right addition chains term for term.
    """

    __slots__ = (
        "_device",
        "_service",
        "_base",
        "_bus",
        "_heap",
        "_tails",
        "_tail_events",
        "_next_tail",
        "_reads",
        "_bytes_requested",
        "_bytes_transferred",
        "_busy",
        "_finished",
    )

    def __init__(self, device: "SimulatedDevice", count: int) -> None:
        spec = device.spec
        self._device = device
        self._service = spec.service_time_per_io()
        self._base = spec.base_read_latency
        self._bus = spec.read_bus_bandwidth
        probability = spec.tail_latency_probability
        self._tails: List[float] = []
        self._tail_events = 0
        if probability > 0.0 and count > 0:
            draws = device.rng.random(count)
            flags = draws < probability
            self._tail_events = int(np.count_nonzero(flags))
            tails = np.where(flags, spec.tail_latency, 0.0)
            self._tails = [float(value) for value in tails]
        self._next_tail = 0
        heap = [(float(free), channel) for channel, free in enumerate(device.channel_free)]
        heapq.heapify(heap)
        self._heap: List[Tuple[float, int]] = heap
        self._reads = 0
        self._bytes_requested = 0
        self._bytes_transferred = 0
        self._busy = device.stats.busy_time
        self._finished = False

    def schedule(self, arrival_time: float, requested: int, transferred: int) -> float:
        """Schedule one read IO; returns its device-side completion time."""
        free, channel = heapq.heappop(self._heap)
        start = arrival_time if arrival_time > free else free
        heapq.heappush(self._heap, (start + self._service, channel))
        transfer = transferred / self._bus
        tail = 0.0
        if self._tails:
            tail = self._tails[self._next_tail]
            self._next_tail += 1
        completion = start + self._service + self._base + transfer + tail
        self._reads += 1
        self._bytes_requested += requested
        self._bytes_transferred += transferred
        self._busy += self._service + transfer
        return completion

    def finish(self) -> None:
        """Write channel occupancy and stats back to the device."""
        if self._finished:
            return
        self._finished = True
        device = self._device
        for free, channel in self._heap:
            device.channel_free[channel] = free
        stats = device.stats
        stats.reads += self._reads
        stats.bytes_requested += self._bytes_requested
        stats.bytes_transferred += self._bytes_transferred
        stats.tail_events += self._tail_events
        stats.busy_time = self._busy


class SimulatedDevice:
    """A simulated NVMe (or CXL/DIMM) device holding real block data."""

    def __init__(self, spec: DeviceSpec, seed: int = 0) -> None:
        self.spec = spec
        self.stats = DeviceStats()
        self.latency_model = LoadedLatencyModel(spec)
        # Written blocks live as rows of one contiguous store; slot 0 is the
        # reserved all-zero image returned for never-written blocks.
        self._block_slots: Dict[int, int] = {}
        self._block_store: np.ndarray = np.zeros((1, BLOCK_SIZE), dtype=np.uint8)
        self._num_slots = 1
        self.channel_free: np.ndarray = np.zeros(spec.internal_parallelism, dtype=float)
        self._seed = seed
        self.rng = make_rng(seed, "device", spec.name)
        self._num_blocks = spec.capacity_bytes // BLOCK_SIZE

    # ------------------------------------------------------------------ data
    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self._num_blocks:
            raise IndexError(
                f"lba {lba} out of range for device {self.spec.name!r} "
                f"with {self._num_blocks} blocks"
            )

    def check_lbas(self, lbas: np.ndarray) -> None:
        """Vectorised :meth:`_check_lba` over an int64 array."""
        if lbas.size == 0:
            return
        bad = (lbas < 0) | (lbas >= self._num_blocks)
        if bool(bad.any()):
            self._check_lba(int(lbas[bad][0]))

    def _slot_for_write(self, lba: int) -> int:
        slot = self._block_slots.get(lba)
        if slot is not None:
            return slot
        if self._num_slots == self._block_store.shape[0]:
            grown = np.zeros((2 * self._num_slots, BLOCK_SIZE), dtype=np.uint8)
            grown[: self._num_slots] = self._block_store
            self._block_store = grown
        slot = self._num_slots
        self._num_slots += 1
        self._block_slots[lba] = slot
        return slot

    def write_block(self, lba: int, data: bytes, offset: int = 0) -> None:
        """Write ``data`` into a block (content only; use :meth:`write` for timing)."""
        self._check_lba(lba)
        if offset < 0 or offset + len(data) > BLOCK_SIZE:
            raise ValueError(
                f"write of {len(data)} B at offset {offset} exceeds the {BLOCK_SIZE} B block"
            )
        slot = self._slot_for_write(lba)
        self._block_store[slot, offset : offset + len(data)] = np.frombuffer(
            data, dtype=np.uint8
        )
        self.stats.bytes_written += len(data)
        self.stats.writes += 1

    def read_block_data(self, lba: int, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Return the stored bytes without any timing (used by tests)."""
        self._check_lba(lba)
        if length is None:
            length = BLOCK_SIZE - offset
        if offset < 0 or offset + length > BLOCK_SIZE:
            raise ValueError(
                f"read of {length} B at offset {offset} exceeds the {BLOCK_SIZE} B block"
            )
        slot = self._block_slots.get(lba, 0)
        return self._block_store[slot, offset : offset + length].tobytes()

    def read_rows_ndarray(self, lbas: np.ndarray, offsets: np.ndarray, length: int) -> np.ndarray:
        """Gather equal-length byte ranges as one ``(n, length)`` uint8 matrix.

        The batched counterpart of per-row :meth:`read_block_data` calls: one
        advanced-indexing gather from the contiguous block store, no timing.
        """
        lbas = np.asarray(lbas, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        self.check_lbas(lbas)
        if length < 0:
            raise ValueError(f"length must be non-negative: {length}")
        if lbas.size and bool(
            ((offsets < 0) | (offsets + length > BLOCK_SIZE)).any()
        ):
            bad = int(offsets[(offsets < 0) | (offsets + length > BLOCK_SIZE)][0])
            raise ValueError(
                f"read of {length} B at offset {bad} exceeds the {BLOCK_SIZE} B block"
            )
        unique_lbas, inverse = np.unique(lbas, return_inverse=True)
        slots_of_unique = np.fromiter(
            (self._block_slots.get(int(lba), 0) for lba in unique_lbas),
            dtype=np.int64,
            count=int(unique_lbas.size),
        )
        slots = slots_of_unique[inverse]
        columns = offsets[:, None] + np.arange(length, dtype=np.int64)[None, :]
        result: np.ndarray = self._block_store[slots[:, None], columns]
        return result

    # ---------------------------------------------------------------- timing
    def _tail_penalty(self) -> float:
        if self.spec.tail_latency_probability <= 0.0:
            return 0.0
        if self.rng.random() < self.spec.tail_latency_probability:
            self.stats.tail_events += 1
            return self.spec.tail_latency
        return 0.0

    def schedule_read(
        self,
        lba: int,
        sgl: ScatterGatherList,
        arrival_time: float,
        sub_block_enabled: bool = True,
    ) -> Tuple[bytes, float, int]:
        """Serve one read IO.

        Returns ``(data, completion_time, transferred_bytes)`` where ``data``
        contains only the requested byte ranges concatenated in order.
        """
        self._check_lba(lba)
        if arrival_time < 0:
            raise ValueError(f"arrival_time must be non-negative: {arrival_time}")
        transferred = sgl.transferred_bytes(
            sub_block_enabled=sub_block_enabled and self.spec.supports_sub_block
        )
        requested = sgl.requested_bytes()

        channel = int(np.argmin(self.channel_free))
        start = max(arrival_time, float(self.channel_free[channel]))
        service = self.spec.service_time_per_io()
        self.channel_free[channel] = start + service
        transfer = transferred / self.spec.read_bus_bandwidth
        completion = (
            start
            + service
            + self.spec.base_read_latency
            + transfer
            + self._tail_penalty()
        )

        pieces = [
            self.read_block_data(lba, entry.offset, entry.length) for entry in sgl.entries
        ]
        data = b"".join(pieces)

        self.stats.reads += 1
        self.stats.bytes_requested += requested
        self.stats.bytes_transferred += transferred
        self.stats.busy_time += service + transfer
        return data, completion, transferred

    def schedule_read_batch(self, count: int) -> BatchReadScheduler:
        """Open a :class:`BatchReadScheduler` session for ``count`` read IOs.

        Draws the session's tail-latency samples up front (one batched RNG
        call) and snapshots channel state; call :meth:`BatchReadScheduler.schedule`
        once per IO in request order, then :meth:`BatchReadScheduler.finish`.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        return BatchReadScheduler(self, count)

    def schedule_write(self, lba: int, data: bytes, arrival_time: float, offset: int = 0) -> float:
        """Write with timing; returns the completion time."""
        self.write_block(lba, data, offset=offset)
        write_time = len(data) / self.spec.write_bandwidth
        channel = int(np.argmin(self.channel_free))
        start = max(arrival_time, float(self.channel_free[channel]))
        self.channel_free[channel] = start + write_time
        self.stats.busy_time += write_time
        return start + write_time + self.spec.base_read_latency

    # ----------------------------------------------------------------- misc
    def expected_latency(self, offered_iops: float, transfer_bytes: Optional[int] = None) -> float:
        """Analytic loaded-latency estimate (see :class:`LoadedLatencyModel`)."""
        return self.latency_model.expected_latency(offered_iops, transfer_bytes)

    def outstanding_at(self, time: float) -> int:
        """Number of channels still busy at ``time`` (a proxy for queue depth)."""
        return int(np.sum(self.channel_free > time))

    def reset_stats(self) -> None:
        """Zero the cumulative counters; channel occupancy is untouched."""
        self.stats = DeviceStats()

    def reset_queues(self) -> None:
        """Free every internal channel (behavioural state); stats untouched."""
        self.channel_free[:] = 0.0

    def reset_rng(self) -> None:
        """Rewind the tail-latency stream to its as-constructed state.

        Backend reuse (:mod:`repro.runtime.runtimes`) replays fresh runs on an
        already-built device; without rewinding, the second run would draw
        from wherever the first left the PCG64 stream and tail events would
        land on different IOs.
        """
        self.rng = make_rng(self._seed, "device", self.spec.name)

    def __repr__(self) -> str:
        return f"SimulatedDevice({self.spec.name!r}, {self.spec.capacity_bytes} B)"
