"""Discrete-event simulation of a slow-memory (SM) block device.

The device stores real bytes (so embedding reads return real data the DLRM
layer can dequantise and pool) and models service time with a multi-channel
queue: each IO occupies one internal channel for ``1 / max_iops *
parallelism`` seconds, so aggregate throughput saturates at the spec's IOPS
ceiling while latency stays near the unloaded base latency until the device
approaches saturation -- the behaviour Figure 3 of the paper shows for Nand
Flash and Optane SSDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.sim.rng import make_rng
from repro.sim.units import BLOCK_SIZE
from repro.storage.latency_model import LoadedLatencyModel
from repro.storage.sgl import ScatterGatherList
from repro.storage.spec import DeviceSpec


@dataclass
class DeviceStats:
    """Cumulative counters for one simulated device."""

    reads: int = 0
    writes: int = 0
    bytes_requested: int = 0
    bytes_transferred: int = 0
    bytes_written: int = 0
    tail_events: int = 0
    busy_time: float = 0.0

    @property
    def read_amplification(self) -> float:
        """Bytes moved over the bus per byte the application asked for."""
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_transferred / self.bytes_requested

    def merge(self, other: "DeviceStats") -> "DeviceStats":
        self.reads += other.reads
        self.writes += other.writes
        self.bytes_requested += other.bytes_requested
        self.bytes_transferred += other.bytes_transferred
        self.bytes_written += other.bytes_written
        self.tail_events += other.tail_events
        self.busy_time += other.busy_time
        return self


class SimulatedDevice:
    """A simulated NVMe (or CXL/DIMM) device holding real block data."""

    def __init__(self, spec: DeviceSpec, seed: int = 0) -> None:
        self.spec = spec
        self.stats = DeviceStats()
        self.latency_model = LoadedLatencyModel(spec)
        self._blocks: Dict[int, bytearray] = {}
        self._channel_free = np.zeros(spec.internal_parallelism, dtype=float)
        self._rng = make_rng(seed, "device", spec.name)
        self._num_blocks = spec.capacity_bytes // BLOCK_SIZE

    # ------------------------------------------------------------------ data
    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self._num_blocks:
            raise IndexError(
                f"lba {lba} out of range for device {self.spec.name!r} "
                f"with {self._num_blocks} blocks"
            )

    def write_block(self, lba: int, data: bytes, offset: int = 0) -> None:
        """Write ``data`` into a block (content only; use :meth:`write` for timing)."""
        self._check_lba(lba)
        if offset < 0 or offset + len(data) > BLOCK_SIZE:
            raise ValueError(
                f"write of {len(data)} B at offset {offset} exceeds the {BLOCK_SIZE} B block"
            )
        block = self._blocks.setdefault(lba, bytearray(BLOCK_SIZE))
        block[offset : offset + len(data)] = data
        self.stats.bytes_written += len(data)
        self.stats.writes += 1

    def read_block_data(self, lba: int, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Return the stored bytes without any timing (used by tests)."""
        self._check_lba(lba)
        if length is None:
            length = BLOCK_SIZE - offset
        if offset < 0 or offset + length > BLOCK_SIZE:
            raise ValueError(
                f"read of {length} B at offset {offset} exceeds the {BLOCK_SIZE} B block"
            )
        block = self._blocks.get(lba)
        if block is None:
            return bytes(length)
        return bytes(block[offset : offset + length])

    # ---------------------------------------------------------------- timing
    def _tail_penalty(self) -> float:
        if self.spec.tail_latency_probability <= 0.0:
            return 0.0
        if self._rng.random() < self.spec.tail_latency_probability:
            self.stats.tail_events += 1
            return self.spec.tail_latency
        return 0.0

    def schedule_read(
        self,
        lba: int,
        sgl: ScatterGatherList,
        arrival_time: float,
        sub_block_enabled: bool = True,
    ) -> Tuple[bytes, float, int]:
        """Serve one read IO.

        Returns ``(data, completion_time, transferred_bytes)`` where ``data``
        contains only the requested byte ranges concatenated in order.
        """
        self._check_lba(lba)
        if arrival_time < 0:
            raise ValueError(f"arrival_time must be non-negative: {arrival_time}")
        transferred = sgl.transferred_bytes(
            sub_block_enabled=sub_block_enabled and self.spec.supports_sub_block
        )
        requested = sgl.requested_bytes()

        channel = int(np.argmin(self._channel_free))
        start = max(arrival_time, float(self._channel_free[channel]))
        service = self.spec.service_time_per_io()
        self._channel_free[channel] = start + service
        transfer = transferred / self.spec.read_bus_bandwidth
        completion = (
            start
            + service
            + self.spec.base_read_latency
            + transfer
            + self._tail_penalty()
        )

        pieces = [
            self.read_block_data(lba, entry.offset, entry.length) for entry in sgl.entries
        ]
        data = b"".join(pieces)

        self.stats.reads += 1
        self.stats.bytes_requested += requested
        self.stats.bytes_transferred += transferred
        self.stats.busy_time += service + transfer
        return data, completion, transferred

    def schedule_write(self, lba: int, data: bytes, arrival_time: float, offset: int = 0) -> float:
        """Write with timing; returns the completion time."""
        self.write_block(lba, data, offset=offset)
        write_time = len(data) / self.spec.write_bandwidth
        channel = int(np.argmin(self._channel_free))
        start = max(arrival_time, float(self._channel_free[channel]))
        self._channel_free[channel] = start + write_time
        self.stats.busy_time += write_time
        return start + write_time + self.spec.base_read_latency

    # ----------------------------------------------------------------- misc
    def expected_latency(self, offered_iops: float, transfer_bytes: Optional[int] = None) -> float:
        """Analytic loaded-latency estimate (see :class:`LoadedLatencyModel`)."""
        return self.latency_model.expected_latency(offered_iops, transfer_bytes)

    def outstanding_at(self, time: float) -> int:
        """Number of channels still busy at ``time`` (a proxy for queue depth)."""
        return int(np.sum(self._channel_free > time))

    def reset_stats(self) -> None:
        self.stats = DeviceStats()

    def __repr__(self) -> str:
        return f"SimulatedDevice({self.spec.name!r}, {self.spec.capacity_bytes} B)"
