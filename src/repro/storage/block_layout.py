"""Mapping from (table, row) coordinates to device blocks.

Embedding tables stored on SM are laid out row-major across 4 KiB logical
blocks.  Rows never straddle a block boundary (matching the deployment the
paper describes, where the quantised row of 128-256 B fits many times into a
block), so a single row read touches exactly one block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.sim.units import BLOCK_SIZE


@dataclass(frozen=True)
class RowLocation:
    """Physical location of one embedding row on a device."""

    device_index: int
    lba: int
    offset: int
    length: int

    @property
    def block_aligned_range(self) -> Tuple[int, int]:
        """The (start, end) byte range of the containing block."""
        start = self.lba * BLOCK_SIZE
        return start, start + BLOCK_SIZE


@dataclass(frozen=True)
class RowLocationBatch:
    """Physical locations of a batch of rows of one table extent.

    A table extent lives on exactly one device and every row shares a byte
    length, so only the per-row ``lba``/``offset`` vary; ``device_index`` and
    ``length`` stay scalars.
    """

    device_index: int
    lba: np.ndarray
    offset: np.ndarray
    length: int

    def __len__(self) -> int:
        return int(self.lba.size)


@dataclass(frozen=True)
class _TableExtent:
    """Contiguous block extent assigned to one table on one device."""

    table_name: str
    device_index: int
    first_lba: int
    num_blocks: int
    row_bytes: int
    num_rows: int
    rows_per_block: int


class BlockLayout:
    """Allocates block extents for tables across one or more devices.

    Tables are assigned to devices round-robin by remaining free capacity
    (largest-remaining-first), which is how the deployment stripes tables
    across the two SSDs of the HW-SS / HW-AN / HW-AO platforms.
    """

    def __init__(self, device_capacities: Iterable[int], block_size: int = BLOCK_SIZE) -> None:
        capacities = [int(c) for c in device_capacities]
        if not capacities:
            raise ValueError("BlockLayout needs at least one device capacity")
        if any(c <= 0 for c in capacities):
            raise ValueError(f"device capacities must be positive: {capacities}")
        if block_size <= 0:
            raise ValueError(f"block_size must be positive: {block_size}")
        self.block_size = block_size
        self._total_blocks = [c // block_size for c in capacities]
        self._next_lba = [0 for _ in capacities]
        self._extents: Dict[str, _TableExtent] = {}

    @property
    def num_devices(self) -> int:
        return len(self._total_blocks)

    def free_blocks(self, device_index: int) -> int:
        return self._total_blocks[device_index] - self._next_lba[device_index]

    def allocated_bytes(self, device_index: int) -> int:
        return self._next_lba[device_index] * self.block_size

    def add_table(self, table_name: str, num_rows: int, row_bytes: int) -> _TableExtent:
        """Allocate space for a table and return its extent.

        Raises ``ValueError`` if the table is already placed, a row does not
        fit in a block, or no device has enough contiguous space.
        """
        if table_name in self._extents:
            raise ValueError(f"table {table_name!r} is already placed on SM")
        if num_rows <= 0:
            raise ValueError(f"table {table_name!r} must have rows: {num_rows}")
        if row_bytes <= 0:
            raise ValueError(f"table {table_name!r} row_bytes must be positive: {row_bytes}")
        if row_bytes > self.block_size:
            raise ValueError(
                f"row of {row_bytes} B does not fit in a {self.block_size} B block; "
                "rows larger than a block are not supported"
            )
        rows_per_block = self.block_size // row_bytes
        num_blocks = -(-num_rows // rows_per_block)  # ceil division

        device_index = max(range(self.num_devices), key=self.free_blocks)
        if self.free_blocks(device_index) < num_blocks:
            raise ValueError(
                f"no device has {num_blocks} free blocks for table {table_name!r} "
                f"(best has {self.free_blocks(device_index)})"
            )
        extent = _TableExtent(
            table_name=table_name,
            device_index=device_index,
            first_lba=self._next_lba[device_index],
            num_blocks=num_blocks,
            row_bytes=row_bytes,
            num_rows=num_rows,
            rows_per_block=rows_per_block,
        )
        self._next_lba[device_index] += num_blocks
        self._extents[table_name] = extent
        return extent

    def has_table(self, table_name: str) -> bool:
        return table_name in self._extents

    def tables(self) -> List[str]:
        return list(self._extents)

    def extent(self, table_name: str) -> _TableExtent:
        if table_name not in self._extents:
            raise KeyError(f"table {table_name!r} has not been placed on SM")
        return self._extents[table_name]

    def locate(self, table_name: str, row_index: int) -> RowLocation:
        """Return the physical location of ``row_index`` of ``table_name``."""
        extent = self.extent(table_name)
        if not 0 <= row_index < extent.num_rows:
            raise IndexError(
                f"row {row_index} out of range for table {table_name!r} "
                f"with {extent.num_rows} rows"
            )
        block_offset, row_in_block = divmod(row_index, extent.rows_per_block)
        return RowLocation(
            device_index=extent.device_index,
            lba=extent.first_lba + block_offset,
            offset=row_in_block * extent.row_bytes,
            length=extent.row_bytes,
        )

    def locate_batch(self, table_name: str, row_indices: np.ndarray) -> RowLocationBatch:
        """Vectorised :meth:`locate` for a whole array of row indices."""
        extent = self.extent(table_name)
        rows = np.asarray(row_indices, dtype=np.int64)
        if rows.size:
            bad = (rows < 0) | (rows >= extent.num_rows)
            if bool(bad.any()):
                raise IndexError(
                    f"row {int(rows[bad][0])} out of range for table {table_name!r} "
                    f"with {extent.num_rows} rows"
                )
        block_offset, row_in_block = np.divmod(rows, extent.rows_per_block)
        return RowLocationBatch(
            device_index=extent.device_index,
            lba=extent.first_lba + block_offset,
            offset=row_in_block * extent.row_bytes,
            length=extent.row_bytes,
        )

    def total_allocated_bytes(self) -> int:
        return sum(self.allocated_bytes(i) for i in range(self.num_devices))
