"""Access paths from the application to SM data: DIRECT-IO vs mmap.

The paper evaluated ``mmap`` against ``DIRECT_IO`` with an application-level
cache and chose the latter: with small access granularity and little spatial
locality, mmap wastes fast-memory space on full 4 KiB pages and is roughly 3x
slower per access (section 4.1).  Both paths are modelled here so the
comparison can be reproduced.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.units import BLOCK_SIZE, GIB
from repro.storage.block_layout import BlockLayout
from repro.storage.io_engine import IOEngine, IORequest, IORequestBatch


@dataclass
class ReadResult:
    """Outcome of reading one embedding row through an access path."""

    table_name: str
    row_index: int
    data: bytes
    requested_bytes: int
    transferred_bytes: int
    fm_bytes_consumed: int
    completion_time: float
    latency: float


@dataclass
class BatchReadResult:
    """Array-native outcome of reading a batch of rows of one table.

    ``rows`` stacks the payloads as one ``(n, row_bytes)`` uint8 matrix in
    request order; ``completion_times`` is the per-row completion array.
    """

    rows: np.ndarray
    completion_times: np.ndarray


class AccessPath(abc.ABC):
    """Interface shared by the DIRECT-IO and mmap read paths."""

    #: Whether :meth:`read_rows_batch` is implemented.  Callers must check
    #: this *before* issuing any batch of a multi-group read so a mid-batch
    #: ``None`` can never leave the engine partially mutated.
    supports_batch_reads: bool = False

    @abc.abstractmethod
    def read_rows(
        self, table_name: str, row_indices: Sequence[int], start_time: float
    ) -> List[ReadResult]:
        """Read a set of rows of one table starting at ``start_time``."""

    def read_rows_batch(
        self, table_name: str, row_indices: np.ndarray, start_time: float
    ) -> Optional[BatchReadResult]:
        """Array-native :meth:`read_rows`; ``None`` when unsupported."""
        return None

    @abc.abstractmethod
    def fm_footprint_bytes(self) -> int:
        """Fast-memory bytes this access path consumes beyond the row cache."""

    def clear_cache(self) -> None:
        """Drop any access-path-resident cached state (page cache); no-op
        for paths that hold none."""
        return None

    def reset_stats(self) -> None:
        """Zero any access-path counters; no-op for paths that keep none."""
        return None


class DirectIOReader(AccessPath):
    """O_DIRECT row reads through the io_uring engine.

    Only the requested row bytes land in fast memory (when sub-block reads are
    enabled), and the application-level cache owns all FM space.
    """

    supports_batch_reads = True

    def __init__(self, engine: IOEngine, layout: BlockLayout) -> None:
        self.engine = engine
        self.layout = layout

    def read_rows(
        self, table_name: str, row_indices: Sequence[int], start_time: float
    ) -> List[ReadResult]:
        requests = [
            IORequest(
                table_name=table_name,
                row_index=row_index,
                location=self.layout.locate(table_name, row_index),
            )
            for row_index in row_indices
        ]
        completed = self.engine.submit_row_reads(requests, start_time)
        results: List[ReadResult] = []
        for request in completed:
            results.append(
                ReadResult(
                    table_name=table_name,
                    row_index=request.row_index,
                    data=request.data,
                    requested_bytes=request.location.length,
                    transferred_bytes=request.transferred_bytes,
                    fm_bytes_consumed=request.location.length,
                    completion_time=request.completion_time,
                    latency=request.completion_time - start_time,
                )
            )
        return results

    def read_rows_batch(
        self, table_name: str, row_indices: np.ndarray, start_time: float
    ) -> Optional[BatchReadResult]:
        """Whole-batch DIRECT-IO read: locate, submit and gather as arrays.

        Engine gating, device scheduling, RNG consumption and every stats
        counter are bit-identical to :meth:`read_rows` — the submission goes
        through :meth:`IOEngine.submit_row_reads_batch`, which replays the
        scalar semantics over structure-of-arrays state.  A table extent
        lives on exactly one device, so the payload gather is one
        advanced-indexing read from that device's block store.
        """
        rows = np.asarray(row_indices, dtype=np.int64)
        locations = self.layout.locate_batch(table_name, rows)
        batch = IORequestBatch.from_locations(table_name, locations)
        self.engine.submit_row_reads_batch(batch, start_time)
        device = self.engine.devices[locations.device_index]
        data = device.read_rows_ndarray(locations.lba, locations.offset, locations.length)
        return BatchReadResult(rows=data, completion_times=batch.completion_time)

    def fm_footprint_bytes(self) -> int:
        return 0


class MmapReader(AccessPath):
    """mmap-based access: whole pages are faulted into the page cache.

    Models the two drawbacks the paper observed: roughly ``latency_factor``
    (default 3x) higher access latency, and fast memory consumed by full
    4 KiB pages even though only 128-256 B of each page is useful.
    """

    def __init__(
        self,
        engine: IOEngine,
        layout: BlockLayout,
        latency_factor: float = 3.0,
        page_cache_capacity_bytes: int = GIB,
    ) -> None:
        if latency_factor < 1.0:
            raise ValueError(f"latency_factor must be >= 1.0: {latency_factor}")
        if page_cache_capacity_bytes <= 0:
            raise ValueError("page_cache_capacity_bytes must be positive")
        self.engine = engine
        self.layout = layout
        self.latency_factor = latency_factor
        self.page_cache_capacity_bytes = page_cache_capacity_bytes
        # Insertion-ordered page cache keyed by (device, lba), valued by the
        # completion time of the fault that brought the page in; python dicts
        # preserve insertion order so popping the first item gives FIFO
        # eviction, a reasonable stand-in for kernel page reclaim.
        self._page_cache: Dict[Tuple[int, int], float] = {}
        self.page_faults = 0
        self.page_hits = 0

    def _page_cache_pages(self) -> int:
        return self.page_cache_capacity_bytes // BLOCK_SIZE

    def read_rows(
        self, table_name: str, row_indices: Sequence[int], start_time: float
    ) -> List[ReadResult]:
        results: List[ReadResult] = []
        for row_index in row_indices:
            location = self.layout.locate(table_name, row_index)
            page_key = (location.device_index, location.lba)
            fault_done = self._page_cache.get(page_key)
            if fault_done is not None:
                self.page_hits += 1
                # The page is mapped; if its fault has not completed yet the
                # access stalls until it does (no new device IO either way).
                if fault_done <= start_time:
                    completion_time, access_latency = start_time, 0.0
                else:
                    completion_time, access_latency = fault_done, fault_done - start_time
                results.append(
                    ReadResult(
                        table_name=table_name,
                        row_index=row_index,
                        data=self.engine.devices[location.device_index].read_block_data(
                            location.lba, location.offset, location.length
                        ),
                        requested_bytes=location.length,
                        transferred_bytes=0,
                        fm_bytes_consumed=0,
                        completion_time=completion_time,
                        latency=access_latency,
                    )
                )
                continue

            self.page_faults += 1
            # A page fault always transfers the full block regardless of the
            # engine's sub-block setting.
            full_block_location = type(location)(
                device_index=location.device_index,
                lba=location.lba,
                offset=0,
                length=BLOCK_SIZE,
            )
            request = IORequest(
                table_name=table_name, row_index=row_index, location=full_block_location
            )
            completed = self.engine.submit_row_reads([request], start_time)[0]
            latency = (completed.completion_time - start_time) * self.latency_factor
            if len(self._page_cache) >= self._page_cache_pages():
                self._page_cache.pop(next(iter(self._page_cache)))
            self._page_cache[page_key] = start_time + latency

            data = self.engine.devices[location.device_index].read_block_data(
                location.lba, location.offset, location.length
            )
            results.append(
                ReadResult(
                    table_name=table_name,
                    row_index=row_index,
                    data=data,
                    requested_bytes=location.length,
                    transferred_bytes=BLOCK_SIZE,
                    fm_bytes_consumed=BLOCK_SIZE,
                    completion_time=start_time + latency,
                    latency=latency,
                )
            )
        return results

    def fm_footprint_bytes(self) -> int:
        return len(self._page_cache) * BLOCK_SIZE

    def clear_cache(self) -> None:
        """Unmap every cached page (fault completion times included)."""
        self._page_cache.clear()

    def reset_stats(self) -> None:
        self.page_faults = 0
        self.page_hits = 0
