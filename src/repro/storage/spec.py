"""Device specifications for the slow-memory tier (paper Table 1).

Each technology is characterised by the parameters the paper tracks: random
read IOPS, loaded access latency, endurance (drive writes per day), access
granularity, relative cost per GB versus DRAM, and sourcing.  The specs also
carry the power numbers used by the serving-level power model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict

from repro.sim.units import GB, KIB, MICROSECOND, TB


class Technology(str, enum.Enum):
    """SM technology families considered in the paper."""

    NAND_FLASH = "pcie_nand_flash"
    OPTANE_SSD = "pcie_3dxp_optane"
    ZSSD = "pcie_zssd"
    DIMM_3DXP = "dimm_3dxp"
    CXL_3DXP = "cxl_3dxp"
    DRAM = "dram"


@dataclass(frozen=True)
class DeviceSpec:
    """Static characteristics of a slow-memory device.

    Attributes
    ----------
    name:
        Human readable device name.
    technology:
        Technology family (Table 1 row).
    capacity_bytes:
        Usable capacity.
    max_read_iops:
        Random read IOPS ceiling at the native access granularity.
    base_read_latency:
        Unloaded single-IO read latency in seconds.
    access_granularity_bytes:
        Minimum transfer unit without the sub-block (SGL bit bucket) read
        support described in section 4.1.1 of the paper.
    supports_sub_block:
        Whether the device/driver combination supports arbitrary granularity
        reads down to a DWORD (4 bytes).  This is the kernel + NVMe SGL
        bit-bucket feature the paper contributes.
    endurance_dwpd:
        Drive writes per day the device sustains.
    relative_cost_per_gb:
        Cost per GB relative to DDR4 DRAM (DRAM == 1.0).
    sourcing:
        "multi" or "single" vendor availability.
    internal_parallelism:
        Number of independent internal channels used by the queueing model.
    queueing_exponent:
        Shape of the loaded-latency curve: lower values make latency climb at
        moderate utilisation (Nand Flash, whose controllers suffer long
        latency well before the IOPS ceiling), higher values keep latency
        flat until near saturation (Optane / CXL, Figure 3).
    max_queue_depth:
        Device-side queue depth; submissions beyond it queue in the host.
    tail_latency_probability / tail_latency:
        Occasional long-tail read latency (pronounced for Nand Flash, see the
        p99 discussion in section 5.1).
    read_bus_bandwidth:
        PCIe/CXL link bandwidth available for read transfers (bytes/second).
    write_bandwidth:
        Sustained sequential write bandwidth, relevant during model update.
    active_power_watts / idle_power_watts:
        Device power draw used by the fleet power model.
    """

    name: str
    technology: Technology
    capacity_bytes: int
    max_read_iops: float
    base_read_latency: float
    access_granularity_bytes: int
    supports_sub_block: bool
    endurance_dwpd: float
    relative_cost_per_gb: float
    sourcing: str
    internal_parallelism: int = 8
    queueing_exponent: float = 4.0
    max_queue_depth: int = 256
    tail_latency_probability: float = 0.0
    tail_latency: float = 0.0
    read_bus_bandwidth: float = 3.2e9
    write_bandwidth: float = 1.0e9
    active_power_watts: float = 10.0
    idle_power_watts: float = 4.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {self.capacity_bytes}")
        if self.max_read_iops <= 0:
            raise ValueError(f"max_read_iops must be positive: {self.max_read_iops}")
        if self.base_read_latency <= 0:
            raise ValueError(f"base_read_latency must be positive: {self.base_read_latency}")
        if self.access_granularity_bytes <= 0:
            raise ValueError(
                f"access_granularity_bytes must be positive: {self.access_granularity_bytes}"
            )
        if self.internal_parallelism <= 0:
            raise ValueError(
                f"internal_parallelism must be positive: {self.internal_parallelism}"
            )
        if self.queueing_exponent <= 0:
            raise ValueError(
                f"queueing_exponent must be positive: {self.queueing_exponent}"
            )
        if not 0.0 <= self.tail_latency_probability <= 1.0:
            raise ValueError(
                "tail_latency_probability must be a probability, got "
                f"{self.tail_latency_probability}"
            )

    @property
    def capacity_gb(self) -> float:
        return self.capacity_bytes / GB

    def with_capacity(self, capacity_bytes: int) -> "DeviceSpec":
        """Return a copy of the spec with a different capacity."""
        return replace(self, capacity_bytes=capacity_bytes)

    def service_time_per_io(self) -> float:
        """Per-IO occupancy of one internal channel so that aggregate
        throughput across channels equals ``max_read_iops``."""
        return self.internal_parallelism / self.max_read_iops


def nand_flash_spec(capacity_bytes: int = 2 * TB) -> DeviceSpec:
    """PCIe Nand Flash SSD (Table 1, row 1): 0.5M IOPS, O(100us), 4K blocks."""
    return DeviceSpec(
        name="PCIe Nand Flash",
        technology=Technology.NAND_FLASH,
        capacity_bytes=capacity_bytes,
        max_read_iops=0.5e6,
        base_read_latency=90 * MICROSECOND,
        access_granularity_bytes=4 * KIB,
        supports_sub_block=True,
        endurance_dwpd=5.0,
        relative_cost_per_gb=1.0 / 30.0,
        sourcing="multi",
        internal_parallelism=16,
        queueing_exponent=1.5,
        max_queue_depth=256,
        tail_latency_probability=2e-3,
        tail_latency=2e-3,
        read_bus_bandwidth=3.2e9,
        write_bandwidth=1.8e9,
        active_power_watts=12.0,
        idle_power_watts=5.0,
    )


def optane_ssd_spec(capacity_bytes: int = 400 * GB) -> DeviceSpec:
    """PCIe 3DXP Optane SSD (Table 1, row 2): 4M IOPS at 512B, O(10us)."""
    return DeviceSpec(
        name="PCIe 3DXP (Optane)",
        technology=Technology.OPTANE_SSD,
        capacity_bytes=capacity_bytes,
        max_read_iops=4.0e6,
        base_read_latency=10 * MICROSECOND,
        access_granularity_bytes=512,
        supports_sub_block=True,
        endurance_dwpd=100.0,
        relative_cost_per_gb=1.0 / 5.0,
        sourcing="single",
        internal_parallelism=32,
        queueing_exponent=8.0,
        max_queue_depth=1024,
        tail_latency_probability=1e-4,
        tail_latency=200 * MICROSECOND,
        read_bus_bandwidth=6.4e9,
        write_bandwidth=2.2e9,
        active_power_watts=14.0,
        idle_power_watts=5.0,
    )


def zssd_spec(capacity_bytes: int = 800 * GB) -> DeviceSpec:
    """PCIe ZSSD (Table 1, row 3): 1M IOPS, better latency than Nand Flash."""
    return DeviceSpec(
        name="PCIe ZSSD",
        technology=Technology.ZSSD,
        capacity_bytes=capacity_bytes,
        max_read_iops=1.0e6,
        base_read_latency=60 * MICROSECOND,
        access_granularity_bytes=4 * KIB,
        supports_sub_block=True,
        endurance_dwpd=5.0,
        relative_cost_per_gb=1.0 / 10.0,
        sourcing="single",
        internal_parallelism=16,
        queueing_exponent=2.0,
        max_queue_depth=256,
        tail_latency_probability=1e-3,
        tail_latency=1e-3,
        read_bus_bandwidth=3.2e9,
        write_bandwidth=1.8e9,
        active_power_watts=12.0,
        idle_power_watts=5.0,
    )


def dimm_3dxp_spec(capacity_bytes: int = 512 * GB) -> DeviceSpec:
    """DIMM 3DXP (Optane persistent memory): 64B granularity, sub-us latency.

    The paper notes it impacts the memory bandwidth available to the CPU; the
    serving model accounts for that with a host memory-bandwidth penalty.
    """
    return DeviceSpec(
        name="DIMM 3DXP (Optane)",
        technology=Technology.DIMM_3DXP,
        capacity_bytes=capacity_bytes,
        max_read_iops=20.0e6,
        base_read_latency=0.3 * MICROSECOND,
        access_granularity_bytes=64,
        supports_sub_block=True,
        endurance_dwpd=300.0,
        relative_cost_per_gb=1.0 / 3.0,
        sourcing="single",
        internal_parallelism=16,
        queueing_exponent=12.0,
        max_queue_depth=64,
        read_bus_bandwidth=8.0e9,
        write_bandwidth=2.0e9,
        active_power_watts=15.0,
        idle_power_watts=6.0,
    )


def cxl_3dxp_spec(capacity_bytes: int = 1 * TB) -> DeviceSpec:
    """CXL-attached 3DXP: >10M IOPS, ~0.5us latency, 64-128B granularity."""
    return DeviceSpec(
        name="CXL 3DXP",
        technology=Technology.CXL_3DXP,
        capacity_bytes=capacity_bytes,
        max_read_iops=12.0e6,
        base_read_latency=0.6 * MICROSECOND,
        access_granularity_bytes=64,
        supports_sub_block=True,
        endurance_dwpd=300.0,
        relative_cost_per_gb=1.0 / 3.0,
        sourcing="single",
        internal_parallelism=32,
        queueing_exponent=12.0,
        max_queue_depth=256,
        read_bus_bandwidth=25.0e9,
        write_bandwidth=8.0e9,
        active_power_watts=18.0,
        idle_power_watts=7.0,
    )


#: Table 1 of the paper, keyed by technology.
TABLE1_SPECS: Dict[Technology, DeviceSpec] = {
    Technology.NAND_FLASH: nand_flash_spec(),
    Technology.OPTANE_SSD: optane_ssd_spec(),
    Technology.ZSSD: zssd_spec(),
    Technology.DIMM_3DXP: dimm_3dxp_spec(),
    Technology.CXL_3DXP: cxl_3dxp_spec(),
}
