"""Built-in embedding backends registered with the API registry.

Four backends ship with the package:

* ``dram`` — the DRAM-only reference (:class:`~repro.dlrm.inference.InMemoryBackend`);
  every table lives in fast memory.  No options.
* ``sdm`` — the full Software Defined Memory stack
  (:class:`~repro.core.sdm.SoftwareDefinedMemory`); options are
  :class:`~repro.core.config.SDMConfig` fields, with enum-valued fields
  (``device_technology``, ``placement_policy``, ``access_path``) also
  accepted as strings for config-file friendliness.
* ``pooled`` — SDM tuned for the pooled-embedding-cache path of section 4.4:
  the pooled cache takes the FM budget and every request is eligible
  (``pooled_len_threshold=0``); useful for isolating Algorithm 1's effect.
* ``tiered`` — SDM across an explicit N-tier memory hierarchy
  (:mod:`repro.hierarchy`).  The ``tiers`` option is an ordered list
  (fastest first) of ``{technology, capacity, cache}`` entries or a
  ``"dram:64KiB,cxl:1MiB,nand:1GiB"`` string; per-tier hit rates and bytes
  served land in the :class:`~repro.api.results.ScenarioResult`.  The plain
  ``sdm`` backend also accepts ``tiers`` — ``tiered`` only differs in
  requiring a hierarchy (supplying a laptop-scale 3-tier default).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Dict, Mapping, Type

from repro.core.config import AccessPathKind, SDMConfig
from repro.core.placement import PlacementPolicy
from repro.core.sdm import SoftwareDefinedMemory
from repro.dlrm.inference import ComputeSpec, EmbeddingBackend, InMemoryBackend
from repro.dlrm.model import DLRMModel
from repro.sim.units import MIB
from repro.storage.spec import Technology

from repro.api.registry import register_backend

_ENUM_FIELDS: Dict[str, Type[enum.Enum]] = {
    "device_technology": Technology,
    "placement_policy": PlacementPolicy,
    "access_path": AccessPathKind,
}


def _coerce_enum(field_name: str, enum_type: Type[enum.Enum], value: Any) -> enum.Enum:
    """Accept an enum member, its value, or its (case-insensitive) name."""
    if isinstance(value, enum_type):
        return value
    if isinstance(value, str):
        try:
            return enum_type(value)
        except ValueError:
            pass
        try:
            return enum_type[value.upper()]
        except KeyError:
            pass
    raise ValueError(
        f"{field_name}={value!r} is not a valid {enum_type.__name__}; "
        f"choices: {[member.value for member in enum_type]}"
    )


def sdm_config_from_options(options: Mapping[str, Any], **defaults: Any) -> SDMConfig:
    """Build an :class:`SDMConfig` from loosely-typed option mappings.

    ``defaults`` seed the config and are overridden by ``options``; unknown
    keys raise with the list of valid fields rather than a bare TypeError.
    """
    valid = {f.name for f in dataclasses.fields(SDMConfig)}
    unknown = set(options) - valid
    if unknown:
        raise ValueError(
            f"unknown SDM options {sorted(unknown)}; valid options: {sorted(valid)}"
        )
    merged: Dict[str, Any] = dict(defaults)
    merged.update(options)
    for field_name, enum_type in _ENUM_FIELDS.items():
        if field_name in merged:
            merged[field_name] = _coerce_enum(field_name, enum_type, merged[field_name])
    if "pinned_fm_tables" in merged:
        merged["pinned_fm_tables"] = tuple(merged["pinned_fm_tables"])
    return SDMConfig(**merged)


@register_backend("dram", description="DRAM-only reference (every table in fast memory)")
def _build_dram(model: DLRMModel, compute: ComputeSpec, **options) -> EmbeddingBackend:
    if options:
        raise ValueError(f"the 'dram' backend takes no options, got {sorted(options)}")
    return InMemoryBackend(model.tables, compute)


@register_backend("sdm", description="Software Defined Memory stack (row + pooled caches)")
def _build_sdm(model: DLRMModel, compute: ComputeSpec, **options) -> EmbeddingBackend:
    return SoftwareDefinedMemory(model, sdm_config_from_options(options), compute=compute)


@register_backend("pooled", description="SDM serving through the pooled embedding cache (Alg. 1)")
def _build_pooled(model: DLRMModel, compute: ComputeSpec, **options) -> EmbeddingBackend:
    config = sdm_config_from_options(
        options,
        pooled_cache_enabled=True,
        pooled_len_threshold=0,
        pooled_cache_capacity_bytes=8 * MIB,
        row_cache_capacity_bytes=1 * MIB,
    )
    if not config.pooled_cache_enabled:
        raise ValueError("the 'pooled' backend requires pooled_cache_enabled=True")
    return SoftwareDefinedMemory(model, config, compute=compute)


#: Laptop-scale default hierarchy for the ``tiered`` backend: a small DRAM
#: budget, a CXL middle tier sized for a few hot tables, NAND for the rest.
DEFAULT_TIERS = "dram:64KiB,cxl:1MiB:64KiB,nand:1GiB"


@register_backend("tiered", description="SDM across an N-tier memory hierarchy (repro.hierarchy)")
def _build_tiered(model: DLRMModel, compute: ComputeSpec, **options) -> EmbeddingBackend:
    config = sdm_config_from_options(options, tiers=DEFAULT_TIERS)
    if config.tiers is None:
        raise ValueError(
            "the 'tiered' backend needs a non-empty 'tiers' option, e.g. "
            f"tiers={DEFAULT_TIERS!r}"
        )
    return SoftwareDefinedMemory(model, config, compute=compute)
