"""Declarative scenario descriptions for the unified experiment API.

A :class:`ScenarioSpec` is a frozen, serialisable description of one
end-to-end experiment: which paper model to materialise (and at what scale),
which embedding backend serves the user tables, what the synthetic query
stream looks like, and how the host serves it (concurrency, warmup, SLO,
optional fleet/power accounting).  Everything a :class:`~repro.api.session.Session`
builds is derived from the spec, so specs round-trip through ``to_dict`` /
``from_dict`` and can live in JSON config files.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.dlrm.model_config import ALL_MODEL_SPECS, ModelSpec, figure1_model_spec
from repro.serving.latency import LatencyTarget
from repro.sim.units import MILLISECOND
from repro.workload.generator import ARRIVAL_PROCESSES, WorkloadConfig


def model_spec_by_name(name: str) -> ModelSpec:
    """Resolve a paper model name (``M1``/``M2``/``M3``/``fig1``) to its spec."""
    if name in ALL_MODEL_SPECS:
        return ALL_MODEL_SPECS[name]
    if name.lower() in ("fig1", "figure1"):
        return figure1_model_spec()
    known = sorted(ALL_MODEL_SPECS) + ["fig1"]
    raise ValueError(f"unknown model spec {name!r}; known models: {known}")


@dataclass(frozen=True)
class ModelChoice:
    """Which paper model to materialise, and at what laptop scale."""

    spec: str = "M1"
    max_tables_per_group: int = 4
    max_rows_per_table: int = 2048
    item_batch: Optional[int] = 4
    seed: int = 0

    def __post_init__(self) -> None:
        model_spec_by_name(self.spec)  # fail fast on unknown names


@dataclass(frozen=True)
class BackendChoice:
    """Which registered embedding backend serves the user tables.

    ``options`` are passed verbatim to the backend factory registered under
    ``name`` (see :mod:`repro.api.registry`); for the built-in ``sdm`` and
    ``pooled`` backends they are :class:`~repro.core.config.SDMConfig` fields.
    """

    name: str = "sdm"
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", dict(self.options))


@dataclass(frozen=True)
class WorkloadChoice:
    """The synthetic query stream served by the scenario."""

    num_queries: int = 200
    item_batch: Optional[int] = None  # None: inherit the model's item batch
    num_users: int = 200
    user_zipf_alpha: float = 1.1
    sequence_repeat_probability: float = 0.05
    sequence_pool_size: int = 256
    user_reuse_probability: float = 0.8
    pooling_factor_jitter: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_queries <= 0:
            raise ValueError(f"num_queries must be positive: {self.num_queries}")

    def to_workload_config(self, model_item_batch: int) -> WorkloadConfig:
        return WorkloadConfig(
            item_batch=self.item_batch if self.item_batch is not None else model_item_batch,
            num_users=self.num_users,
            user_zipf_alpha=self.user_zipf_alpha,
            sequence_repeat_probability=self.sequence_repeat_probability,
            sequence_pool_size=self.sequence_pool_size,
            user_reuse_probability=self.user_reuse_probability,
            pooling_factor_jitter=self.pooling_factor_jitter,
        )


@dataclass(frozen=True)
class TrafficSpec:
    """How queries arrive at the host: closed loop, or an open-loop process.

    ``mode="closed"`` (the default) reproduces the seed behaviour: each of
    the host's serving streams issues its next query the instant the previous
    one completes, so the host is always exactly saturated.  ``mode="open"``
    drives the event-driven engine instead: queries arrive on their own
    schedule (``arrival`` = ``poisson``, ``constant`` or ``trace``) at
    ``offered_qps``, wait in a bounded admission queue of ``queue_depth``
    slots, and are shed when the queue is full — which is what makes
    latency-vs-offered-load curves and saturation knees measurable.
    ``serve_batch`` sets how many waiting queries a freed serving stream
    drains per dispatch (1 — the default — is the classic behaviour).
    """

    mode: str = "closed"
    arrival: str = "poisson"
    offered_qps: Optional[float] = None
    queue_depth: int = 64
    serve_batch: int = 1
    trace: Tuple[float, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"traffic mode must be 'closed' or 'open': {self.mode!r}")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; known: "
                f"{list(ARRIVAL_PROCESSES)}"
            )
        if self.queue_depth < 0:
            raise ValueError(f"queue_depth must be non-negative: {self.queue_depth}")
        if self.serve_batch < 1:
            raise ValueError(f"serve_batch must be positive: {self.serve_batch}")
        object.__setattr__(self, "trace", tuple(float(t) for t in self.trace))
        if self.mode == "open":
            if self.arrival == "trace":
                if not self.trace:
                    raise ValueError("open-loop trace arrivals need a non-empty trace")
            elif self.offered_qps is None or self.offered_qps <= 0:
                raise ValueError(
                    f"open-loop {self.arrival} arrivals need a positive "
                    f"offered_qps: {self.offered_qps}"
                )


@dataclass(frozen=True)
class ServingChoice:
    """Host-level serving parameters, the SLO, and optional fleet accounting.

    The fleet fields are optional: when ``platform`` and ``fleet_qps`` are
    set, :meth:`Session.run` attaches a power summary (Equation 7 plus the
    :class:`~repro.serving.power.PowerModel`) to the result, comparing against
    ``baseline_platform`` when given.
    """

    concurrency: int = 2
    warmup_queries: int = 40
    reset_stats_after_warmup: bool = False
    store_results: bool = True
    slo_percentile: float = 95.0
    slo_budget_ms: float = 25.0

    platform: Optional[str] = None
    qps_per_host: Optional[float] = None
    helper_platform: Optional[str] = None
    helper_hosts_per_host: float = 0.0
    baseline_platform: Optional[str] = None
    baseline_qps_per_host: Optional[float] = None
    baseline_helper_platform: Optional[str] = None
    baseline_helper_hosts_per_host: float = 0.0
    fleet_qps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.concurrency <= 0:
            raise ValueError(f"concurrency must be positive: {self.concurrency}")
        if self.warmup_queries < 0:
            raise ValueError(f"warmup_queries must be non-negative: {self.warmup_queries}")
        if self.slo_budget_ms <= 0:
            raise ValueError(f"slo_budget_ms must be positive: {self.slo_budget_ms}")

    def latency_target(self) -> LatencyTarget:
        return LatencyTarget(
            percentile=self.slo_percentile,
            budget_seconds=self.slo_budget_ms * MILLISECOND,
        )


@dataclass(frozen=True)
class TelemetrySpec:
    """Observability knobs (:mod:`repro.obs`); everything off by default.

    ``trace`` records per-query spans on the simulated clock and attaches a
    Chrome-trace-event export to the result.  ``sample_interval`` (simulated
    seconds, ``0`` disables) snapshots tier/cache/IO/admission counters into
    :attr:`~repro.api.results.ScenarioResult.timeline` window deltas.
    ``wall_profiling`` additionally records *host* wall-clock spans of the
    serve core on a separate trace track — it never feeds back into
    simulated time, results or spec hashes.  With every knob off (the
    default) the serving path is bit-identical to a build without
    telemetry, which the parity tests pin.
    """

    trace: bool = False
    sample_interval: float = 0.0
    wall_profiling: bool = False
    max_trace_events: int = 1_000_000

    def __post_init__(self) -> None:
        if self.sample_interval < 0:
            raise ValueError(
                f"sample_interval must be non-negative: {self.sample_interval}"
            )
        if self.max_trace_events < 1:
            raise ValueError(
                f"max_trace_events must be positive: {self.max_trace_events}"
            )

    @property
    def enabled(self) -> bool:
        return self.trace or self.wall_profiling or self.sample_interval > 0


_SECTION_TYPES = {
    "model": ModelChoice,
    "backend": BackendChoice,
    "workload": WorkloadChoice,
    "traffic": TrafficSpec,
    "serving": ServingChoice,
    "telemetry": TelemetrySpec,
}

#: Traffic parameters the closed loop never reads: varying one of these with
#: closed-loop traffic silently produces identical experiments, so sweeps and
#: campaign grids over them reject closed-loop base specs up front.
OPEN_LOOP_ONLY_PARAMS = frozenset(
    {
        "traffic.offered_qps",
        "traffic.queue_depth",
        "traffic.serve_batch",
        "traffic.arrival",
        "traffic.trace",
    }
)


def section_fields(section: str) -> Tuple[str, ...]:
    """The field names of one spec section (``"serving"`` → its dataclass fields)."""
    if section not in _SECTION_TYPES:
        raise ValueError(
            f"unknown spec section {section!r}; sections: {sorted(_SECTION_TYPES)}"
        )
    return tuple(f.name for f in dataclasses.fields(_SECTION_TYPES[section]))


def iter_spec_paths() -> Iterator[str]:
    """Every closed-form dotted path :meth:`ScenarioSpec.replace` accepts.

    Yields ``"name"``, each section name, and every ``section.field`` pair.
    ``backend.options.*`` (and the ``tiers....`` shorthand into it) is
    open-ended — backend factories define their own option names — so those
    paths validate structurally via :func:`spec_path_error` instead of being
    enumerable here.
    """
    yield "name"
    for section in _SECTION_TYPES:
        yield section
        for name in section_fields(section):
            yield f"{section}.{name}"


def spec_path_error(path: str) -> Optional[str]:
    """Statically validate a dotted spec path against the schema.

    Returns ``None`` when ``path`` is a structurally valid
    :meth:`ScenarioSpec.replace` / :meth:`Session.sweep` / campaign-grid
    address, and a human-readable error message otherwise.  This is the
    introspection hook the ``repro lint`` SPEC001 rule (and any external
    tooling) checks spec-path strings against without building a spec.

    Backend options below ``backend.options`` are free-form (each backend
    factory defines its own), so only their *structured* sub-schemas — the
    ``tiers`` list — are validated in depth.
    """
    parts = path.split(".")
    if any(not part for part in parts):
        return f"spec path {path!r} has an empty segment"
    if parts[0] == "tiers":
        parts = ["backend", "options"] + parts
    if parts == ["name"]:
        return None
    if parts[0] not in _SECTION_TYPES:
        return (
            f"unknown spec path {path!r}; top-level keys: "
            f"{['name', 'tiers'] + sorted(_SECTION_TYPES)}"
        )
    if len(parts) == 1:
        return None
    section_type = _SECTION_TYPES[parts[0]]
    fields = set(section_fields(parts[0]))
    if parts[1] not in fields:
        return (
            f"{section_type.__name__} has no field {parts[1]!r} "
            f"(path {path!r}); valid fields: {sorted(fields)}"
        )
    if parts[0] == "backend" and parts[1] == "options":
        if len(parts) >= 4 and parts[2] == "tiers":
            rest = parts[3:]
            try:
                int(rest[0])
            except ValueError:
                return (
                    f"spec path {path!r}: expected a tier index after 'tiers', "
                    f"got {rest[0]!r}"
                )
            if len(rest) >= 2:
                from repro.hierarchy.tier import TIER_ENTRY_KEYS

                if rest[1] not in TIER_ENTRY_KEYS:
                    return (
                        f"spec path {path!r}: unknown tier key {rest[1]!r}; "
                        f"valid keys: {sorted(TIER_ENTRY_KEYS)}"
                    )
                if len(rest) > 2:
                    return (
                        f"spec path {path!r}: tier key {rest[1]!r} is a scalar "
                        f"and takes no sub-path"
                    )
        return None
    if len(parts) > 2:
        return (
            f"spec path {path!r} descends below {parts[0]}.{parts[1]}, "
            f"which is a scalar field"
        )
    return None


def coord_label(value: Any) -> Any:
    """A compact, JSON-able label for one swept spec value.

    Scalars pass through; spec sections label as their ``name`` field when
    they have one (``BackendChoice(name="dram")`` → ``"dram"``); anything
    else falls back to ``str``.  Shared by campaign point naming, stored
    coordinates and table rendering so the three never drift apart.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    return str(value)


def _nested_replace(container: Any, parts: Sequence[str], value: Any, path: str) -> Any:
    """Set a nested position inside a list/mapping option, copying each level.

    Lists index by integer part (``tiers.1``), mappings by key
    (``tiers.1.capacity``).  The containers along the path are shallow-copied
    so specs stay value-semantic.
    """
    part = parts[0]
    if isinstance(container, (list, tuple)):
        try:
            index = int(part)
        except ValueError:
            raise ValueError(
                f"path {path!r}: expected a list index at {part!r}"
            ) from None
        if not 0 <= index < len(container):
            raise ValueError(
                f"path {path!r}: index {index} out of range for a list of "
                f"{len(container)} entries"
            )
        items = list(container)
        items[index] = (
            value
            if len(parts) == 1
            else _nested_replace(items[index], parts[1:], value, path)
        )
        return items
    if isinstance(container, Mapping):
        data = dict(container)
        if len(parts) == 1:
            data[part] = value
            return data
        if part not in data:
            raise ValueError(f"path {path!r}: no key {part!r} in {sorted(data)}")
        data[part] = _nested_replace(data[part], parts[1:], value, path)
        return data
    raise ValueError(
        f"path {path!r}: cannot descend into {type(container).__name__} at {part!r}"
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described experiment: model + backend + workload + traffic + serving."""

    name: str = "scenario"
    model: ModelChoice = field(default_factory=ModelChoice)
    backend: BackendChoice = field(default_factory=BackendChoice)
    workload: WorkloadChoice = field(default_factory=WorkloadChoice)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    serving: ServingChoice = field(default_factory=ServingChoice)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)

    # ------------------------------------------------------------- serialise
    def to_dict(self) -> Dict[str, Any]:
        """A plain, JSON-serialisable dict that round-trips via ``from_dict``."""
        traffic = dataclasses.asdict(self.traffic)
        traffic["trace"] = list(traffic["trace"])  # tuples do not survive JSON
        return {
            "name": self.name,
            "model": dataclasses.asdict(self.model),
            "backend": {"name": self.backend.name, "options": dict(self.backend.options)},
            "workload": dataclasses.asdict(self.workload),
            "traffic": traffic,
            "serving": dataclasses.asdict(self.serving),
            "telemetry": dataclasses.asdict(self.telemetry),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output, rejecting unknown keys."""
        unknown = set(data) - ({"name"} | set(_SECTION_TYPES))
        if unknown:
            raise ValueError(f"unknown ScenarioSpec keys: {sorted(unknown)}")
        kwargs: Dict[str, Any] = {"name": data.get("name", "scenario")}
        for section, section_type in _SECTION_TYPES.items():
            raw = data.get(section, {})
            if not isinstance(raw, Mapping):
                raise ValueError(
                    f"{section!r} must be a mapping of {section_type.__name__} "
                    f"fields, got {type(raw).__name__}"
                )
            field_names = {f.name for f in dataclasses.fields(section_type)}
            bad = set(raw) - field_names
            if bad:
                raise ValueError(
                    f"unknown {section_type.__name__} keys in {section!r}: {sorted(bad)}"
                )
            kwargs[section] = section_type(**raw)
        return cls(**kwargs)

    # --------------------------------------------------------------- hashing
    @staticmethod
    def _canonical_encode(payload: Any) -> str:
        """Byte-stable JSON: sorted keys, fixed separators, ``str`` fallback."""
        return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)

    def canonical_json(self) -> str:
        """A byte-stable JSON encoding of :meth:`to_dict`.

        Keys are sorted and separators fixed, so the same logical spec always
        encodes to the same string — across processes, interpreter runs and
        :meth:`from_dict` round trips.  Non-JSON option values (enums that are
        not ``str`` subclasses, paths, …) fall back to ``str(value)``, which
        matches how they re-enter the spec from a JSON config file.
        """
        return self._canonical_encode(self.to_dict())

    def spec_hash(self) -> str:
        """Content-address of this spec: SHA-256 of :meth:`canonical_json`.

        The experiment store (:mod:`repro.runtime.store`) keys completed runs
        by this hash, so its stability across processes is load-bearing.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def backend_hash(self) -> str:
        """Content-address of the *built* serving stack this spec implies.

        Covers exactly the sections :class:`~repro.api.session.Session`
        consumes when materialising the model and backend — ``model`` and
        ``backend`` (the latter includes the tier hierarchy, which lives in
        ``backend.options.tiers``).  Workload, traffic, serving and telemetry
        only shape *how* the built stack is driven, so two points of a
        campaign that differ only along those axes share a ``backend_hash``
        and can reuse one worker-resident backend (see
        :mod:`repro.runtime.runtimes`) instead of rebuilding it.
        """
        data = self.to_dict()
        payload = {section: data[section] for section in ("model", "backend")}
        return hashlib.sha256(
            self._canonical_encode(payload).encode("utf-8")
        ).hexdigest()

    # -------------------------------------------------------------- override
    def replace(self, path: str, value: Any) -> "ScenarioSpec":
        """Return a copy with the dotted ``path`` replaced by ``value``.

        ``path`` addresses a spec field (``"name"``), a whole section
        (``"backend"`` — ``value`` is a section instance or a mapping of its
        fields), a section field (``"serving.concurrency"``), a backend
        option (``"backend.options.num_devices"``) or a position inside a
        structured option (``"backend.options.tiers.1.capacity"``) — the
        addressing scheme :meth:`Session.sweep` and campaign grids use.
        ``"tiers...."`` paths are shorthand for ``"backend.options.tiers...."``
        so tier geometries sweep like any other knob.
        """
        parts = path.split(".")
        if parts[0] == "tiers":
            parts = ["backend", "options"] + parts
        if parts[0] == "name" and len(parts) == 1:
            return dataclasses.replace(self, name=value)
        if parts[0] not in _SECTION_TYPES:
            raise ValueError(
                f"unknown spec path {path!r}; top-level keys: "
                f"{['name', 'tiers'] + sorted(_SECTION_TYPES)}"
            )
        if len(parts) == 1:
            section_type = _SECTION_TYPES[parts[0]]
            if isinstance(value, Mapping):
                value = section_type(**value)
            if not isinstance(value, section_type):
                raise ValueError(
                    f"replacing {path!r} needs a {section_type.__name__} or a "
                    f"mapping of its fields, got {type(value).__name__}"
                )
            return dataclasses.replace(self, **{parts[0]: value})
        section = getattr(self, parts[0])
        if parts[0] == "backend" and len(parts) >= 3 and parts[1] == "options":
            options = dict(section.options)
            if len(parts) == 3:
                options[parts[2]] = value
            else:
                if parts[2] not in options:
                    raise ValueError(
                        f"cannot address {path!r}: backend option {parts[2]!r} is "
                        f"not set on the spec"
                    )
                target = options[parts[2]]
                if parts[2] == "tiers" and isinstance(target, str):
                    # Compact "dram:4GiB,nand:1TiB" strings are a valid tiers
                    # form; normalise to a list of mappings so positional
                    # paths (tiers.1.capacity) can descend into them.
                    from repro.hierarchy.tier import parse_tiers

                    target = [tier.to_dict() for tier in parse_tiers(target)]
                options[parts[2]] = _nested_replace(target, parts[3:], value, path)
            return dataclasses.replace(self, backend=dataclasses.replace(section, options=options))
        if len(parts) != 2:
            raise ValueError(f"spec path must be 'section.field': {path!r}")
        if parts[1] not in {f.name for f in dataclasses.fields(section)}:
            raise ValueError(f"{type(section).__name__} has no field {parts[1]!r}")
        return dataclasses.replace(
            self, **{parts[0]: dataclasses.replace(section, **{parts[1]: value})}
        )
