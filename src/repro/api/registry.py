"""Pluggable embedding-backend registry.

The paper's central abstraction is a swappable embedding backend behind one
interface (:class:`~repro.dlrm.inference.EmbeddingBackend`).  This module
makes that pluggable at the API level: backends register a factory under a
short name, :func:`create_backend` instantiates one for a concrete model, and
third-party implementations plug in without touching core::

    from repro.api import register_backend

    @register_backend("my-tier", description="my experimental tier")
    def _build(model, compute, **options):
        return MyBackend(model, compute, **options)

Built-in backends (``dram``, ``sdm``, ``pooled``) are registered by
:mod:`repro.api.backends` on import.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.dlrm.inference import ComputeSpec, EmbeddingBackend
from repro.dlrm.model import DLRMModel

#: A factory builds a backend for a concrete model: ``(model, compute, **options)``.
BackendFactory = Callable[..., EmbeddingBackend]


class BackendRegistryError(Exception):
    """Base class for registry failures."""


class UnknownBackendError(BackendRegistryError, KeyError):
    """Requested backend name has no registered factory."""


class DuplicateBackendError(BackendRegistryError, ValueError):
    """A factory is already registered under this name."""


@dataclass(frozen=True)
class RegisteredBackend:
    """One registry entry: the factory plus its human-readable description."""

    name: str
    factory: BackendFactory
    description: str = ""


_REGISTRY: Dict[str, RegisteredBackend] = {}


def register_backend(
    name: str, *, description: str = "", overwrite: bool = False
) -> Callable[[BackendFactory], BackendFactory]:
    """Decorator registering ``factory`` as the builder for backend ``name``."""
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string: {name!r}")

    def decorate(factory: BackendFactory) -> BackendFactory:
        if name in _REGISTRY and not overwrite:
            raise DuplicateBackendError(
                f"backend {name!r} is already registered "
                f"({_REGISTRY[name].factory!r}); pass overwrite=True to replace it"
            )
        _REGISTRY[name] = RegisteredBackend(
            name=name, factory=factory, description=description
        )
        return factory

    return decorate


def unregister_backend(name: str) -> None:
    """Remove a registered backend (mainly for tests and plugin teardown)."""
    if name not in _REGISTRY:
        raise UnknownBackendError(name)
    del _REGISTRY[name]


def backend_registered(name: str) -> bool:
    return name in _REGISTRY


def available_backends() -> Dict[str, str]:
    """Registered backend names mapped to their descriptions."""
    return {entry.name: entry.description for entry in _REGISTRY.values()}


def create_backend(
    name: str,
    model: DLRMModel,
    compute: Optional[ComputeSpec] = None,
    **options,
) -> EmbeddingBackend:
    """Instantiate the backend registered under ``name`` for ``model``."""
    if name not in _REGISTRY:
        raise UnknownBackendError(
            f"unknown backend {name!r}; registered backends: {sorted(_REGISTRY)}"
        )
    compute = compute if compute is not None else ComputeSpec()
    backend = _REGISTRY[name].factory(model, compute, **options)
    if not isinstance(backend, EmbeddingBackend):
        raise BackendRegistryError(
            f"factory for backend {name!r} returned {type(backend).__name__}, "
            "not an EmbeddingBackend"
        )
    return backend
