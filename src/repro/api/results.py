"""Structured results returned by :meth:`repro.api.session.Session.run`.

A :class:`ScenarioResult` aggregates what the hand-wired examples used to
assemble by hand: the host simulation outcome (latency percentiles, QPS, SLO
verdict), the backend's serving statistics (cache hit rates, IOs per query,
footprints) and — when the spec names a platform — the fleet power accounting
of Equation 7 via :mod:`repro.serving.power`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.reporting import format_table
from repro.api.spec import coord_label
from repro.serving.engine import HostSimulationResult


@dataclass(frozen=True)
class PowerSummary:
    """Fleet sizing and normalised power for one scenario (Eq. 7 + power model)."""

    platform: str
    host_power: float
    num_hosts: int
    fleet_power: float
    baseline_platform: Optional[str] = None
    baseline_num_hosts: Optional[int] = None
    baseline_fleet_power: Optional[float] = None
    power_saving: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "platform": self.platform,
            "host_power": self.host_power,
            "num_hosts": self.num_hosts,
            "fleet_power": self.fleet_power,
            "baseline_platform": self.baseline_platform,
            "baseline_num_hosts": self.baseline_num_hosts,
            "baseline_fleet_power": self.baseline_fleet_power,
            "power_saving": self.power_saving,
        }


@dataclass
class ScenarioResult:
    """Everything one :meth:`Session.run` produced, ready to report."""

    scenario: str
    backend_name: str
    num_queries: int
    concurrency: int
    makespan_seconds: float
    achieved_qps: float
    latency: Dict[str, float]  # mean/p50/p95/p99 in seconds
    meets_slo: bool
    slo_headroom: float
    backend_stats: Dict[str, float] = field(default_factory=dict)
    power: Optional[PowerSummary] = None
    host_result: Optional[HostSimulationResult] = None  # raw, not serialised
    traffic_mode: str = "closed"
    offered_qps: Optional[float] = None  # open loop only (measured from arrivals)
    serve_batch: int = 1  # open-loop queue-drain batch size (1 = classic)
    dropped_queries: int = 0
    queueing: Optional[Dict[str, float]] = None  # queue-delay mean/p50/p95/p99
    tiers: Optional[List[Dict[str, Any]]] = None  # per-tier hit rates / bytes served
    timeline: Optional[Dict[str, Any]] = None  # repro.obs Timeline.to_dict() windows
    trace: Optional[Dict[str, Any]] = None  # Chrome trace events; not serialised

    def percentile_ms(self, key: str) -> float:
        return self.latency[key] * 1e3

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output.

        The inverse of :meth:`to_dict` for everything it serialises; the raw
        ``host_result`` is not serialised, so it comes back as ``None``.  This
        is how campaign results cross process boundaries and re-enter from the
        experiment store.
        """
        power = data.get("power")
        queueing = data.get("queueing_seconds")
        return cls(
            scenario=data["scenario"],
            backend_name=data["backend"],
            num_queries=data["num_queries"],
            concurrency=data["concurrency"],
            makespan_seconds=data["makespan_seconds"],
            achieved_qps=data["achieved_qps"],
            latency=dict(data["latency_seconds"]),
            meets_slo=data["meets_slo"],
            slo_headroom=data["slo_headroom"],
            backend_stats=dict(data.get("backend_stats") or {}),
            power=PowerSummary(**power) if power is not None else None,
            host_result=None,
            traffic_mode=data.get("traffic_mode", "closed"),
            offered_qps=data.get("offered_qps"),
            serve_batch=data.get("serve_batch", 1),
            dropped_queries=data.get("dropped_queries", 0),
            queueing=dict(queueing) if queueing is not None else None,
            tiers=[dict(tier) for tier in data["tiers"]] if data.get("tiers") else None,
            timeline=dict(data["timeline"]) if data.get("timeline") else None,
        )

    # ------------------------------------------------------------- reporting
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary (drops the raw per-query results)."""
        return {
            "scenario": self.scenario,
            "backend": self.backend_name,
            "num_queries": self.num_queries,
            "concurrency": self.concurrency,
            "makespan_seconds": self.makespan_seconds,
            "achieved_qps": self.achieved_qps,
            "latency_seconds": dict(self.latency),
            "meets_slo": self.meets_slo,
            "slo_headroom": self.slo_headroom,
            "backend_stats": dict(self.backend_stats),
            "power": self.power.to_dict() if self.power is not None else None,
            "traffic_mode": self.traffic_mode,
            "offered_qps": self.offered_qps,
            "serve_batch": self.serve_batch,
            "dropped_queries": self.dropped_queries,
            "queueing_seconds": dict(self.queueing) if self.queueing is not None else None,
            "tiers": (
                [dict(tier) for tier in self.tiers] if self.tiers is not None else None
            ),
            "timeline": dict(self.timeline) if self.timeline is not None else None,
        }

    def summary_rows(self) -> List[List[Any]]:
        """Metric/value rows in :func:`repro.analysis.format_table` shape."""
        rows: List[List[Any]] = [
            ["backend", self.backend_name],
            ["queries served", self.num_queries],
            ["achieved QPS (simulated)", round(self.achieved_qps, 1)],
            ["mean latency (ms)", round(self.percentile_ms("mean"), 3)],
            ["p50 latency (ms)", round(self.percentile_ms("p50"), 3)],
            ["p95 latency (ms)", round(self.percentile_ms("p95"), 3)],
            ["p99 latency (ms)", round(self.percentile_ms("p99"), 3)],
            ["meets SLO", self.meets_slo],
        ]
        if self.traffic_mode == "open":
            if self.offered_qps is not None:
                rows.append(["offered QPS", round(self.offered_qps, 1)])
            if self.serve_batch != 1:
                rows.append(["serve batch", self.serve_batch])
            rows.append(["dropped queries", self.dropped_queries])
            if self.dropped_queries:
                offered = self.num_queries + self.dropped_queries
                rows.append(["drop rate", round(self.dropped_queries / offered, 3)])
            if self.queueing is not None:
                rows.append(["p99 queue delay (ms)", round(self.queueing["p99"] * 1e3, 3)])
        for key, value in self.backend_stats.items():
            rows.append([key, round(value, 3) if isinstance(value, float) else value])
        if self.tiers:
            total_rows_served = sum(tier["rows_served"] for tier in self.tiers)
            for tier in self.tiers:
                label = f"tier{tier['tier']} ({tier['technology']})"
                rows.append([f"{label} rows served", tier["rows_served"]])
                rows.append([f"{label} bytes served", tier["bytes_served"]])
                if total_rows_served:
                    rows.append(
                        [
                            f"{label} serve share",
                            round(tier["rows_served"] / total_rows_served, 3),
                        ]
                    )
                if tier.get("cache_hit_rate") is not None:
                    rows.append(
                        [f"{label} cache hit rate", round(tier["cache_hit_rate"], 3)]
                    )
        if self.timeline is not None:
            rows.append(
                [
                    "timeline windows",
                    f"{self.timeline.get('num_windows', 0)} x "
                    f"{self.timeline.get('interval_seconds', 0):g}s",
                ]
            )
        if self.power is not None:
            rows.append([f"hosts ({self.power.platform})", self.power.num_hosts])
            rows.append(["fleet power", round(self.power.fleet_power, 1)])
            if self.power.power_saving is not None:
                rows.append(["fleet power saving", round(self.power.power_saving, 3)])
        return rows

    def summary_table(self) -> str:
        return format_table(
            ["metric", "value"], self.summary_rows(), title=f"scenario: {self.scenario}"
        )


@dataclass(frozen=True)
class SweepPoint:
    """One point of a :meth:`Session.sweep`: the swept value and its result."""

    param: str
    value: Any
    result: ScenarioResult


def scenario_metrics() -> List[str]:
    """The metric names a :class:`ScenarioResult` exposes (its field names)."""
    return sorted(f.name for f in dataclasses.fields(ScenarioResult))


#: Percentile sub-keys under ``latency_seconds`` and ``queueing_seconds``.
PERCENTILE_KEYS: Tuple[str, ...] = ("mean", "p50", "p95", "p99")


def result_dict_keys() -> Tuple[str, ...]:
    """Top-level keys of :meth:`ScenarioResult.to_dict` (the stored form).

    These are the first segments of the dotted metric paths
    :class:`~repro.runtime.compare.MetricSpec` addresses; a test pins them
    against an actual ``to_dict`` so they cannot drift from the schema.
    """
    return (
        "scenario",
        "backend",
        "num_queries",
        "concurrency",
        "makespan_seconds",
        "achieved_qps",
        "latency_seconds",
        "meets_slo",
        "slo_headroom",
        "backend_stats",
        "power",
        "traffic_mode",
        "offered_qps",
        "serve_batch",
        "dropped_queries",
        "queueing_seconds",
        "tiers",
        "timeline",
    )


def scenario_metric_error(metric: str) -> Optional[str]:
    """Validate a :class:`ScenarioResult` *field* name (table metrics).

    Returns ``None`` for a valid field, an error message otherwise.  The
    message is what :func:`sweep_table` / :func:`campaign_table` raise and
    what the ``repro lint`` METRIC001 rule reports.
    """
    if metric in {f.name for f in dataclasses.fields(ScenarioResult)}:
        return None
    return (
        f"unknown metric {metric!r}; valid ScenarioResult metrics: "
        f"{scenario_metrics()}"
    )


def metric_path_error(path: str) -> Optional[str]:
    """Validate a dotted *result-dict* metric path (``"latency_seconds.p99"``).

    These are the paths ``repro compare`` / :func:`repro.runtime.compare_runs`
    look up inside stored :meth:`ScenarioResult.to_dict` records.  Returns
    ``None`` when the path is addressable, an error message otherwise.
    ``backend_stats.*`` and ``power.*`` leaves are backend/platform defined,
    so only their first segment is checked.
    """
    parts = path.split(".")
    if any(not part for part in parts):
        return f"metric path {path!r} has an empty segment"
    head = parts[0]
    if head not in result_dict_keys():
        return (
            f"unknown metric path {path!r}; result keys: "
            f"{sorted(result_dict_keys())}"
        )
    if head in ("latency_seconds", "queueing_seconds"):
        if len(parts) == 1:
            return (
                f"metric path {path!r} needs a percentile sub-key, e.g. "
                f"{head}.p99; choices: {list(PERCENTILE_KEYS)}"
            )
        if parts[1] not in PERCENTILE_KEYS:
            return (
                f"metric path {path!r}: unknown percentile {parts[1]!r}; "
                f"choices: {list(PERCENTILE_KEYS)}"
            )
        if len(parts) > 2:
            return f"metric path {path!r} descends below a scalar percentile"
        return None
    if head == "power":
        if len(parts) == 1:
            return None
        power_fields = {f.name for f in dataclasses.fields(PowerSummary)}
        if parts[1] not in power_fields:
            return (
                f"metric path {path!r}: PowerSummary has no field {parts[1]!r}; "
                f"valid fields: {sorted(power_fields)}"
            )
        if len(parts) > 2:
            return f"metric path {path!r} descends below a scalar power field"
        return None
    if head == "backend_stats":
        if len(parts) > 2:
            return f"metric path {path!r} descends below a scalar backend stat"
        return None
    if head == "tiers":
        return (
            f"metric path {path!r}: per-tier stats are a list and not "
            f"addressable by compare metrics"
        )
    if head == "timeline":
        return (
            f"metric path {path!r}: the timeline is a window series and not "
            f"addressable by compare metrics; use 'repro report' instead"
        )
    if len(parts) > 1:
        return f"metric path {path!r} descends below the scalar key {head!r}"
    return None


def _metric_value(result: ScenarioResult, metric: str) -> Any:
    """``getattr`` with a typo-friendly error listing the valid metrics."""
    error = scenario_metric_error(metric)
    if error is not None:
        raise ValueError(error)
    return getattr(result, metric)


def sweep_table(points: List[SweepPoint], metric: str = "achieved_qps") -> str:
    """Format a one-dimensional sweep as a two-column series table."""
    if not points:
        raise ValueError("sweep_table needs at least one point")
    rows: List[Tuple[Any, Any]] = [
        (point.value, _metric_value(point.result, metric)) for point in points
    ]
    return format_table([points[0].param, metric], rows, title="sweep")


def campaign_table(
    outcomes: Sequence[Any],
    metrics: Union[str, Sequence[str]] = "achieved_qps",
    *,
    title: str = "campaign",
) -> str:
    """Format campaign outcomes as one row per grid point.

    ``outcomes`` are the :class:`~repro.runtime.executor.PointOutcome` objects
    ``run_campaign`` returns (anything with ``coords`` pairs and a
    ``ScenarioResult``-valued ``result`` works).  Columns are the grid axes in
    campaign order followed by one column per requested metric; metric names
    are validated against the :class:`ScenarioResult` fields up front.
    """
    if not outcomes:
        raise ValueError("campaign_table needs at least one outcome")
    metric_names = [metrics] if isinstance(metrics, str) else list(metrics)
    if not metric_names:
        raise ValueError("campaign_table needs at least one metric")
    for metric in metric_names:
        _metric_value(outcomes[0].result, metric)  # validate before formatting
    def coord_pairs(outcome: Any) -> Sequence[Tuple[str, Any]]:
        # Prefer the expansion's disambiguated labels; fall back to labelling
        # the raw coordinate values (e.g. for hand-built outcome rows).
        labels = getattr(outcome, "labels", None)
        if labels is not None:
            return labels
        return [(param, coord_label(value)) for param, value in outcome.coords]

    params = [param for param, _ in coord_pairs(outcomes[0])]
    rows: List[List[Any]] = []
    for outcome in outcomes:
        row: List[Any] = [value for _, value in coord_pairs(outcome)]
        for metric in metric_names:
            value = _metric_value(outcome.result, metric)
            row.append(round(value, 4) if isinstance(value, float) else value)
        rows.append(row)
    return format_table(params + metric_names, rows, title=title)
