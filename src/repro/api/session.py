"""The :class:`Session` facade: one front door to the whole stack.

A Session lazily materialises the pipeline a :class:`~repro.api.spec.ScenarioSpec`
describes — model → backend (via the registry) → inference engine → query
generator → host simulation — and returns a structured
:class:`~repro.api.results.ScenarioResult`.  The wiring is exactly what the
hand-written examples used to do::

    from repro.api import ScenarioSpec, Session

    result = Session(ScenarioSpec()).run()
    print(result.summary_table())

``sweep`` reruns the scenario across values of one spec parameter (addressed
with the dotted paths of :meth:`ScenarioSpec.replace`), each in a fresh
session so runs are independent.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Sequence

from repro.api.registry import create_backend
from repro.api.results import PowerSummary, ScenarioResult, SweepPoint
from repro.api.spec import OPEN_LOOP_ONLY_PARAMS, ScenarioSpec, model_spec_by_name
from repro.core.sdm import SoftwareDefinedMemory
from repro.dlrm.inference import ComputeSpec, EmbeddingBackend, InferenceEngine, Query
from repro.dlrm.model import DLRMModel
from repro.dlrm.model_config import build_scaled_model
from repro.obs.metrics import MetricsSampler
from repro.obs.trace import NULL_RECORDER, ChromeTraceRecorder, TraceRecorder
from repro.serving.capacity_planner import DeploymentScenario, plan_deployment
from repro.serving.engine import HostSimulationResult, OpenLoopResult, ServingEngine
from repro.serving.platform import ALL_PLATFORMS
from repro.serving.power import PowerModel, power_saving
from repro.workload.generator import QueryGenerator, generate_arrival_times

# Imported for its side effect: registering the built-in backends.
import repro.api.backends  # noqa: F401


class Session:
    """Builds and runs the scenario a :class:`ScenarioSpec` describes.

    Construction is lazy: the model, backend, engine and queries are built on
    first use, so cheap operations (inspecting the workload, listing traces)
    never pay for device setup.  Serving state (caches, statistics)
    accumulates across repeated :meth:`run` calls on the same session; use a
    fresh session — as :meth:`sweep` does — for independent runs.
    """

    def __init__(self, spec: ScenarioSpec, compute: Optional[ComputeSpec] = None) -> None:
        self.spec = spec
        self.compute = compute if compute is not None else ComputeSpec()
        self._model: Optional[DLRMModel] = None
        self._backend: Optional[EmbeddingBackend] = None
        self._engine: Optional[InferenceEngine] = None
        self._generator: Optional[QueryGenerator] = None
        self._queries: Optional[List[Query]] = None

    @classmethod
    def from_dict(cls, data, compute: Optional[ComputeSpec] = None) -> "Session":
        return cls(ScenarioSpec.from_dict(data), compute=compute)

    def adopt_backend(self, model: DLRMModel, backend: EmbeddingBackend) -> None:
        """Serve through an already-built ``(model, backend)`` pair.

        The campaign runtimes (:mod:`repro.runtime.runtimes`) keep one built
        backend per :meth:`ScenarioSpec.backend_hash` resident in each worker
        process; adopting it skips model construction and backend build — the
        dominant cost of small-scenario grid points.  The caller owns the
        reuse contract: the pair must have been built from a spec whose
        ``model``/``backend`` sections equal this session's, and the backend
        must be restored to its as-constructed state
        (``backend.restore_pristine()``) before every adopting run, or
        results will not be bit-identical to a fresh build.  Only valid
        before the first :meth:`run` touches the lazy parts.
        """
        if self._model is not None or self._backend is not None:
            raise RuntimeError(
                "adopt_backend must be called before the session builds its "
                "own model/backend"
            )
        self._model = model
        self._backend = backend

    # ------------------------------------------------------------ lazy parts
    @property
    def model(self) -> DLRMModel:
        if self._model is None:
            choice = self.spec.model
            self._model = build_scaled_model(
                model_spec_by_name(choice.spec),
                max_tables_per_group=choice.max_tables_per_group,
                max_rows_per_table=choice.max_rows_per_table,
                item_batch=choice.item_batch,
                seed=choice.seed,
            )
        return self._model

    @property
    def backend(self) -> EmbeddingBackend:
        if self._backend is None:
            self._backend = create_backend(
                self.spec.backend.name,
                self.model,
                compute=self.compute,
                **self.spec.backend.options,
            )
        return self._backend

    @property
    def engine(self) -> InferenceEngine:
        if self._engine is None:
            self._engine = InferenceEngine(self.model, self.compute, user_backend=self.backend)
        return self._engine

    @property
    def generator(self) -> QueryGenerator:
        if self._generator is None:
            workload = self.spec.workload
            self._generator = QueryGenerator(
                self.model,
                workload.to_workload_config(self.model.item_batch),
                seed=workload.seed,
            )
        return self._generator

    def queries(self) -> List[Query]:
        """The scenario's query stream (generated once, then cached)."""
        if self._queries is None:
            self._queries = self.generator.generate(self.spec.workload.num_queries)
        return self._queries

    def access_trace(self, table_name: str, queries: Optional[Sequence[Query]] = None) -> List[int]:
        """Row accesses the query stream makes to one table (locality studies)."""
        stream = list(queries) if queries is not None else self.queries()
        return self.generator.access_trace(stream, table_name)

    # ---------------------------------------------------------------- running
    def run(self) -> ScenarioResult:
        """Serve the query stream and return the structured result.

        ``spec.traffic`` picks the serving discipline: closed loop (the seed
        behaviour) or the event-driven open loop with an arrival process and
        a bounded admission queue.
        """
        serving = self.spec.serving
        queries = self.queries()
        warmup = serving.warmup_queries
        recorder, sampler = self._telemetry()
        engine = ServingEngine(
            self.engine,
            serving.concurrency,
            store_results=serving.store_results,
            recorder=recorder,
            sampler=sampler,
        )
        if serving.reset_stats_after_warmup and warmup > 0:
            # Warm the caches outside the measured window, then measure
            # steady-state statistics only.
            for query in queries[:warmup]:
                self.engine.run_query(query, start_time=0.0)
            self._reset_backend_stats()
            queries = queries[warmup:]
            warmup = 0
        host_result = self._serve(engine, queries, warmup)
        return self._build_result(host_result, recorder=recorder, sampler=sampler)

    def _telemetry(self):
        """(recorder, sampler) per the spec's telemetry section.

        With telemetry off (the default) this is the shared no-op recorder
        and no sampler: the serving path takes the exact pre-telemetry code
        path, which the parity tests pin bit-for-bit.
        """
        telemetry = self.spec.telemetry
        recorder: TraceRecorder = NULL_RECORDER
        if telemetry.trace or telemetry.wall_profiling:
            recorder = ChromeTraceRecorder(
                wall_profiling=telemetry.wall_profiling,
                max_events=telemetry.max_trace_events,
            )
            if not telemetry.trace:
                # Wall profiling only: keep the simulated-clock spans off.
                recorder.enabled = False
            attach = getattr(self.backend, "set_trace_recorder", None)
            if callable(attach):
                attach(recorder)
        sampler = None
        if telemetry.sample_interval > 0:
            sampler = MetricsSampler(telemetry.sample_interval)
            counters = getattr(self.backend, "telemetry_counters", None)
            if callable(counters):
                sampler.add_counters("backend", counters)
        return recorder, sampler

    def _serve(
        self, engine: ServingEngine, queries: Sequence[Query], warmup: int
    ) -> HostSimulationResult:
        traffic = self.spec.traffic
        if traffic.mode == "closed":
            return engine.run_closed_loop(queries, warmup_queries=warmup)
        arrivals = generate_arrival_times(
            len(queries) - warmup,
            process=traffic.arrival,
            offered_qps=traffic.offered_qps,
            seed=traffic.seed,
            trace=traffic.trace or None,
        )
        return engine.run_open_loop(
            queries,
            arrivals,
            queue_depth=traffic.queue_depth,
            warmup_queries=warmup,
            serve_batch=traffic.serve_batch,
        )

    # Sweeping one of these with closed-loop traffic would silently produce
    # identical points; campaign grids share the same guard via CampaignSpec.
    _OPEN_LOOP_ONLY_PARAMS = OPEN_LOOP_ONLY_PARAMS

    def sweep(
        self, param: str, values: Sequence[Any], *, parallel: int = 1
    ) -> List[SweepPoint]:
        """Run the scenario once per value of ``param`` (dotted spec path).

        Each point runs in a fresh :class:`Session`, so cache state does not
        leak between points.  ``parallel`` > 1 delegates to the campaign
        executor (:func:`repro.runtime.run_campaign`) and runs the points on a
        process pool; specs travel as dicts, so the per-point metrics are
        identical to the serial run but the raw ``host_result`` is not
        retained.
        """
        if not values:
            raise ValueError("sweep needs at least one value")
        if param in self._OPEN_LOOP_ONLY_PARAMS and self.spec.traffic.mode == "closed":
            raise ValueError(
                f"sweeping {param!r} has no effect with closed-loop traffic; "
                f"set traffic.mode='open' (e.g. TrafficSpec(mode='open', "
                f"arrival='poisson', offered_qps=...))"
            )
        if parallel > 1:
            if self.compute != ComputeSpec():
                # Only the spec travels to worker processes; a custom compute
                # model would be silently dropped there, making the parallel
                # metrics diverge from the serial ones.
                raise ValueError(
                    "sweep(parallel>1) cannot carry a custom ComputeSpec "
                    "(only the ScenarioSpec travels to worker processes); "
                    "run serially or use the default compute model"
                )
            # Imported here: repro.runtime builds on repro.api, not vice versa.
            from repro.runtime import CampaignSpec, run_campaign

            campaign = CampaignSpec(
                name=self.spec.name, base=self.spec, axes=((param, tuple(values)),)
            )
            outcomes = run_campaign(campaign, parallel=parallel)
            failed = [outcome for outcome in outcomes if outcome.result is None]
            if failed:
                # sweep's contract is all-or-nothing; campaign quarantine is
                # for long grids, not three-line sweeps.
                first = failed[0]
                raise RuntimeError(
                    f"sweep point {param}={dict(first.coords).get(param)!r} failed: "
                    f"{first.error_type}: {first.error}"
                )
            return [
                SweepPoint(
                    param=param,
                    value=value,
                    # Campaign points run under coordinate-derived names;
                    # restore the sweep contract that result.scenario matches
                    # the serial run.
                    result=dataclasses.replace(
                        outcome.result, scenario=self.spec.name
                    ),
                )
                for value, outcome in zip(values, outcomes)
            ]
        points: List[SweepPoint] = []
        for value in values:
            session = Session(self.spec.replace(param, value), compute=self.compute)
            points.append(SweepPoint(param=param, value=value, result=session.run()))
        return points

    # -------------------------------------------------------------- internals
    def _reset_backend_stats(self) -> None:
        reset = getattr(self.backend, "reset_stats", None)
        if callable(reset):
            reset()

    def _backend_stats(self) -> dict:
        backend = self.backend
        if not isinstance(backend, SoftwareDefinedMemory):
            return {}
        return {
            "row cache hit rate": backend.row_cache_hit_rate,
            "pooled cache hit rate": backend.pooled_cache_hit_rate,
            "SM IOs per query": backend.stats.ios_per_query,
            "device read amplification": backend.device_stats().read_amplification,
            "FM footprint bytes": float(backend.fm_footprint_bytes()),
            "SM footprint bytes": float(backend.sm_footprint_bytes()),
        }

    def _tier_summaries(self):
        """Per-tier serving stats, for backends that expose a hierarchy."""
        summaries = getattr(self.backend, "tier_summaries", None)
        return summaries() if callable(summaries) else None

    @staticmethod
    def _platform(name: str):
        if name not in ALL_PLATFORMS:
            raise ValueError(f"unknown platform {name!r}; known: {sorted(ALL_PLATFORMS)}")
        return ALL_PLATFORMS[name]

    def _fleet(
        self,
        scenario_name: str,
        platform_name: str,
        qps_per_host: float,
        helper_platform: Optional[str],
        helper_hosts_per_host: float,
        fleet_qps: Optional[float],
        power_model: PowerModel,
    ):
        """(num_hosts, fleet_power) for one platform, Eq. 7 when fleet_qps is set."""
        platform = self._platform(platform_name)
        if fleet_qps is None:
            return 1, power_model.host_power(platform)
        plan = plan_deployment(
            DeploymentScenario(
                scenario_name,
                platform,
                qps_per_host,
                fleet_qps,
                helper_platform=(
                    self._platform(helper_platform) if helper_platform is not None else None
                ),
                helper_hosts_per_host=helper_hosts_per_host,
            ),
            power_model,
        )
        return plan.total_hosts, plan.total_power

    def power_summary(
        self, host_result: Optional[HostSimulationResult] = None
    ) -> Optional[PowerSummary]:
        """Fleet sizing and power for the spec's platform fields.

        Purely analytic when ``serving.qps_per_host`` is set (no simulation
        needed); otherwise the per-host QPS comes from ``host_result`` —
        :meth:`run` passes its own.  Returns ``None`` when the spec names no
        platform.
        """
        serving = self.spec.serving
        if serving.platform is None:
            return None
        power_model = PowerModel()
        platform = self._platform(serving.platform)
        if serving.qps_per_host is not None:
            qps_per_host = serving.qps_per_host
        elif host_result is not None:
            qps_per_host = host_result.achieved_qps
        else:
            raise ValueError(
                "power_summary needs serving.qps_per_host or a host simulation result"
            )
        num_hosts, fleet_power = self._fleet(
            self.spec.name,
            serving.platform,
            qps_per_host,
            serving.helper_platform,
            serving.helper_hosts_per_host,
            serving.fleet_qps,
            power_model,
        )

        baseline_num_hosts = None
        baseline_fleet_power = None
        saving = None
        if serving.baseline_platform is not None:
            baseline_qps = (
                serving.baseline_qps_per_host
                if serving.baseline_qps_per_host is not None
                else qps_per_host
            )
            baseline_num_hosts, baseline_fleet_power = self._fleet(
                "baseline",
                serving.baseline_platform,
                baseline_qps,
                serving.baseline_helper_platform,
                serving.baseline_helper_hosts_per_host,
                serving.fleet_qps,
                power_model,
            )
            saving = power_saving(baseline_fleet_power, fleet_power)

        return PowerSummary(
            platform=platform.name,
            host_power=power_model.host_power(platform),
            num_hosts=num_hosts,
            fleet_power=fleet_power,
            baseline_platform=serving.baseline_platform,
            baseline_num_hosts=baseline_num_hosts,
            baseline_fleet_power=baseline_fleet_power,
            power_saving=saving,
        )

    def _build_result(
        self,
        host_result: HostSimulationResult,
        recorder: TraceRecorder = NULL_RECORDER,
        sampler: Optional[MetricsSampler] = None,
    ) -> ScenarioResult:
        target = self.spec.serving.latency_target()
        timeline = None
        if sampler is not None:
            # The serving engine already finished the sampler at the makespan.
            timeline = sampler.timeline.to_dict()
        trace = None
        if isinstance(recorder, ChromeTraceRecorder):
            trace = recorder.to_chrome_trace()
        queueing = None
        dropped = 0
        offered_qps = None
        if isinstance(host_result, OpenLoopResult):
            queueing = (
                host_result.queueing_percentiles() if host_result.queue_delays else None
            )
            dropped = host_result.dropped_queries
            offered_qps = host_result.offered_qps
        return ScenarioResult(
            scenario=self.spec.name,
            backend_name=self.spec.backend.name,
            num_queries=host_result.num_queries,
            concurrency=host_result.concurrency,
            makespan_seconds=host_result.makespan_seconds,
            achieved_qps=host_result.achieved_qps,
            latency=host_result.percentiles(),
            meets_slo=host_result.meets(target),
            slo_headroom=target.headroom(host_result.latencies),
            backend_stats=self._backend_stats(),
            power=self.power_summary(host_result),
            host_result=host_result,
            traffic_mode=self.spec.traffic.mode,
            offered_qps=offered_qps,
            serve_batch=self.spec.traffic.serve_batch,
            dropped_queries=dropped,
            queueing=queueing,
            tiers=self._tier_summaries(),
            timeline=timeline,
            trace=trace,
        )
