"""``python -m repro`` — run scenarios from the command line.

Subcommands::

    python -m repro run                # serve an M1 SDM scenario end to end
    python -m repro run --backend dram --queries 100 --json
    python -m repro run --spec scenario.json --option num_devices=4
    python -m repro run --arrival poisson --offered-qps 120   # open loop
    python -m repro run --tiers dram:64KiB,cxl:1MiB,nand:1GiB # 3-tier hierarchy
    python -m repro sweep --param serving.concurrency --values 1,2,4
    python -m repro sweep --param tiers.1.capacity --values 256KiB,1MiB,4MiB \\
        --tiers dram:64KiB,cxl:1MiB,nand:1GiB
    python -m repro list-devices
    python -m repro sweep --param traffic.offered_qps --values 40,80,160
    python -m repro campaign --grid backend.name=dram,sdm \\
        --grid serving.concurrency=1,2 --parallel 4 --out runs/demo
    python -m repro campaign --out runs/demo --resume ...   # skip done points
    python -m repro compare runs/baseline runs/demo
    python -m repro lint src examples benchmarks
    python -m repro list-backends

Output is either the :mod:`repro.analysis.reporting` table format (default)
or JSON (``--json``) for downstream tooling.  ``compare`` exits non-zero when
it finds regressions, so it slots directly into CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.api.registry import available_backends
from repro.api.results import campaign_table, scenario_metrics, sweep_table
from repro.api.session import Session
from repro.api.spec import ScenarioSpec
from repro.hierarchy import TECHNOLOGY_ALIASES, parse_tiers
from repro.lint.cli import add_lint_parser
from repro.sim.units import MICROSECOND, format_bytes
from repro.storage.spec import TABLE1_SPECS
from repro.runtime import (
    RUNTIME_NAMES,
    CampaignSpec,
    ExperimentStore,
    MetricSpec,
    compare_runs,
    run_campaign,
)


def _parse_value(text: str) -> Any:
    """Best-effort typing of CLI values: int, float, bool, then string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def _parse_options(pairs: Sequence[str]) -> Dict[str, Any]:
    options: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--option expects key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        options[key] = _parse_value(raw)
    return options


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--spec", metavar="FILE", help="JSON ScenarioSpec to start from")
    parser.add_argument("--name", help="scenario name")
    parser.add_argument("--model", help="paper model: M1, M2, M3 or fig1")
    parser.add_argument("--tables", type=int, help="max tables per group in the scaled model")
    parser.add_argument("--rows", type=int, help="max rows per table in the scaled model")
    parser.add_argument("--backend", help="registered backend name (see list-backends)")
    parser.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="backend option (repeatable), e.g. --option num_devices=4",
    )
    parser.add_argument(
        "--tiers",
        metavar="SPEC",
        help=(
            "memory hierarchy, fastest first: tech:capacity[:cache] entries "
            "joined by commas, e.g. dram:64KiB,cxl:1MiB,nand:1GiB "
            "(see list-devices for technologies)"
        ),
    )
    parser.add_argument("--queries", type=int, help="number of queries to serve")
    parser.add_argument("--users", type=int, help="user population size")
    parser.add_argument("--item-batch", type=int, help="candidate items ranked per query")
    parser.add_argument("--seed", type=int, help="workload and model seed")
    parser.add_argument("--concurrency", type=int, help="serving streams per host")
    parser.add_argument("--warmup", type=int, help="warmup queries before measurement")
    parser.add_argument(
        "--arrival",
        choices=["closed", "poisson", "constant"],
        help="traffic shape: closed loop (default) or an open-loop arrival process",
    )
    parser.add_argument(
        "--offered-qps",
        type=float,
        help="open-loop offered load in arrivals per second (implies --arrival poisson)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        help="open-loop admission queue capacity, 0 sheds immediately (implies --arrival poisson)",
    )
    parser.add_argument(
        "--serve-batch",
        type=int,
        help="open-loop queries a freed stream drains per dispatch (implies --arrival poisson)",
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        help="simulated seconds between timeline metric windows (0 disables)",
    )
    parser.add_argument("--platform", help="host platform for power accounting, e.g. HW-SS")
    parser.add_argument("--baseline-platform", help="baseline platform to compare power against")
    parser.add_argument("--qps-per-host", type=float, help="analytic per-host QPS for fleet sizing")
    parser.add_argument(
        "--baseline-qps-per-host", type=float, help="baseline platform's per-host QPS"
    )
    parser.add_argument("--fleet-qps", type=float, help="region-level QPS demand (Eq. 7)")
    parser.add_argument("--json", action="store_true", help="emit JSON instead of tables")


_SCENARIO_PATHS = {
    "name": "name",
    "model": "model.spec",
    "tables": "model.max_tables_per_group",
    "rows": "model.max_rows_per_table",
    "backend": "backend.name",
    "queries": "workload.num_queries",
    "users": "workload.num_users",
    "seed": "workload.seed",
    "concurrency": "serving.concurrency",
    "warmup": "serving.warmup_queries",
    "platform": "serving.platform",
    "baseline_platform": "serving.baseline_platform",
    "qps_per_host": "serving.qps_per_host",
    "baseline_qps_per_host": "serving.baseline_qps_per_host",
    "fleet_qps": "serving.fleet_qps",
    "sample_interval": "telemetry.sample_interval",
}


def _spec_from_args(args: argparse.Namespace) -> ScenarioSpec:
    if args.spec:
        with open(args.spec, encoding="utf-8") as handle:
            spec = ScenarioSpec.from_dict(json.load(handle))
    else:
        spec = ScenarioSpec()
    for attr, path in _SCENARIO_PATHS.items():
        value = getattr(args, attr)
        if value is not None:
            spec = spec.replace(path, value)
    if args.item_batch is not None:
        spec = spec.replace("model.item_batch", args.item_batch)
        spec = spec.replace("workload.item_batch", args.item_batch)
    if args.seed is not None:
        spec = spec.replace("model.seed", args.seed)
        spec = spec.replace("traffic.seed", args.seed)
    # Set the open-loop parameters before flipping the mode: TrafficSpec
    # validates that open mode has an offered load the moment it is built.
    if args.offered_qps is not None:
        spec = spec.replace("traffic.offered_qps", args.offered_qps)
    if args.queue_depth is not None:
        spec = spec.replace("traffic.queue_depth", args.queue_depth)
    if args.serve_batch is not None:
        spec = spec.replace("traffic.serve_batch", args.serve_batch)
    if args.arrival is not None:
        if args.arrival != "closed":
            spec = spec.replace("traffic.arrival", args.arrival)
        spec = spec.replace("traffic.mode", "closed" if args.arrival == "closed" else "open")
    elif (
        args.offered_qps is not None
        or args.queue_depth is not None
        or args.serve_batch is not None
    ):
        # An offered load (or queue depth / drain batch) only means something
        # in open loop; silently running closed-loop would ignore it.
        # `--arrival closed` opts out explicitly.
        spec = spec.replace("traffic.mode", "open")
    if args.tiers is not None:
        # Normalise to a list of mappings so grid axes like tiers.1.capacity
        # can address individual entries, and default the backend to the
        # hierarchy-aware one unless the user picked something explicitly.
        tier_dicts = [tier.to_dict() for tier in parse_tiers(args.tiers)]
        spec = spec.replace("backend.options.tiers", tier_dicts)
        if args.backend is None and spec.backend.name == "sdm":
            spec = spec.replace("backend.name", "tiered")
    for key, value in _parse_options(args.option).items():
        spec = spec.replace(f"backend.options.{key}", value)
    # Telemetry output flags (run subcommand only) imply the matching knobs.
    if getattr(args, "trace_out", None):
        spec = spec.replace("telemetry.trace", True)
    if getattr(args, "wall_profiling", False):
        spec = spec.replace("telemetry.wall_profiling", True)
    if getattr(args, "timeline_out", None) and spec.telemetry.sample_interval <= 0:
        raise ValueError(
            "--timeline-out needs a sampling cadence: pass --sample-interval "
            "(simulated seconds) or set telemetry.sample_interval in --spec"
        )
    return spec


def _write_json(path: str, payload: Any, label: str) -> None:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(f"{label}: {out}", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    result = Session(_spec_from_args(args)).run()
    if args.trace_out:
        _write_json(args.trace_out, result.trace, "trace")
    if args.timeline_out:
        _write_json(args.timeline_out, result.timeline, "timeline")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.summary_table())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    # Imported here: keeps the plain-CLI import path free of repro.obs.
    from repro.obs.report import render_report, report_dict

    target = Path(args.target)
    if target.is_dir():
        store = ExperimentStore(target)
        if not store.exists():
            raise ValueError(
                f"no campaign results at {args.target!r} (expected results.jsonl)"
            )
        records = sorted(store, key=lambda record: record.get("index", 0))
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "scenario": record.get("scenario"),
                            "coords": record.get("coords"),
                            "report": report_dict(record["result"]),
                        }
                        for record in records
                    ],
                    indent=2,
                )
            )
            return 0
        for record in records:
            print(render_report(record["result"]))
            print()
        return 0
    with open(target, encoding="utf-8") as handle:
        result_dict = json.load(handle)
    if not isinstance(result_dict, dict) or "scenario" not in result_dict:
        raise ValueError(
            f"{args.target!r} is not a stored result: expected the JSON of "
            f"'run --json' or a campaign --out directory"
        )
    if args.json:
        print(json.dumps(report_dict(result_dict), indent=2))
    else:
        print(render_report(result_dict))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    values = [_parse_value(token) for token in args.values.split(",") if token]
    if not values:
        raise ValueError("--values must list at least one value")
    if not args.json and args.metric not in scenario_metrics():
        # Validate before the (expensive) sweep runs, not after.
        raise ValueError(
            f"unknown sweep metric {args.metric!r}; choices: {scenario_metrics()}"
        )
    spec = _spec_from_args(args)
    if args.param == "traffic.offered_qps" and spec.traffic.mode == "closed":
        if args.arrival == "closed":
            raise ValueError(
                "sweeping traffic.offered_qps needs open-loop traffic, "
                "but --arrival closed was given"
            )
        # Sweeping the offered load implies open-loop traffic; seed the spec
        # with the first swept value so the open-mode validation passes.
        spec = spec.replace("traffic.offered_qps", values[0])
        spec = spec.replace("traffic.mode", "open")
    points = Session(spec).sweep(args.param, values, parallel=args.parallel)
    if args.json:
        print(
            json.dumps(
                [
                    {"param": p.param, "value": p.value, "result": p.result.to_dict()}
                    for p in points
                ],
                indent=2,
            )
        )
    else:
        print(sweep_table(points, metric=args.metric))
    return 0


def _parse_grid(pairs: Sequence[str]) -> List[Tuple[str, List[Any]]]:
    axes: List[Tuple[str, List[Any]]] = []
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--grid expects param=v1,v2,..., got {pair!r}")
        param, _, raw = pair.partition("=")
        values = [_parse_value(token) for token in raw.split(",") if token]
        if not values:
            raise ValueError(f"--grid {param!r} must list at least one value")
        axes.append((param, values))
    return axes


def _campaign_from_args(args: argparse.Namespace) -> CampaignSpec:
    axes = _parse_grid(args.grid)
    spec = _spec_from_args(args)
    grid_params = {param for param, _ in axes}
    if spec.traffic.mode == "closed" and "traffic.offered_qps" in grid_params:
        if args.arrival == "closed":
            raise ValueError(
                "a traffic.offered_qps grid axis needs open-loop traffic, "
                "but --arrival closed was given"
            )
        # An offered-load axis implies open-loop traffic; seed the spec with
        # the axis' first value so the open-mode validation passes.
        first = next(values[0] for param, values in axes if param == "traffic.offered_qps")
        spec = spec.replace("traffic.offered_qps", first)
        spec = spec.replace("traffic.mode", "open")
    return CampaignSpec.from_grid(
        spec, dict(axes), name=spec.name, replicates=args.replicates
    )


class _CampaignProgress:
    """Per-point campaign progress with elapsed time and an ETA, on stderr.

    Wall-clock readings come from :func:`repro.obs.profile.wall_seconds` (the
    audited module) and shape *display only* — never results.  Lines are
    throttled to one per ``min_interval`` seconds, except the first and last
    point, which always print.
    """

    def __init__(self, min_interval: float = 0.5) -> None:
        # Imported here: keeps the plain-CLI import path free of repro.obs.
        from repro.obs.profile import wall_seconds

        self._wall = wall_seconds
        self._min_interval = min_interval
        self._started = wall_seconds()
        self._last_print: Optional[float] = None
        self._ran = 0
        self._cached = 0
        self._failed = 0

    def __call__(self, outcome: Any, done: int, total: int) -> None:
        if outcome.failed:
            self._failed += 1
        elif outcome.cached:
            self._cached += 1
        elif outcome.ok:
            self._ran += 1
        now = self._wall()
        always_print = done >= total or outcome.failed
        if (
            not always_print
            and self._last_print is not None
            and now - self._last_print < self._min_interval
        ):
            return
        self._last_print = now
        elapsed = now - self._started
        if outcome.cached:
            origin = "store"
        elif outcome.ok:
            origin = "ran"
        else:
            origin = outcome.status

        line = (
            f"[{done}/{total}] {outcome.scenario} ({origin}) | "
            f"{self._ran} ran, {self._cached} from store"
        )
        if self._failed:
            line += f", {self._failed} failed"
        line += f" | {elapsed:.1f}s elapsed"
        if done < total and self._ran:
            eta = elapsed / self._ran * (total - done)
            line += f" | eta {eta:.1f}s"
        print(line, file=sys.stderr)


def _cmd_campaign(args: argparse.Namespace) -> int:
    campaign = _campaign_from_args(args)
    metrics = args.metric or ["achieved_qps"]
    if not args.json:
        # Validate before the (expensive) grid runs, not after.
        for metric in metrics:
            if metric not in scenario_metrics():
                raise ValueError(
                    f"unknown metric {metric!r}; valid ScenarioResult metrics: "
                    f"{scenario_metrics()}"
                )
    if args.resume and not args.out:
        raise ValueError("--resume needs --out pointing at an existing run directory")
    store = None
    if args.out:
        store = ExperimentStore(args.out)
        if store.exists() and len(store) and not args.resume:
            raise ValueError(
                f"{store.root} already holds {len(store)} result(s); "
                f"pass --resume to reuse them or a fresh --out"
            )
        store.write_campaign(campaign.to_dict())

    outcomes = run_campaign(
        campaign,
        parallel=args.parallel,
        store=store,
        progress=_CampaignProgress() if not args.quiet else None,
        chunksize=args.chunksize,
        runtime=args.runtime,
        retries=args.retries,
        reuse_backends=not args.no_reuse,
    )
    succeeded = [outcome for outcome in outcomes if outcome.ok]
    quarantined = [outcome for outcome in outcomes if outcome.failed]
    planned = [outcome for outcome in outcomes if outcome.skipped]
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "index": outcome.index,
                        "spec_hash": outcome.spec_hash,
                        "coords": [list(pair) for pair in outcome.labels],
                        "cached": outcome.cached,
                        "status": outcome.status,
                        "attempts": outcome.attempts,
                        "error": outcome.error,
                        "error_type": outcome.error_type,
                        "result": outcome.metrics if outcome.ok else None,
                    }
                    for outcome in outcomes
                ],
                indent=2,
            )
        )
    elif planned and not succeeded and not quarantined:
        # Dry run: show the plan instead of an (empty) metrics table.
        print(f"campaign: {campaign.name} — dry run, {len(planned)} point(s) planned")
        for outcome in planned:
            coords = ", ".join(f"{key}={value}" for key, value in outcome.labels)
            print(f"  [{outcome.index}] {outcome.scenario} ({coords})")
    else:
        if succeeded:
            print(
                campaign_table(succeeded, metrics, title=f"campaign: {campaign.name}")
            )
        if store is not None:
            executed = sum(1 for outcome in succeeded if not outcome.cached)
            print(
                f"{executed} point(s) executed, {len(succeeded) - executed} from "
                f"{store.root}",
                file=sys.stderr,
            )
    if quarantined:
        print(
            f"{len(quarantined)} point(s) quarantined after failure:", file=sys.stderr
        )
        for outcome in quarantined:
            print(
                f"  [{outcome.index}] {outcome.scenario}: "
                f"{outcome.error_type}: {outcome.error} "
                f"({outcome.attempts} attempt(s))",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    for root in (args.baseline, args.candidate):
        if not ExperimentStore(root).exists():
            raise ValueError(f"no campaign results at {root!r} (expected results.jsonl)")
    metrics = [MetricSpec.parse(text) for text in args.metric] if args.metric else None
    comparison = compare_runs(
        args.baseline, args.candidate, metrics=metrics, tolerance=args.tolerance
    )
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2))
    else:
        print(comparison.table())
    # CI contract: a regression is a failing exit code, not just a table row.
    return 1 if comparison.regressions else 0


def _cmd_list_devices(args: argparse.Namespace) -> int:
    """Print the Table 1 device spectrum so tier technologies are
    discoverable without reading source."""
    aliases: Dict[str, List[str]] = {}
    for alias, technology in TECHNOLOGY_ALIASES.items():
        aliases.setdefault(technology.value, []).append(alias)
    entries = []
    for technology, spec in TABLE1_SPECS.items():
        entries.append(
            {
                "technology": technology.value,
                "aliases": sorted(aliases.get(technology.value, [])),
                "name": spec.name,
                "default_capacity_bytes": spec.capacity_bytes,
                "read_latency_us": spec.base_read_latency / MICROSECOND,
                "max_read_iops": spec.max_read_iops,
                "access_granularity_bytes": spec.access_granularity_bytes,
                "read_bandwidth_gbps": spec.read_bus_bandwidth / 1e9,
                "endurance_dwpd": spec.endurance_dwpd,
                "cost_per_gb_vs_dram": spec.relative_cost_per_gb,
                "sourcing": spec.sourcing,
            }
        )
    if args.json:
        print(json.dumps(entries, indent=2))
        return 0
    rows = [
        [
            entry["technology"],
            ",".join(entry["aliases"]),
            format_bytes(entry["default_capacity_bytes"]),
            round(entry["read_latency_us"], 2),
            f"{entry['max_read_iops'] / 1e6:g}M",
            entry["access_granularity_bytes"],
            round(entry["read_bandwidth_gbps"], 1),
            entry["endurance_dwpd"],
            f"1/{round(1 / entry['cost_per_gb_vs_dram'])}",
            entry["sourcing"],
        ]
        for entry in entries
    ]
    print(
        format_table(
            [
                "technology",
                "aliases",
                "capacity",
                "latency (us)",
                "IOPS",
                "granularity (B)",
                "read BW (GB/s)",
                "DWPD",
                "$/GB vs DRAM",
                "sourcing",
            ],
            rows,
            title="Table 1 device spectrum (--tiers technologies; plus 'dram' for tier 0)",
        )
    )
    return 0


def _cmd_list_backends(args: argparse.Namespace) -> int:
    backends = available_backends()
    if args.json:
        print(json.dumps(backends, indent=2))
    else:
        rows = [[name, backends[name]] for name in sorted(backends)]
        print(format_table(["backend", "description"], rows, title="registered backends"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unified experiment front end for the SDM reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="serve one scenario end to end")
    _add_scenario_arguments(run_parser)
    run_parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a Chrome-trace-event JSON of the run (implies tracing on)",
    )
    run_parser.add_argument(
        "--timeline-out",
        metavar="FILE",
        help="write the timeline windows as JSON (needs --sample-interval)",
    )
    run_parser.add_argument(
        "--wall-profiling",
        action="store_true",
        help="record wall-clock serve-core spans on a separate trace track",
    )
    run_parser.set_defaults(handler=_cmd_run)

    report_parser = subparsers.add_parser(
        "report", help="render a stored result or campaign directory as a report"
    )
    report_parser.add_argument(
        "target", help="result JSON file (run --json output) or campaign --out directory"
    )
    report_parser.add_argument("--json", action="store_true", help="emit JSON")
    report_parser.set_defaults(handler=_cmd_report)

    sweep_parser = subparsers.add_parser("sweep", help="run a one-dimensional parameter study")
    _add_scenario_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--param", required=True, help="dotted spec path, e.g. serving.concurrency"
    )
    sweep_parser.add_argument("--values", required=True, help="comma-separated values")
    sweep_parser.add_argument(
        "--metric", default="achieved_qps", help="ScenarioResult attribute to tabulate"
    )
    sweep_parser.add_argument(
        "--parallel", type=int, default=1, help="worker processes for the sweep points"
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    campaign_parser = subparsers.add_parser(
        "campaign", help="run a multi-axis scenario grid, optionally persisted"
    )
    _add_scenario_arguments(campaign_parser)
    campaign_parser.add_argument(
        "--grid",
        action="append",
        default=[],
        required=True,
        metavar="PARAM=V1,V2,...",
        help="grid axis (repeatable), e.g. --grid backend.name=dram,sdm",
    )
    campaign_parser.add_argument(
        "--parallel", type=int, default=1, help="worker processes for fresh points"
    )
    campaign_parser.add_argument(
        "--runtime",
        choices=list(RUNTIME_NAMES),
        default=None,
        help=(
            "execution engine: serial, pool (work-stealing process pool), or "
            "dry (plan without executing); default picks pool when "
            "--parallel > 1"
        ),
    )
    campaign_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per failing point before quarantining it",
    )
    campaign_parser.add_argument(
        "--no-reuse",
        action="store_true",
        help="build a fresh backend per point instead of reusing worker-resident ones",
    )
    campaign_parser.add_argument(
        "--chunksize",
        type=int,
        default=1,
        help="(deprecated, ignored) points per process-pool task",
    )
    campaign_parser.add_argument(
        "--replicates", type=int, default=1, help="seed replicates per grid point"
    )
    campaign_parser.add_argument(
        "--out", metavar="DIR", help="experiment store directory (enables memoisation)"
    )
    campaign_parser.add_argument(
        "--resume",
        action="store_true",
        help="serve already-completed points from --out instead of refusing",
    )
    campaign_parser.add_argument(
        "--metric",
        action="append",
        metavar="NAME",
        help="ScenarioResult attribute column (repeatable; default achieved_qps)",
    )
    campaign_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress on stderr"
    )
    campaign_parser.set_defaults(handler=_cmd_campaign)

    compare_parser = subparsers.add_parser(
        "compare", help="diff two stored campaign runs and flag regressions"
    )
    compare_parser.add_argument("baseline", help="baseline run directory (--out of a campaign)")
    compare_parser.add_argument("candidate", help="candidate run directory")
    compare_parser.add_argument(
        "--metric",
        action="append",
        metavar="PATH[:higher|lower]",
        help="result metric to compare (repeatable), e.g. latency_seconds.p99:lower",
    )
    compare_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="relative worsening allowed before a metric counts as regressed",
    )
    compare_parser.add_argument("--json", action="store_true", help="emit JSON")
    compare_parser.set_defaults(handler=_cmd_compare)

    list_parser = subparsers.add_parser("list-backends", help="show registered backends")
    list_parser.add_argument("--json", action="store_true", help="emit JSON")
    list_parser.set_defaults(handler=_cmd_list_backends)

    devices_parser = subparsers.add_parser(
        "list-devices", help="show the Table 1 device spectrum for --tiers"
    )
    devices_parser.add_argument("--json", action="store_true", help="emit JSON")
    devices_parser.set_defaults(handler=_cmd_list_devices)

    add_lint_parser(subparsers)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Normal when piping into `head` etc.; exit quietly.  Detach stdout so
        # the interpreter's shutdown flush doesn't raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ValueError, TypeError, KeyError, OSError, json.JSONDecodeError) as error:
        # Spec/registry/config mistakes are user errors, not crashes: report
        # the message (which lists the valid choices) without a traceback.
        # KeyError wraps its message in quotes, so unwrap args[0] there;
        # str() keeps OSError's "[Errno 2] ... : 'path'" form intact.
        message = error.args[0] if isinstance(error, KeyError) and error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
