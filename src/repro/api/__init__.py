"""Unified experiment API: declarative scenarios, pluggable backends, one facade.

The public surface of the reproduction.  A scenario is described once as a
:class:`ScenarioSpec`, served through a :class:`Session`, and reported as a
:class:`ScenarioResult`; embedding backends plug in through the registry
(:func:`register_backend` / :func:`create_backend`), with ``dram``, ``sdm``
and ``pooled`` built in.  The same machinery backs the ``python -m repro``
command line.
"""

from repro.api.spec import (
    BackendChoice,
    ModelChoice,
    ScenarioSpec,
    ServingChoice,
    TelemetrySpec,
    TrafficSpec,
    WorkloadChoice,
    iter_spec_paths,
    model_spec_by_name,
    spec_path_error,
)
from repro.api.registry import (
    BackendFactory,
    BackendRegistryError,
    DuplicateBackendError,
    UnknownBackendError,
    available_backends,
    backend_registered,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.api.results import (
    PowerSummary,
    ScenarioResult,
    SweepPoint,
    campaign_table,
    metric_path_error,
    scenario_metric_error,
    scenario_metrics,
    sweep_table,
)
from repro.api.session import Session
from repro.api.backends import sdm_config_from_options  # registers built-ins on import

__all__ = [
    "ScenarioSpec",
    "ModelChoice",
    "BackendChoice",
    "WorkloadChoice",
    "TrafficSpec",
    "ServingChoice",
    "TelemetrySpec",
    "model_spec_by_name",
    "iter_spec_paths",
    "spec_path_error",
    "metric_path_error",
    "scenario_metric_error",
    "Session",
    "ScenarioResult",
    "PowerSummary",
    "SweepPoint",
    "sweep_table",
    "campaign_table",
    "scenario_metrics",
    "BackendFactory",
    "BackendRegistryError",
    "DuplicateBackendError",
    "UnknownBackendError",
    "register_backend",
    "unregister_backend",
    "backend_registered",
    "create_backend",
    "available_backends",
    "sdm_config_from_options",
]
