"""The unit of lint output: one :class:`Finding` at one source location."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``line``/``column`` are 1-based (column matching compiler convention:
    ``path:line:col``).  ``snippet`` is the stripped source line, carried so
    findings are meaningful in CI logs without opening the file — and so the
    baseline can identify a finding independently of its line number.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    snippet: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def render(self) -> str:
        return f"{self.location()}: {self.rule} {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule)

    def baseline_key(self) -> str:
        """Identity of this finding for ``--baseline`` matching.

        Deliberately excludes the line number: editing an unrelated part of a
        file must not resurrect a baselined finding.  Two identical snippets
        in one file share a key; the baseline stores a per-key *count* so a
        third copy of an already-baselined pattern still fails the build.
        """
        material = f"{self.rule}\x00{self.path}\x00{self.snippet}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
            "key": self.baseline_key(),
        }
