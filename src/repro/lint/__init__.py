"""Domain-specific static analysis for the SDM reproduction.

The simulator's correctness rests on invariants no general-purpose linter
knows about: *all* time is simulated (``sim.clock``/``sim.events``), *all*
randomness is seeded (``sim.rng.make_rng``), byte sizes go through
``sim.units``, dotted spec paths and metric names must resolve against the
live ``ScenarioSpec``/``ScenarioResult`` schema, frozen specs stay frozen,
and campaign workers must pickle.  :mod:`repro.lint` checks each of these as
an AST rule — run ``python -m repro lint`` or see ``--list-rules``.
"""

from __future__ import annotations

from repro.lint.baseline import filter_baselined, load_baseline, write_baseline
from repro.lint.checker import (
    LintSyntaxError,
    is_library_path,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, get_rules, register, unregister

__all__ = [
    "FileContext",
    "Finding",
    "LintSyntaxError",
    "Rule",
    "all_rules",
    "filter_baselined",
    "get_rules",
    "is_library_path",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "unregister",
    "write_baseline",
]
