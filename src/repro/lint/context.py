"""Per-file analysis context shared by every lint rule.

A :class:`FileContext` is built once per file by the checker: the parsed AST,
a parent map (so rules can climb from a literal to its enclosing assignment),
an import-alias map (so ``np.random.seed`` resolves to ``numpy.random.seed``
whatever the file imported numpy as), and the source lines for snippets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.lint.findings import Finding


def build_import_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the qualified names they were imported as.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import monotonic as mono`` → ``{"mono": "time.monotonic"}``;
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``.
    Star imports and relative imports are ignored — rules that resolve
    qualified names only need absolute stdlib/third-party roots.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                qualified = alias.name if alias.asname else alias.name.partition(".")[0]
                imports[local] = qualified
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def dotted_name(node: ast.AST) -> Optional[str]:
    """The ``a.b.c`` chain of a Name/Attribute expression, or ``None``.

    Only chains rooted in a plain :class:`ast.Name` resolve — ``self.time.x``
    or ``fn().attr`` return ``None``, which keeps qualified-name rules from
    firing on attribute lookups that merely *end* in a suspicious name.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class FileContext:
    """Everything a rule may need to know about one parsed source file."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str]
    is_library: bool
    imports: Dict[str, str] = field(default_factory=dict)
    _parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, path: str, *, is_library: bool) -> "FileContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            is_library=is_library,
            imports=build_import_map(tree),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx._parents[child] = parent
        return ctx

    # ----------------------------------------------------------- navigation
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The parent chain of ``node``, nearest first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        """Qualified name of a call target through the file's import aliases.

        ``np.random.seed(0)`` resolves to ``"numpy.random.seed"`` when the
        file did ``import numpy as np``; calls on local objects (whose root
        name was never imported) resolve to their literal dotted form.
        """
        name = dotted_name(node.func)
        if name is None:
            return None
        root, dot, rest = name.partition(".")
        resolved_root = self.imports.get(root, root)
        return f"{resolved_root}{dot}{rest}" if dot else resolved_root

    def resolve_imported_call(self, node: ast.Call) -> Optional[str]:
        """Like :meth:`resolve_call`, but only when the root name is an import.

        Rules matching module APIs (``time.time``, ``numpy.random.seed``) use
        this so a local variable that happens to be called ``time`` or
        ``random`` cannot false-positive.
        """
        name = dotted_name(node.func)
        if name is None:
            return None
        root, dot, rest = name.partition(".")
        if root not in self.imports:
            return None
        resolved_root = self.imports[root]
        return f"{resolved_root}{dot}{rest}" if dot else resolved_root

    # ------------------------------------------------------------- findings
    def snippet(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            snippet=self.snippet(node),
        )
