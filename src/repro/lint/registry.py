"""The pluggable rule registry.

A rule is a class with a unique ``id``, registered via :func:`register`.  The
built-in rules live in :mod:`repro.lint.rules`; external tooling can register
additional rules the same way before calling the checker.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, List, Optional, Sequence, Type

from repro.lint.context import FileContext
from repro.lint.findings import Finding


class Rule(abc.ABC):
    """One static check, identified by a short stable ID (``DET001``).

    ``library_only`` rules describe invariants of the simulation library
    itself (no wall clock, no unseeded RNG) and are skipped for scripts that
    merely *use* the library — benchmarks legitimately read the wall clock to
    time real execution.  The checker decides library membership from the
    file's path (see :func:`repro.lint.checker.is_library_path`).
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    library_only: bool = False

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""


class DuplicateRuleError(ValueError):
    """A rule ID was registered twice."""


_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (one instance per ID)."""
    rule = rule_class()
    if not rule.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule.id in _REGISTRY:
        raise DuplicateRuleError(
            f"rule id {rule.id!r} already registered by "
            f"{type(_REGISTRY[rule.id]).__name__}"
        )
    _REGISTRY[rule.id] = rule
    return rule_class


def unregister(rule_id: str) -> None:
    _REGISTRY.pop(rule_id, None)


def all_rules() -> List[Rule]:
    """Every registered rule, in ID order (built-ins register on import)."""
    import repro.lint.rules  # noqa: F401  (importing registers the built-ins)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve a subset of rule IDs (``None`` → all), rejecting unknown IDs."""
    rules = all_rules()
    if rule_ids is None:
        return rules
    known = {rule.id: rule for rule in rules}
    unknown = sorted(set(rule_ids) - set(known))
    if unknown:
        raise ValueError(f"unknown lint rule(s) {unknown}; known: {sorted(known)}")
    return [known[rule_id] for rule_id in sorted(set(rule_ids))]
