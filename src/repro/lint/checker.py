"""Run lint rules over sources, files and directory trees.

The checker owns the three policy decisions the rules themselves stay out of:

* which files count as *library* code (``library_only`` rules — the
  determinism rules — fire only inside the ``repro`` package itself, not in
  examples or tests that may legitimately measure wall-clock time);
* suppression: a ``# lint: ignore[RULE001]`` comment on the offending line
  silences that rule there (``# lint: ignore`` with no bracket silences every
  rule on the line);
* traversal: directories are walked for ``*.py``, hidden directories and
  ``__pycache__`` are skipped.
"""

from __future__ import annotations

import ast
import os
import re
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, get_rules

#: ``# lint: ignore`` or ``# lint: ignore[DET001]`` or
#: ``# lint: ignore[DET001, UNIT001]`` anywhere in a line's comment trailer.
_SUPPRESS = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Z0-9_,\s]+)\])?")

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".mypy_cache", ".pytest_cache"})


class LintSyntaxError(Exception):
    """Raised when a linted file does not parse; carries the location."""

    def __init__(self, path: str, error: SyntaxError) -> None:
        line = error.lineno or 0
        super().__init__(f"{path}:{line}: syntax error: {error.msg}")
        self.path = path
        self.error = error


def is_library_path(path: str) -> bool:
    """Whether ``path`` is part of the ``repro`` package proper.

    Library code must not touch wall clocks or unseeded randomness; examples,
    benchmarks and tests are allowed to (they wrap the library, time it, and
    exercise failure modes).
    """
    parts = Path(path).parts
    return "repro" in parts and "tests" not in parts


def suppressed_rules(line: str) -> Optional[frozenset]:
    """Rule IDs suppressed by the comment on ``line``.

    Returns ``None`` when there is no suppression comment, an empty frozenset
    for a blanket ``# lint: ignore``, and the named IDs otherwise.
    """
    match = _SUPPRESS.search(line)
    if match is None:
        return None
    if match.group(1) is None:
        return frozenset()
    return frozenset(part.strip() for part in match.group(1).split(",") if part.strip())


def _is_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    if not (1 <= finding.line <= len(lines)):
        return False
    rules = suppressed_rules(lines[finding.line - 1])
    if rules is None:
        return False
    return not rules or finding.rule in rules


def lint_source(
    source: str,
    path: str,
    *,
    rules: Optional[Sequence[Rule]] = None,
    is_library: Optional[bool] = None,
) -> List[Finding]:
    """Lint a source string, returning sorted, suppression-filtered findings."""
    if rules is None:
        rules = get_rules(None)
    if is_library is None:
        is_library = is_library_path(path)
    try:
        ctx = FileContext.parse(source, path, is_library=is_library)
    except SyntaxError as error:
        raise LintSyntaxError(path, error) from error
    findings: List[Finding] = []
    for rule in rules:
        if rule.library_only and not is_library:
            continue
        findings.extend(rule.check(ctx))
    findings = [f for f in findings if not _is_suppressed(f, ctx.lines)]
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: str, *, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path, rules=rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a deterministic list of ``*.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS and not d.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        elif path.suffix == ".py":
            yield str(path)


def lint_paths(
    paths: Iterable[str], *, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint files and directory trees; findings come back globally sorted."""
    if rules is None:
        rules = get_rules(None)
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        findings.extend(lint_file(filename, rules=rules))
    findings.sort(key=Finding.sort_key)
    return findings


def parse_ok(source: str) -> bool:
    """Cheap syntax probe used by tests."""
    try:
        ast.parse(source)
    except SyntaxError:
        return False
    return True
