"""``python -m repro lint`` — the command-line front end of :mod:`repro.lint`.

Exit codes follow the ``compare`` subcommand's CI contract: 0 when clean (or
fully baselined), 1 when new findings exist, 2 for usage errors (unknown rule
IDs, malformed baseline files, unreadable paths).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import filter_baselined, load_baseline, write_baseline
from repro.lint.checker import lint_paths
from repro.lint.findings import Finding
from repro.lint.registry import all_rules, get_rules

#: Directories linted when no paths are given and they exist.
_DEFAULT_PATHS = ("src", "examples", "benchmarks")


def _default_paths() -> List[str]:
    existing = [path for path in _DEFAULT_PATHS if Path(path).exists()]
    return existing or ["."]


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        rules = all_rules()
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "id": rule.id,
                            "title": rule.title,
                            "library_only": rule.library_only,
                            "rationale": rule.rationale,
                        }
                        for rule in rules
                    ],
                    indent=2,
                )
            )
        else:
            for rule in rules:
                scope = " (library code only)" if rule.library_only else ""
                print(f"{rule.id}: {rule.title}{scope}")
        return 0

    rules = get_rules(args.rules.split(",") if args.rules else None)
    paths = args.paths or _default_paths()
    for path in paths:
        if not Path(path).exists():
            raise ValueError(f"no such file or directory: {path!r}")
    findings = lint_paths(paths, rules=rules)

    if args.update_baseline:
        if not args.baseline:
            raise ValueError("--update-baseline needs --baseline FILE")
        write_baseline(args.baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {args.baseline}",
            file=sys.stderr,
        )
        return 0

    baselined = 0
    if args.baseline:
        baseline = load_baseline(args.baseline)
        fresh = filter_baselined(findings, baseline)
        baselined = len(findings) - len(fresh)
        findings = fresh

    if args.json:
        print(json.dumps([finding.to_dict() for finding in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        summary = f"{len(findings)} finding(s)"
        if baselined:
            summary += f" ({baselined} baselined)"
        print(summary, file=sys.stderr)
    return 1 if findings else 0


def add_lint_parser(subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    parser = subparsers.add_parser(
        "lint",
        help="run the repro static-analysis rules over Python sources",
        description=(
            "AST-based checks for the invariants this codebase actually "
            "relies on: simulated time only (DET001), seeded randomness "
            "(DET002), sim.units byte sizes (UNIT001), valid spec paths "
            "(SPEC001) and metric names (METRIC001), frozen-dataclass "
            "discipline (FROZEN001), picklable campaign workers (PAR001)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src examples benchmarks)",
    )
    parser.add_argument("--json", action="store_true", help="emit findings as JSON")
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="run only these rule IDs (default: all registered rules)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.set_defaults(handler=_cmd_lint)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(prog="python -m repro.lint")
    subparsers = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(subparsers)
    args = parser.parse_args(["lint", *(argv if argv is not None else sys.argv[1:])])
    try:
        return args.handler(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
