"""SPEC001: dotted spec paths must resolve against the ScenarioSpec schema.

Grids, sweeps, CLI defaults, examples and tests all address scenario knobs by
dotted string path (``"serving.concurrency"``, ``"tiers.1.capacity"``).  The
schema only checks these when a run actually executes — three hours into a
campaign if the typo'd axis comes late.  This rule resolves every path-shaped
string literal against the real dataclass schema at lint time, via
:func:`repro.api.spec.spec_path_error`.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: A candidate spec path: lowercase dotted identifier segments (digits allowed
#: after the first segment, for tier indices).  Anything with spaces, ``=`` or
#: uppercase is prose or CLI syntax, not a path literal.
_PATH_SHAPE = re.compile(r"^[a-z_][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Only strings whose first segment names a spec section (or the ``tiers``
#: shorthand) are treated as spec paths; everything else — attribute paths,
#: module names, file names — is ignored.
_SPEC_ROOTS = frozenset({"model", "backend", "workload", "traffic", "serving", "tiers"})


@register
class SpecPathRule(Rule):
    """SPEC001: spec-path string literals must exist in the schema."""

    id = "SPEC001"
    title = "dotted spec path does not resolve against ScenarioSpec"
    rationale = (
        "Dotted paths like 'tiers.1.capacity' are only validated when a "
        "campaign runs.  Checking every path-shaped string literal against "
        "the ScenarioSpec dataclass schema catches typos (tiers.1.capactiy) "
        "and paths gone stale after a schema change at lint time."
    )
    library_only = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from repro.api.spec import spec_path_error

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant) or not isinstance(node.value, str):
                continue
            text = node.value
            if not _PATH_SHAPE.match(text):
                continue
            if text.partition(".")[0] not in _SPEC_ROOTS:
                continue
            error = spec_path_error(text)
            if error is not None:
                yield ctx.finding(self.id, node, error)
