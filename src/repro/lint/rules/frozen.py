"""FROZEN001: frozen dataclasses stay frozen; dataclass defaults stay immutable.

Specs (``ScenarioSpec`` and its sections, ``TierSpec``, ``CampaignSpec``) are
frozen dataclasses precisely so they can be hashed, memoised and shipped
across process boundaries.  ``object.__setattr__`` escapes the freeze — it is
the sanctioned idiom *inside* ``__post_init__`` normalisation and nowhere
else.  Plain ``self.x = ...`` in a frozen class raises at runtime, but only
on the first call that reaches it; mutable default fields silently share
state across instances (or crash at class-definition time for list/dict/set).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.context import FileContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Methods of a frozen dataclass that may legitimately use object.__setattr__
#: on ``self`` (construction/normalisation and unpickling).
_SETATTR_OK_METHODS = frozenset({"__post_init__", "__init__", "__new__", "__setstate__"})

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _dataclass_decoration(node: ast.ClassDef) -> Optional[ast.AST]:
    """The ``@dataclass`` decorator node of a class, or ``None``."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return decorator
    return None


def _is_frozen(decorator: ast.AST) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is True
    return False


def _enclosing_function(ctx: FileContext, node: ast.AST) -> Optional[ast.FunctionDef]:
    for parent in ctx.ancestors(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return parent  # type: ignore[return-value]
    return None


@register
class FrozenDataclassRule(Rule):
    """FROZEN001: no frozen-instance mutation, no mutable dataclass defaults."""

    id = "FROZEN001"
    title = "frozen-dataclass mutation or mutable default field"
    rationale = (
        "Frozen specs are hashed (spec_hash) and memoised (ExperimentStore); "
        "mutating one after construction silently invalidates its hash.  "
        "object.__setattr__ is the escape hatch for __post_init__ "
        "normalisation only.  Mutable defaults ([]/{}/set()) share one "
        "instance across every dataclass instance."
    )
    library_only = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        frozen_methods: Set[ast.AST] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                decorator = _dataclass_decoration(node)
                if decorator is None:
                    continue
                frozen = _is_frozen(decorator)
                for statement in node.body:
                    if frozen and isinstance(
                        statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        frozen_methods.add(statement)
                        yield from self._check_self_assignment(ctx, node, statement)
                    yield from self._check_mutable_default(ctx, node, statement)
        yield from self._check_setattr_calls(ctx, frozen_methods)

    # ------------------------------------------------------------ sub-checks
    def _check_self_assignment(
        self, ctx: FileContext, cls: ast.ClassDef, method: ast.AST
    ) -> Iterator[Finding]:
        """``self.x = ...`` in a frozen dataclass method raises at runtime."""
        assert isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
        # Plain assignment raises FrozenInstanceError in *every* method of a
        # frozen dataclass, __post_init__ included — only object.__setattr__
        # is sanctioned there — so no method is exempt here.
        if not method.args.args:
            return
        self_name = method.args.args[0].arg
        for node in ast.walk(method):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"assignment to {self_name}.{target.attr} in frozen "
                        f"dataclass {cls.name}.{method.name}; frozen instances "
                        f"raise FrozenInstanceError — use dataclasses.replace "
                        f"(or object.__setattr__ inside __post_init__)",
                    )

    def _check_mutable_default(
        self, ctx: FileContext, cls: ast.ClassDef, statement: ast.stmt
    ) -> Iterator[Finding]:
        """Mutable defaults on dataclass fields (`x: List[int] = []`)."""
        # Dataclass fields are exactly the annotated assignments; a bare
        # ``x = []`` in the class body is a (shared) class attribute, not a
        # field, and stays out of scope here.
        if not (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
        ):
            return
        default: Optional[ast.AST] = statement.value
        field_name = statement.target.id
        if default is None:
            return
        mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
            isinstance(default, ast.Call)
            and dotted_name(default.func) in _MUTABLE_CALLS
            and not default.args
            and not default.keywords
        )
        if isinstance(default, ast.Call):
            name = dotted_name(default.func)
            if name in ("field", "dataclasses.field"):
                for keyword in default.keywords:
                    if keyword.arg == "default" and (
                        isinstance(keyword.value, (ast.List, ast.Dict, ast.Set))
                        or (
                            isinstance(keyword.value, ast.Call)
                            and dotted_name(keyword.value.func) in _MUTABLE_CALLS
                        )
                    ):
                        mutable = True
        if mutable:
            yield ctx.finding(
                self.id,
                statement,
                f"mutable default for dataclass field {cls.name}.{field_name}; "
                f"use field(default_factory=...)",
            )

    def _check_setattr_calls(
        self, ctx: FileContext, frozen_methods: Set[ast.AST]
    ) -> Iterator[Finding]:
        """``object.__setattr__`` anywhere but frozen ``__post_init__`` et al."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "object.__setattr__":
                continue
            method = _enclosing_function(ctx, node)
            if (
                method is not None
                and method in frozen_methods
                and method.name in _SETATTR_OK_METHODS
            ):
                continue
            where = f" (in {method.name})" if method is not None else ""
            yield ctx.finding(
                self.id,
                node,
                f"object.__setattr__ outside a frozen dataclass's "
                f"__post_init__/__setstate__{where}; this bypasses the freeze "
                f"— use dataclasses.replace to derive a new instance",
            )
