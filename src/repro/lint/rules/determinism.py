"""Determinism rules: simulated time and seeded randomness only.

The whole repository's correctness story rests on bit-identical replay: the
parity tests, the experiment store's spec-hash memoisation and the campaign
executor's parallel-equals-serial guarantee all assume a scenario is a pure
function of its spec.  Wall-clock reads and unseeded randomness are the two
ways library code silently breaks that.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Wall-clock entry points.  ``time.sleep`` is included: blocking the host
#: thread is never how simulated time advances.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: The audited wall-clock allow-list: modules whose *whole purpose* is host
#: wall-clock measurement (observability profiling).  Exactly one module is
#: allowed; everything else must route wall reads through it (its API returns
#: values that may only shape profiling output, never simulated results).
WALL_CLOCK_ALLOWED_SUFFIXES = ("repro/obs/profile.py",)

#: Module-level numpy RNG entry points (the legacy global stream).
_NUMPY_GLOBAL_RANDOM = frozenset(
    {
        "numpy.random.seed",
        "numpy.random.random",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random_sample",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
        "numpy.random.poisson",
        "numpy.random.exponential",
        "numpy.random.zipf",
        "numpy.random.binomial",
        "numpy.random.gamma",
        "numpy.random.beta",
    }
)


@register
class WallClockRule(Rule):
    """DET001: simulation/serving code must not read the wall clock."""

    id = "DET001"
    title = "wall-clock time in simulation code"
    rationale = (
        "Results must be a pure function of the ScenarioSpec.  All simulated "
        "time flows from sim.clock.SimClock / sim.events.Simulator; a "
        "time.time()/monotonic()/datetime.now() read couples results to the "
        "machine that produced them and breaks bit-identical replay, parity "
        "tests and store-served campaign resume.  The single audited "
        "exception is repro/obs/profile.py, the wall-clock module of the "
        "observability layer (WALL_CLOCK_ALLOWED_SUFFIXES)."
    )
    library_only = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        posix_path = PurePath(ctx.path).as_posix()
        if any(posix_path.endswith(suffix) for suffix in WALL_CLOCK_ALLOWED_SUFFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve_imported_call(node)
            if qualified in WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self.id,
                    node,
                    f"wall-clock call {qualified}(); simulated time must come "
                    f"from sim.clock.SimClock / the Simulator event loop",
                )


@register
class UnseededRandomRule(Rule):
    """DET002: randomness must flow from ``sim.rng.make_rng``."""

    id = "DET002"
    title = "unseeded or global-stream randomness"
    rationale = (
        "Seeded replicates and cross-process campaign determinism need every "
        "random stream derived from the experiment seed via "
        "sim.rng.make_rng(seed, *keys).  The stdlib `random` module, numpy's "
        "module-level random functions and an argument-less default_rng() all "
        "draw from process-global or entropy-seeded state."
    )
    library_only = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve_imported_call(node)
            if qualified is None:
                continue
            if qualified.startswith("random."):
                yield ctx.finding(
                    self.id,
                    node,
                    f"stdlib {qualified}() uses the process-global random "
                    f"stream; derive a generator with sim.rng.make_rng",
                )
            elif qualified in _NUMPY_GLOBAL_RANDOM:
                yield ctx.finding(
                    self.id,
                    node,
                    f"module-level {qualified}() uses numpy's global stream; "
                    f"derive a generator with sim.rng.make_rng",
                )
            elif qualified == "numpy.random.RandomState":
                yield ctx.finding(
                    self.id,
                    node,
                    "legacy numpy.random.RandomState; derive a Generator with "
                    "sim.rng.make_rng",
                )
            elif qualified == "numpy.random.default_rng" and not (
                node.args or node.keywords
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    "default_rng() without a seed draws from OS entropy; "
                    "derive the generator with sim.rng.make_rng(seed, *keys)",
                )
