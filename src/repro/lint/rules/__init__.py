"""Built-in lint rules.

Importing this package registers every rule with :mod:`repro.lint.registry`
(each module applies the ``@register`` decorator at import time).
"""

from __future__ import annotations

from repro.lint.rules import determinism as _determinism
from repro.lint.rules import frozen as _frozen
from repro.lint.rules import metrics as _metrics
from repro.lint.rules import parallel as _parallel
from repro.lint.rules import spec_paths as _spec_paths
from repro.lint.rules import units as _units

__all__ = [
    "_determinism",
    "_frozen",
    "_metrics",
    "_parallel",
    "_spec_paths",
    "_units",
]
