"""UNIT001: byte sizes go through ``repro.sim.units``.

Two failure modes, one rule:

* magic byte-size literals (``4096``, ``1 << 30``, ``1024 * 1024``) in a
  byte-sized position — the reader cannot tell 4 KiB from a typo'd 4 MB, and
  a GiB written as ``1e9`` silently loses 7%;
* decimal/binary unit *mixing* inside one arithmetic expression
  (``4 * GB + 2 * GIB``) — almost always one of the two is wrong.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Set

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

DECIMAL_UNITS = frozenset({"KB", "MB", "GB", "TB"})
BINARY_UNITS = frozenset({"KIB", "MIB", "GIB", "TIB"})

#: Exact literals that are almost certainly a byte size written by hand, and
#: the ``sim.units`` spelling they should use.
MAGIC_SIZES = {
    1024: "KIB",
    4096: "4 * KIB",
    8192: "8 * KIB",
    65536: "64 * KIB",
    1024**2: "MIB",
    1024**3: "GIB",
    1024**4: "TIB",
    1_000: "KB",
    1_000_000: "MB",
    1_000_000_000: "GB",
    1_000_000_000_000: "TB",
}

#: Identifier fragments that mark a byte-sized value.  Deliberately narrow:
#: a bare "size" would also match counts like ``batch_size``.
_BYTE_NAME = re.compile(r"(bytes|capacity|footprint|budget)", re.IGNORECASE)

#: The module that *defines* the unit constants is allowed to spell them out.
_UNITS_MODULE_SUFFIXES = ("sim/units.py", "sim\\units.py")


def _context_name(ctx: FileContext, node: ast.AST) -> Optional[str]:
    """The nearest name this expression is bound to or passed as.

    Climbs to the closest assignment target, keyword argument, annotated
    field, function-parameter default or comparison partner and returns its
    identifier, so the rule only fires where the *name* says "this is a byte
    count".
    """
    child = node
    for parent in ctx.ancestors(node):
        if isinstance(parent, ast.keyword):
            return parent.arg
        if isinstance(parent, (ast.Assign, ast.AugAssign)):
            targets = parent.targets if isinstance(parent, ast.Assign) else [parent.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    return target.id
                if isinstance(target, ast.Attribute):
                    return target.attr
            return None
        if isinstance(parent, ast.AnnAssign):
            if isinstance(parent.target, ast.Name):
                return parent.target.id
            if isinstance(parent.target, ast.Attribute):
                return parent.target.attr
            return None
        if isinstance(parent, ast.arguments):
            # ``child`` is a parameter default; find which parameter.
            for args, defaults in (
                (parent.posonlyargs + parent.args, parent.defaults),
                (parent.kwonlyargs, parent.kw_defaults),
            ):
                anchored = args[len(args) - len(defaults) :] if defaults else []
                for arg, default in zip(anchored, defaults):
                    if default is child:
                        return arg.arg
            return None
        if isinstance(parent, ast.Compare):
            names = [
                name
                for comparand in [parent.left, *parent.comparators]
                for name in [_identifier(comparand)]
                if name is not None
            ]
            return names[0] if names else None
        if isinstance(parent, (ast.BinOp, ast.UnaryOp, ast.IfExp, ast.Tuple, ast.List)):
            child = parent
            continue
        return None
    return None


def _identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _magic_value(node: ast.AST) -> Optional[int]:
    """The integer value of a hand-written size idiom, if this is one.

    Matches plain int literals, ``1 << N`` shifts and pure products of int
    literals (``1024 * 1024``); anything containing a Name is someone already
    using constants and is left alone.
    """
    if isinstance(node, ast.Constant):
        return node.value if type(node.value) is int else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.LShift, ast.Mult, ast.Pow)):
        left = _magic_value(node.left)
        right = _magic_value(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.LShift):
            return left << right if right < 64 else None
        if isinstance(node.op, ast.Pow):
            return left**right if abs(right) < 64 else None
        return left * right
    return None


@register
class ByteUnitsRule(Rule):
    """UNIT001: magic byte sizes and decimal/binary unit mixing."""

    id = "UNIT001"
    title = "byte sizes must go through sim.units"
    rationale = (
        "All sizes are bytes-as-ints with constants (KIB/MIB/GIB, KB/MB/GB) "
        "and parse_size() in repro.sim.units.  Hand-written literals invite "
        "GiB/GB confusion (a 'GB' written as 1 << 30 overstates by 7%), and "
        "mixing decimal with binary units in one expression is almost always "
        "a bug."
    )
    library_only = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path.replace("\\", "/").endswith("sim/units.py"):
            return
        flagged: Set[ast.AST] = set()
        for node in ast.walk(ctx.tree):
            # -- magic literal / idiom in a byte-named position ------------
            # Only evaluate at expression roots: a literal *inside* a BinOp
            # is either part of a larger literal idiom (reported at the root)
            # or a multiplier of a named constant (``1000 * GB`` — already
            # using units, leave it alone).
            value = None
            if isinstance(node, (ast.Constant, ast.BinOp)) and not isinstance(
                ctx.parent(node), ast.BinOp
            ):
                value = _magic_value(node)
            if value is not None and value in MAGIC_SIZES and node not in flagged:
                name = _context_name(ctx, node)
                if name is not None and _BYTE_NAME.search(name):
                    flagged.add(node)
                    yield ctx.finding(
                        self.id,
                        node,
                        f"magic byte size {value} bound to {name!r}; use "
                        f"sim.units ({MAGIC_SIZES[value]}) or parse_size()",
                    )
            # -- decimal/binary mixing in one expression -------------------
            if isinstance(node, ast.BinOp):
                parent = ctx.parent(node)
                if isinstance(parent, ast.BinOp):
                    continue  # only report once, at the expression root
                names = {
                    sub.id
                    for sub in ast.walk(node)
                    if isinstance(sub, ast.Name)
                }
                decimal = sorted(names & DECIMAL_UNITS)
                binary = sorted(names & BINARY_UNITS)
                if decimal and binary:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"expression mixes decimal ({', '.join(decimal)}) and "
                        f"binary ({', '.join(binary)}) byte units; pick one "
                        f"family",
                    )
