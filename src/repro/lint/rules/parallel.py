"""PAR001: work shipped to worker processes must be picklable.

The campaign executor's contract is that every point travels as plain data to
a top-level worker function.  Lambdas and closures defined inside another
function do not pickle; handing one to ``ProcessPoolExecutor.submit/map`` (or
``multiprocessing`` pools / ``Process(target=...)``) fails only at runtime —
and with the executor's serial fallback, sometimes only on the machines that
*can* fork.  This rule catches the pattern statically.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.lint.context import FileContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Method names that ship their first callable argument to another process,
#: on receivers whose name suggests a process pool.
_POOL_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply", "apply_async", "starmap"}
)

#: Receiver-name fragments that mark a process pool or executor.
_POOL_RECEIVERS = ("pool", "executor")

#: Direct constructors whose ``target=`` runs in a child process.
_PROCESS_TARGETS = frozenset({"Process", "multiprocessing.Process"})


def _local_functions(tree: ast.Module) -> Dict[str, ast.AST]:
    """Names of functions defined *inside* another function (closures)."""
    local: Dict[str, ast.AST] = {}

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if self.depth > 0:
                local[node.name] = node
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    Visitor().visit(tree)
    return local


@register
class UnpicklableWorkerRule(Rule):
    """PAR001: no lambdas/closures handed to process pools."""

    id = "PAR001"
    title = "unpicklable callable shipped to a worker process"
    rationale = (
        "run_campaign workers receive plain spec dicts and a *top-level* "
        "function — that is what makes parallel campaigns identical to "
        "serial ones.  A lambda or nested function passed to a process "
        "pool's submit/map (or a Process target) cannot be pickled and "
        "fails only at runtime, on hosts that can actually fork."
    )
    library_only = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        local_functions = _local_functions(ctx.tree)
        reported: Set[ast.AST] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            candidate = self._worker_argument(node)
            if candidate is None or candidate in reported:
                continue
            if isinstance(candidate, ast.Lambda):
                reported.add(candidate)
                yield ctx.finding(
                    self.id,
                    candidate,
                    "lambda shipped to a worker process cannot be pickled; "
                    "define a top-level function instead",
                )
            elif (
                isinstance(candidate, ast.Name)
                and candidate.id in local_functions
            ):
                reported.add(candidate)
                yield ctx.finding(
                    self.id,
                    candidate,
                    f"closure {candidate.id!r} (defined inside another "
                    f"function) shipped to a worker process cannot be "
                    f"pickled; move it to module level",
                )

    @staticmethod
    def _worker_argument(node: ast.Call) -> Optional[ast.AST]:
        """The callable this call would ship cross-process, if any."""
        name = dotted_name(node.func)
        # pool.submit(fn, ...) / executor.map(fn, ...)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_METHODS
        ):
            receiver = dotted_name(node.func.value)
            if receiver is not None and any(
                fragment in receiver.lower() for fragment in _POOL_RECEIVERS
            ):
                if node.args:
                    return node.args[0]
                for keyword in node.keywords:
                    if keyword.arg in ("fn", "func", "function"):
                        return keyword.value
        # Process(target=fn) / multiprocessing.Process(target=fn)
        if name in _PROCESS_TARGETS:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    return keyword.value
        return None
