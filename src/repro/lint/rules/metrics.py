"""METRIC001: metric names must exist on ``ScenarioResult``.

Metric strings reach the result schema by two different routes:

* *field* names (``"achieved_qps"``) passed to :func:`sweep_table` /
  :func:`campaign_table` — checked against the ``ScenarioResult`` dataclass
  fields via :func:`repro.api.results.scenario_metric_error`;
* *result-dict* paths (``"latency_seconds.p99"``) passed to
  :func:`compare_runs` / ``MetricSpec`` — checked against the ``to_dict``
  schema via :func:`repro.api.results.metric_path_error` (an optional
  ``:higher``/``:lower`` direction suffix is stripped first).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.context import FileContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Callables taking ScenarioResult *field* names, with the positions/keywords
#: the metric strings travel in.
_FIELD_METRIC_CALLS = {
    "sweep_table": (1, ("metric",)),
    "campaign_table": (1, ("metric", "metrics")),
}

#: Callables taking result-dict *paths* (MetricSpec form).
_PATH_METRIC_CALLS = {
    "compare_runs": (None, ("metrics",)),
    "MetricSpec.parse": (0, ()),
    "MetricSpec": (0, ("path",)),
}


def _string_constants(node: ast.AST) -> List[ast.Constant]:
    """String literals inside ``node``: itself, or the items of a literal
    list/tuple/set (non-literal elements are simply skipped)."""
    if isinstance(node, ast.Constant):
        return [node] if isinstance(node.value, str) else []
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return [
            element
            for element in node.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        ]
    return []


@register
class MetricNameRule(Rule):
    """METRIC001: metric strings must name real ScenarioResult metrics."""

    id = "METRIC001"
    title = "unknown ScenarioResult metric name"
    rationale = (
        "sweep_table/campaign_table metrics must be ScenarioResult fields and "
        "compare_runs metrics must be addressable result-dict paths.  Both "
        "are only validated when the (expensive) run reaches the reporting "
        "step; this rule checks the literals against the schema statically."
    )
    library_only = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from repro.api.results import metric_path_error, scenario_metric_error

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            tail = name.split(".")[-1]
            dotted_tail = ".".join(name.split(".")[-2:])
            for table, (position, keywords) in _FIELD_METRIC_CALLS.items():
                if tail != table:
                    continue
                for constant in self._metric_arguments(node, position, keywords):
                    error = scenario_metric_error(constant.value)
                    if error is not None:
                        yield ctx.finding(self.id, constant, error)
            for target, (position, keywords) in _PATH_METRIC_CALLS.items():
                if name != target and dotted_tail != target and tail != target:
                    continue
                for constant in self._metric_arguments(node, position, keywords):
                    path = constant.value.partition(":")[0]
                    direction = constant.value.partition(":")[2]
                    if direction and direction not in ("higher", "lower"):
                        yield ctx.finding(
                            self.id,
                            constant,
                            f"metric direction must be 'higher' or 'lower': "
                            f"{constant.value!r}",
                        )
                        continue
                    error = metric_path_error(path)
                    if error is not None:
                        yield ctx.finding(self.id, constant, error)
                break  # a call matches at most one path-metric signature

    @staticmethod
    def _metric_arguments(node, position, keywords):
        candidates: List[ast.AST] = []
        if position is not None and len(node.args) > position:
            candidates.append(node.args[position])
        for keyword in node.keywords:
            if keyword.arg in keywords:
                candidates.append(keyword.value)
        found: List[ast.Constant] = []
        for candidate in candidates:
            found.extend(_string_constants(candidate))
        return found
