"""Baseline files: adopt the linter without fixing the world first.

A baseline is a JSON file mapping :meth:`Finding.baseline_key` → count.  The
key hashes rule + path + offending source snippet but *not* the line number,
so unrelated edits that shift a baselined finding up or down the file do not
resurrect it — while a second copy of the same pattern in the same file still
fails (count exceeded).

``python -m repro lint --baseline lint-baseline.json`` reports only findings
beyond the baselined counts; ``--update-baseline`` rewrites the file from the
current findings.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.findings import Finding

_VERSION = 1


def load_baseline(path: str) -> Dict[str, int]:
    """Load a baseline file; a missing file is an empty baseline."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return {}
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(f"{path}: not a repro lint baseline (version {_VERSION})")
    entries = data.get("findings", {})
    if not isinstance(entries, dict):
        raise ValueError(f"{path}: malformed 'findings' section")
    return {str(key): int(count) for key, count in entries.items()}


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write the baseline for the current findings (sorted, stable output)."""
    counts = Counter(finding.baseline_key() for finding in findings)
    payload = {
        "version": _VERSION,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def filter_baselined(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> List[Finding]:
    """Findings not covered by the baseline.

    Each baseline entry absorbs up to its recorded count of matching
    findings; any copies beyond that are returned as new.
    """
    remaining = dict(baseline)
    fresh: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh
