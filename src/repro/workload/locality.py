"""Temporal and spatial locality analysis of embedding access traces.

Implements the two analyses of section 4.2:

* **Temporal locality** (Figure 4): the cumulative distribution of accesses
  over rows ordered by popularity.  A power-law trace shows a small fraction
  of rows absorbing the majority of accesses.
* **Spatial locality** (Figure 5): the ratio of unique indices to unique
  4 KiB blocks touched within an access window, normalised by the number of
  rows per block.  1.0 means every touched block was fully utilised (high
  spatial locality); values near ``1 / rows_per_block`` mean each access hit
  a different block (no spatial locality).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def temporal_locality_cdf(accesses: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative access share of rows ordered from hottest to coldest.

    Returns ``(unique_row_fraction, access_fraction)`` arrays: the y value at
    x = 0.1 is the share of accesses absorbed by the hottest 10% of the
    *accessed* rows.
    """
    trace = np.asarray(list(accesses), dtype=np.int64)
    if trace.size == 0:
        raise ValueError("access trace is empty")
    _, counts = np.unique(trace, return_counts=True)
    counts = np.sort(counts)[::-1]
    access_fraction = np.cumsum(counts) / trace.size
    unique_fraction = np.arange(1, counts.size + 1) / counts.size
    return unique_fraction, access_fraction


def top_fraction_coverage(accesses: Sequence[int], fraction: float) -> float:
    """Share of accesses covered by the hottest ``fraction`` of accessed rows."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1]: {fraction}")
    unique_fraction, access_fraction = temporal_locality_cdf(accesses)
    position = int(np.searchsorted(unique_fraction, fraction, side="left"))
    position = min(position, access_fraction.size - 1)
    return float(access_fraction[position])


def spatial_locality_ratio(accesses: Sequence[int], rows_per_block: int) -> float:
    """Spatial locality proxy of one access window (paper Figure 5).

    ``ratio = (unique indices / unique blocks) / rows_per_block`` so 1.0 is
    perfect spatial locality and ``1 / rows_per_block`` is none.
    """
    if rows_per_block <= 0:
        raise ValueError(f"rows_per_block must be positive: {rows_per_block}")
    trace = np.asarray(list(accesses), dtype=np.int64)
    if trace.size == 0:
        raise ValueError("access trace is empty")
    unique_indices = np.unique(trace)
    unique_blocks = np.unique(unique_indices // rows_per_block)
    ratio = unique_indices.size / unique_blocks.size / rows_per_block
    return float(min(ratio, 1.0))


def spatial_locality_windows(
    accesses: Sequence[int],
    rows_per_block: int,
    num_windows: int = 10,
) -> List[float]:
    """Per-window spatial locality ratios (one row of the Figure 5 heat map)."""
    if num_windows <= 0:
        raise ValueError(f"num_windows must be positive: {num_windows}")
    trace = list(accesses)
    if not trace:
        raise ValueError("access trace is empty")
    window_size = max(len(trace) // num_windows, 1)
    ratios: List[float] = []
    for start in range(0, len(trace), window_size):
        window = trace[start : start + window_size]
        if not window:
            continue
        ratios.append(spatial_locality_ratio(window, rows_per_block))
    return ratios[:num_windows]
