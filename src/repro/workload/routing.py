"""Query routing across serving hosts.

Inference queries pass through a scheduler/aggregator that picks a host.  The
paper observes (Figure 4c) that a *user-sticky* policy -- always routing a
given user to the same host -- raises the temporal locality each host sees,
and therefore the SM cache hit rate, compared to random routing.
"""

from __future__ import annotations

import enum
import zlib
from collections import defaultdict
from typing import Dict, List, Sequence

from repro.dlrm.inference import Query
from repro.sim.rng import make_rng


class RoutingPolicy(str, enum.Enum):
    """Host selection policies."""

    RANDOM = "random"
    USER_STICKY = "user_sticky"


class RequestRouter:
    """Routes queries to one of ``num_hosts`` serving hosts."""

    def __init__(self, num_hosts: int, policy: RoutingPolicy = RoutingPolicy.USER_STICKY, seed: int = 0) -> None:
        if num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive: {num_hosts}")
        self.num_hosts = num_hosts
        self.policy = RoutingPolicy(policy)
        self._rng = make_rng(seed, "router", num_hosts)

    def route(self, query: Query) -> int:
        """Return the host index serving ``query``."""
        if self.policy is RoutingPolicy.RANDOM:
            return int(self._rng.integers(self.num_hosts))
        # Stable hash of the user id so the same user always lands on the
        # same host across runs and processes.
        digest = zlib.crc32(str(query.user_id).encode("utf-8"))
        return digest % self.num_hosts

    def split(self, queries: Sequence[Query]) -> Dict[int, List[Query]]:
        """Partition a query stream by serving host."""
        per_host: Dict[int, List[Query]] = defaultdict(list)
        for query in queries:
            per_host[self.route(query)].append(query)
        return dict(per_host)
