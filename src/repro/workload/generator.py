"""Query stream generation for a DLRM model.

Generates :class:`~repro.dlrm.inference.Query` objects whose sparse index
lists follow per-table Zipf distributions, with a configurable probability of
repeating a previously issued index sequence (which is what gives the pooled
embedding cache of section 4.4 its ~5% full-sequence hit rate) and a Zipf
user population (which is what user-sticky routing exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dlrm.embedding import EmbeddingTableSpec
from repro.dlrm.inference import Query
from repro.dlrm.model import DLRMModel
from repro.sim.rng import make_rng
from repro.workload.zipf import ZipfGenerator


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the synthetic query stream.

    Attributes
    ----------
    item_batch:
        Number of candidate items ranked per query (B_I).  User batch is
        always 1 for inference, per the paper.
    num_users:
        Size of the user population; user ids are drawn Zipf-distributed.
    user_zipf_alpha:
        Skew of the user popularity distribution.
    sequence_repeat_probability:
        Probability that a user-table index sequence repeats a previously
        generated sequence verbatim (drives pooled-embedding-cache hits).
    sequence_pool_size:
        How many past sequences per table are eligible for repetition.
    user_reuse_probability:
        Probability that a returning user re-issues the same user-table index
        sequence it used before (a user's categorical features are mostly
        stable between queries).  This is what makes user-sticky routing
        raise per-host temporal locality (Figure 4c).
    pooling_factor_jitter:
        Relative jitter applied to each table's average pooling factor.
    """

    item_batch: int = 10
    num_users: int = 10_000
    user_zipf_alpha: float = 1.1
    sequence_repeat_probability: float = 0.05
    sequence_pool_size: int = 256
    user_reuse_probability: float = 0.8
    pooling_factor_jitter: float = 0.3

    def __post_init__(self) -> None:
        if self.item_batch <= 0:
            raise ValueError(f"item_batch must be positive: {self.item_batch}")
        if self.num_users <= 0:
            raise ValueError(f"num_users must be positive: {self.num_users}")
        if not 0.0 <= self.sequence_repeat_probability <= 1.0:
            raise ValueError(
                "sequence_repeat_probability must be a probability: "
                f"{self.sequence_repeat_probability}"
            )
        if not 0.0 <= self.user_reuse_probability <= 1.0:
            raise ValueError(
                f"user_reuse_probability must be a probability: {self.user_reuse_probability}"
            )
        if self.sequence_pool_size <= 0:
            raise ValueError(f"sequence_pool_size must be positive: {self.sequence_pool_size}")
        if not 0.0 <= self.pooling_factor_jitter < 1.0:
            raise ValueError(
                f"pooling_factor_jitter must be in [0, 1): {self.pooling_factor_jitter}"
            )


ARRIVAL_PROCESSES = ("poisson", "constant", "trace")


def generate_arrival_times(
    num_queries: int,
    process: str = "poisson",
    offered_qps: Optional[float] = None,
    seed: int = 0,
    trace: Optional[Sequence[float]] = None,
    start_time: float = 0.0,
) -> np.ndarray:
    """Absolute arrival timestamps for an open-loop query stream.

    ``poisson`` draws exponential inter-arrival gaps at rate ``offered_qps``
    (seeded via :func:`repro.sim.rng.make_rng`, so streams are reproducible),
    ``constant`` spaces arrivals exactly ``1/offered_qps`` apart, and
    ``trace`` replays the first ``num_queries`` timestamps of a recorded
    ``trace`` (which must be non-negative and non-decreasing).  Returns a
    float64 ndarray, so million-query schedules stay one contiguous buffer.
    """
    if num_queries <= 0:
        raise ValueError(f"num_queries must be positive: {num_queries}")
    if start_time < 0:
        raise ValueError(f"start_time must be non-negative: {start_time}")
    if process not in ARRIVAL_PROCESSES:
        raise ValueError(
            f"unknown arrival process {process!r}; known: {list(ARRIVAL_PROCESSES)}"
        )
    if process == "trace":
        if trace is None or len(trace) < num_queries:
            raise ValueError(
                f"trace arrivals need at least num_queries ({num_queries}) "
                f"timestamps, got {0 if trace is None else len(trace)}"
            )
        times = start_time + np.asarray(trace[:num_queries], dtype=np.float64)
        if bool((times < 0).any()):
            raise ValueError(
                f"trace timestamps must be non-negative: {float(times.min())}"
            )
        if bool((np.diff(times) < 0).any()):
            raise ValueError("trace timestamps must be non-decreasing")
        return times
    if offered_qps is None or offered_qps <= 0:
        raise ValueError(
            f"{process} arrivals need a positive offered_qps: {offered_qps}"
        )
    if process == "constant":
        return start_time + np.arange(num_queries, dtype=np.float64) / offered_qps
    rng = make_rng(seed, "arrivals", process)
    gaps = rng.exponential(1.0 / offered_qps, size=num_queries)
    return start_time + np.cumsum(gaps) - gaps[0]


class QueryGenerator:
    """Generates reproducible query streams for a model.

    Randomness is organised as one named :func:`~repro.sim.rng.make_rng`
    stream per draw *purpose* (reuse decisions, sequence-repeat decisions,
    pooling jitter, pool positions, dense features), and every query consumes
    a fixed number of draws from each — decisions read pre-drawn uniforms
    instead of branching on whether to draw.  That layout makes
    :meth:`generate` one batched NumPy draw per purpose for the whole stream,
    while ``generate(n)`` stays exactly ``[generate_query() for _ in
    range(n)]``: NumPy generators produce the same value sequence whatever
    the request chunking, so only the loop overhead changes.
    """

    def __init__(
        self,
        model: DLRMModel,
        config: Optional[WorkloadConfig] = None,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.config = config if config is not None else WorkloadConfig()
        self.seed = seed
        name = model.name
        self._reuse_rng = make_rng(seed, "query-generator", name, "user-reuse")
        self._repeat_rng = make_rng(seed, "query-generator", name, "sequence-repeat")
        self._jitter_rng = make_rng(seed, "query-generator", name, "pooling-jitter")
        self._pool_rng = make_rng(seed, "query-generator", name, "pool-position")
        self._dense_rng = make_rng(seed, "query-generator", name, "dense-features")
        self._user_ids = ZipfGenerator(
            self.config.num_users, self.config.user_zipf_alpha, seed=seed
        )
        self._table_generators: Dict[str, ZipfGenerator] = {}
        for spec in model.table_specs:
            self._table_generators[spec.name] = ZipfGenerator(
                spec.num_rows, spec.zipf_alpha, seed=seed
            )
        self._sequence_pools: Dict[str, List[List[int]]] = {
            spec.name: [] for spec in model.table_specs
        }
        # Remembered user-table index sequences per user id, so a returning
        # user re-issues (mostly) the same categorical features.
        self._user_memory: Dict[int, Dict[str, List[int]]] = {}
        self._next_query_id = 0

    # ---------------------------------------------------------------- helpers
    def _pooling_count(self, spec: EmbeddingTableSpec, jitter_draw: float) -> int:
        factor = spec.avg_pooling_factor * (
            1.0 + self.config.pooling_factor_jitter * jitter_draw
        )
        count = max(int(round(factor)), 1)
        return min(count, spec.num_rows)

    def _indices_for_table(
        self,
        spec: EmbeddingTableSpec,
        repeat_draw: float,
        jitter_draw: float,
        pick_draw: float,
        replace_draw: float,
    ) -> List[int]:
        """One table-sequence slot, driven entirely by pre-drawn uniforms."""
        pool = self._sequence_pools[spec.name]
        if pool and repeat_draw < self.config.sequence_repeat_probability:
            return list(pool[min(int(pick_draw * len(pool)), len(pool) - 1)])
        count = self._pooling_count(spec, jitter_draw)
        indices = self._table_generators[spec.name].sample(count, unique=True).tolist()
        if len(pool) >= self.config.sequence_pool_size:
            pool[min(int(replace_draw * len(pool)), len(pool) - 1)] = indices
        else:
            pool.append(indices)
        return list(indices)

    # -------------------------------------------------------------------- API
    def generate_query(self, item_batch: Optional[int] = None) -> Query:
        """Generate the next query in the stream."""
        return self.generate(1, item_batch)[0]

    def generate(self, num_queries: int, item_batch: Optional[int] = None) -> List[Query]:
        """Generate a list of queries with one batched RNG draw per purpose."""
        if num_queries <= 0:
            raise ValueError(f"num_queries must be positive: {num_queries}")
        batch = item_batch if item_batch is not None else self.config.item_batch
        if batch <= 0:
            raise ValueError(f"item_batch must be positive: {batch}")
        user_specs = self.model.user_table_specs
        item_specs = self.model.item_table_specs
        num_user = len(user_specs)
        # One sequence slot per user table plus one per (item table, batch
        # position); every slot consumes its repeat/jitter/pool draws whether
        # or not the decision path uses them, so the counts are static.
        slots = num_user + len(item_specs) * batch
        count = num_queries
        user_id_draws = self._user_ids.sample(count)
        reuse_draws = self._reuse_rng.random((count, num_user))
        repeat_draws = self._repeat_rng.random((count, slots))
        jitter_draws = self._jitter_rng.uniform(-1.0, 1.0, (count, slots))
        pool_draws = self._pool_rng.random((count, slots, 2))
        dense_draws = self._dense_rng.normal(
            0.0, 1.0, (count, self.model.dense_dim)
        ).astype(np.float32)

        queries: List[Query] = []
        for position in range(count):
            user_id = int(user_id_draws[position])
            remembered = self._user_memory.setdefault(user_id, {})
            user_indices: Dict[str, List[int]] = {}
            for slot, spec in enumerate(user_specs):
                reuse = (
                    spec.name in remembered
                    and reuse_draws[position, slot] < self.config.user_reuse_probability
                )
                if reuse:
                    user_indices[spec.name] = list(remembered[spec.name])
                else:
                    indices = self._indices_for_table(
                        spec,
                        repeat_draws[position, slot],
                        jitter_draws[position, slot],
                        pool_draws[position, slot, 0],
                        pool_draws[position, slot, 1],
                    )
                    remembered[spec.name] = list(indices)
                    user_indices[spec.name] = indices
            item_indices: Dict[str, List[List[int]]] = {}
            for table_at, spec in enumerate(item_specs):
                per_item: List[List[int]] = []
                for item_at in range(batch):
                    slot = num_user + table_at * batch + item_at
                    per_item.append(
                        self._indices_for_table(
                            spec,
                            repeat_draws[position, slot],
                            jitter_draws[position, slot],
                            pool_draws[position, slot, 0],
                            pool_draws[position, slot, 1],
                        )
                    )
                item_indices[spec.name] = per_item
            queries.append(
                Query(
                    query_id=self._next_query_id,
                    user_id=user_id,
                    dense_features=dense_draws[position],
                    user_indices=user_indices,
                    item_indices=item_indices,
                )
            )
            self._next_query_id += 1
        return queries

    def access_trace(self, queries: Sequence[Query], table_name: str) -> List[int]:
        """Flatten the row accesses a query stream makes to one table."""
        trace: List[int] = []
        for query in queries:
            if table_name in query.user_indices:
                trace.extend(query.user_indices[table_name])
            if table_name in query.item_indices:
                for per_item in query.item_indices[table_name]:
                    trace.extend(per_item)
        return trace
