"""Query stream generation for a DLRM model.

Generates :class:`~repro.dlrm.inference.Query` objects whose sparse index
lists follow per-table Zipf distributions, with a configurable probability of
repeating a previously issued index sequence (which is what gives the pooled
embedding cache of section 4.4 its ~5% full-sequence hit rate) and a Zipf
user population (which is what user-sticky routing exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dlrm.embedding import EmbeddingTableSpec
from repro.dlrm.inference import Query
from repro.dlrm.model import DLRMModel
from repro.sim.rng import make_rng
from repro.workload.zipf import ZipfGenerator


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the synthetic query stream.

    Attributes
    ----------
    item_batch:
        Number of candidate items ranked per query (B_I).  User batch is
        always 1 for inference, per the paper.
    num_users:
        Size of the user population; user ids are drawn Zipf-distributed.
    user_zipf_alpha:
        Skew of the user popularity distribution.
    sequence_repeat_probability:
        Probability that a user-table index sequence repeats a previously
        generated sequence verbatim (drives pooled-embedding-cache hits).
    sequence_pool_size:
        How many past sequences per table are eligible for repetition.
    user_reuse_probability:
        Probability that a returning user re-issues the same user-table index
        sequence it used before (a user's categorical features are mostly
        stable between queries).  This is what makes user-sticky routing
        raise per-host temporal locality (Figure 4c).
    pooling_factor_jitter:
        Relative jitter applied to each table's average pooling factor.
    """

    item_batch: int = 10
    num_users: int = 10_000
    user_zipf_alpha: float = 1.1
    sequence_repeat_probability: float = 0.05
    sequence_pool_size: int = 256
    user_reuse_probability: float = 0.8
    pooling_factor_jitter: float = 0.3

    def __post_init__(self) -> None:
        if self.item_batch <= 0:
            raise ValueError(f"item_batch must be positive: {self.item_batch}")
        if self.num_users <= 0:
            raise ValueError(f"num_users must be positive: {self.num_users}")
        if not 0.0 <= self.sequence_repeat_probability <= 1.0:
            raise ValueError(
                "sequence_repeat_probability must be a probability: "
                f"{self.sequence_repeat_probability}"
            )
        if not 0.0 <= self.user_reuse_probability <= 1.0:
            raise ValueError(
                f"user_reuse_probability must be a probability: {self.user_reuse_probability}"
            )
        if self.sequence_pool_size <= 0:
            raise ValueError(f"sequence_pool_size must be positive: {self.sequence_pool_size}")
        if not 0.0 <= self.pooling_factor_jitter < 1.0:
            raise ValueError(
                f"pooling_factor_jitter must be in [0, 1): {self.pooling_factor_jitter}"
            )


ARRIVAL_PROCESSES = ("poisson", "constant", "trace")


def generate_arrival_times(
    num_queries: int,
    process: str = "poisson",
    offered_qps: Optional[float] = None,
    seed: int = 0,
    trace: Optional[Sequence[float]] = None,
    start_time: float = 0.0,
) -> List[float]:
    """Absolute arrival timestamps for an open-loop query stream.

    ``poisson`` draws exponential inter-arrival gaps at rate ``offered_qps``
    (seeded via :func:`repro.sim.rng.make_rng`, so streams are reproducible),
    ``constant`` spaces arrivals exactly ``1/offered_qps`` apart, and
    ``trace`` replays the first ``num_queries`` timestamps of a recorded
    ``trace`` (which must be non-negative and non-decreasing).
    """
    if num_queries <= 0:
        raise ValueError(f"num_queries must be positive: {num_queries}")
    if start_time < 0:
        raise ValueError(f"start_time must be non-negative: {start_time}")
    if process not in ARRIVAL_PROCESSES:
        raise ValueError(
            f"unknown arrival process {process!r}; known: {list(ARRIVAL_PROCESSES)}"
        )
    if process == "trace":
        if trace is None or len(trace) < num_queries:
            raise ValueError(
                f"trace arrivals need at least num_queries ({num_queries}) "
                f"timestamps, got {0 if trace is None else len(trace)}"
            )
        times = [start_time + float(t) for t in trace[:num_queries]]
        previous = 0.0
        for time in times:
            if time < 0:
                raise ValueError(f"trace timestamps must be non-negative: {time}")
            if time < previous:
                raise ValueError("trace timestamps must be non-decreasing")
            previous = time
        return times
    if offered_qps is None or offered_qps <= 0:
        raise ValueError(
            f"{process} arrivals need a positive offered_qps: {offered_qps}"
        )
    if process == "constant":
        return [start_time + position / offered_qps for position in range(num_queries)]
    rng = make_rng(seed, "arrivals", process)
    gaps = rng.exponential(1.0 / offered_qps, size=num_queries)
    return (start_time + np.cumsum(gaps) - gaps[0]).tolist()


class QueryGenerator:
    """Generates reproducible query streams for a model."""

    def __init__(
        self,
        model: DLRMModel,
        config: Optional[WorkloadConfig] = None,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.config = config if config is not None else WorkloadConfig()
        self.seed = seed
        self._rng = make_rng(seed, "query-generator", model.name)
        self._user_ids = ZipfGenerator(
            self.config.num_users, self.config.user_zipf_alpha, seed=seed
        )
        self._table_generators: Dict[str, ZipfGenerator] = {}
        for spec in model.table_specs:
            self._table_generators[spec.name] = ZipfGenerator(
                spec.num_rows, spec.zipf_alpha, seed=seed
            )
        self._sequence_pools: Dict[str, List[List[int]]] = {
            spec.name: [] for spec in model.table_specs
        }
        # Remembered user-table index sequences per user id, so a returning
        # user re-issues (mostly) the same categorical features.
        self._user_memory: Dict[int, Dict[str, List[int]]] = {}
        self._next_query_id = 0

    # ---------------------------------------------------------------- helpers
    def _pooling_count(self, spec: EmbeddingTableSpec) -> int:
        jitter = self.config.pooling_factor_jitter
        factor = spec.avg_pooling_factor
        if jitter > 0:
            factor *= 1.0 + self._rng.uniform(-jitter, jitter)
        count = max(int(round(factor)), 1)
        return min(count, spec.num_rows)

    def _indices_for_table(self, spec: EmbeddingTableSpec) -> List[int]:
        pool = self._sequence_pools[spec.name]
        reuse = (
            pool
            and self._rng.random() < self.config.sequence_repeat_probability
        )
        if reuse:
            return list(pool[int(self._rng.integers(len(pool)))])
        count = self._pooling_count(spec)
        indices = self._table_generators[spec.name].sample(count, unique=True).tolist()
        if len(pool) >= self.config.sequence_pool_size:
            pool[int(self._rng.integers(len(pool)))] = indices
        else:
            pool.append(indices)
        return list(indices)

    # -------------------------------------------------------------------- API
    def generate_query(self, item_batch: Optional[int] = None) -> Query:
        """Generate the next query in the stream."""
        batch = item_batch if item_batch is not None else self.config.item_batch
        if batch <= 0:
            raise ValueError(f"item_batch must be positive: {batch}")
        user_id = int(self._user_ids.sample(1)[0])
        remembered = self._user_memory.setdefault(user_id, {})
        user_indices: Dict[str, List[int]] = {}
        for spec in self.model.user_table_specs:
            reuse = (
                spec.name in remembered
                and self._rng.random() < self.config.user_reuse_probability
            )
            if reuse:
                user_indices[spec.name] = list(remembered[spec.name])
            else:
                indices = self._indices_for_table(spec)
                remembered[spec.name] = list(indices)
                user_indices[spec.name] = indices
        item_indices = {
            spec.name: [self._indices_for_table(spec) for _ in range(batch)]
            for spec in self.model.item_table_specs
        }
        dense = self._rng.normal(0.0, 1.0, size=self.model.dense_dim).astype(np.float32)
        query = Query(
            query_id=self._next_query_id,
            user_id=user_id,
            dense_features=dense,
            user_indices=user_indices,
            item_indices=item_indices,
        )
        self._next_query_id += 1
        return query

    def generate(self, num_queries: int, item_batch: Optional[int] = None) -> List[Query]:
        """Generate a list of queries."""
        if num_queries <= 0:
            raise ValueError(f"num_queries must be positive: {num_queries}")
        return [self.generate_query(item_batch) for _ in range(num_queries)]

    def access_trace(self, queries: Sequence[Query], table_name: str) -> List[int]:
        """Flatten the row accesses a query stream makes to one table."""
        trace: List[int] = []
        for query in queries:
            if table_name in query.user_indices:
                trace.extend(query.user_indices[table_name])
            if table_name in query.item_indices:
                for per_item in query.item_indices[table_name]:
                    trace.extend(per_item)
        return trace
