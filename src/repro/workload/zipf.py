"""Bounded Zipf (power-law) index generation.

Access to embedding rows follows a power law for the majority of categorical
features (Figure 4).  The generator maps popularity ranks onto a random
permutation of the row-id space so popular rows are scattered across the
table -- which is exactly why the paper observes little *spatial* locality
despite strong *temporal* locality.
"""

from __future__ import annotations


import numpy as np

from repro.sim.rng import make_rng


class ZipfGenerator:
    """Samples row indices with a bounded Zipf popularity distribution."""

    def __init__(
        self,
        num_items: int,
        alpha: float = 1.05,
        seed: int = 0,
        shuffle_ids: bool = True,
    ) -> None:
        if num_items <= 0:
            raise ValueError(f"num_items must be positive: {num_items}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive: {alpha}")
        self.num_items = num_items
        self.alpha = alpha
        self._rng = make_rng(seed, "zipf", num_items, alpha)
        ranks = np.arange(1, num_items + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if shuffle_ids:
            self._id_map = self._rng.permutation(num_items)
        else:
            self._id_map = np.arange(num_items)

    def sample(self, count: int = 1, unique: bool = False) -> np.ndarray:
        """Draw ``count`` indices; with ``unique`` no index repeats in the draw."""
        if count <= 0:
            raise ValueError(f"count must be positive: {count}")
        if unique and count > self.num_items:
            raise ValueError(
                f"cannot draw {count} unique indices from {self.num_items} items"
            )
        if not unique:
            uniform = self._rng.random(count)
            ranks = np.searchsorted(self._cdf, uniform, side="left")
            return self._id_map[ranks]
        chosen = np.empty(0, dtype=np.int64)
        # Rejection sampling; pooling factors are far smaller than table
        # cardinality so this terminates quickly in practice.  Each round
        # keeps the first occurrence of every not-yet-chosen value in draw
        # order, so the result (and the RNG stream consumed) is exactly the
        # per-value scan it replaces.
        while chosen.size < count:
            needed = count - chosen.size
            draws = self.sample(needed * 2 + 8, unique=False).astype(np.int64)
            fresh = draws[~np.isin(draws, chosen)]
            _, first_at = np.unique(fresh, return_index=True)
            fresh = fresh[np.sort(first_at)]
            chosen = np.concatenate([chosen, fresh[:needed]])
        return chosen

    def expected_top_fraction_coverage(self, fraction: float) -> float:
        """Analytic fraction of accesses landing on the hottest ``fraction`` of rows."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1]: {fraction}")
        top = max(int(round(fraction * self.num_items)), 1)
        return float(self._cdf[top - 1])

    def popularity_rank_of(self, index: int) -> int:
        """Rank (0 = hottest) of a row id, useful for assertions in tests."""
        positions = np.where(self._id_map == index)[0]
        if positions.size == 0:
            raise ValueError(f"index {index} is not in [0, {self.num_items})")
        return int(positions[0])
