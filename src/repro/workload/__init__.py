"""Synthetic workload generation and locality analysis.

The paper characterises its production traces by their temporal-locality CDFs
(Figure 4, power-law access to embedding rows), their lack of spatial
locality (Figure 5) and the effect of user-sticky query routing.  This
package generates query streams with those properties for any
:class:`~repro.dlrm.model.DLRMModel`, and implements the same analyses the
paper applies to its traces.
"""

from repro.workload.zipf import ZipfGenerator
from repro.workload.generator import (
    ARRIVAL_PROCESSES,
    QueryGenerator,
    WorkloadConfig,
    generate_arrival_times,
)
from repro.workload.locality import (
    spatial_locality_ratio,
    spatial_locality_windows,
    temporal_locality_cdf,
    top_fraction_coverage,
)
from repro.workload.routing import RequestRouter, RoutingPolicy

__all__ = [
    "ZipfGenerator",
    "ARRIVAL_PROCESSES",
    "QueryGenerator",
    "WorkloadConfig",
    "generate_arrival_times",
    "temporal_locality_cdf",
    "top_fraction_coverage",
    "spatial_locality_ratio",
    "spatial_locality_windows",
    "RequestRouter",
    "RoutingPolicy",
]
