"""repro -- Software Defined Memory for massive DLRM inference.

A faithful, laptop-scale reproduction of "Supporting Massive DLRM Inference
through Software Defined Memory" (ICDCS 2022).  The package is organised as:

* :mod:`repro.sim` -- simulated clock, discrete events, units, RNG.
* :mod:`repro.storage` -- slow-memory device models (Table 1), io_uring-like
  engine, sub-block (SGL) reads, block layout, endurance.
* :mod:`repro.cache` -- the CacheLib-like unified row cache (memory- vs
  CPU-optimised organisations).
* :mod:`repro.dlrm` -- the DLRM substrate: quantised embedding tables,
  pruning, MLPs, model configs (Table 6) and the inference engine.
* :mod:`repro.core` -- the SDM stack itself: placement, bandwidth analysis,
  pooled embedding cache, de-pruning/de-quantisation, warmup, model update,
  auto-tuning and the :class:`~repro.core.sdm.SoftwareDefinedMemory` backend.
* :mod:`repro.workload` -- synthetic query/trace generation and locality
  analysis (Figures 4 and 5).
* :mod:`repro.serving` -- platforms (Table 7), power/capacity planning
  (Eq. 5-7), scale-out, multi-tenancy, host-level serving simulation.
* :mod:`repro.analysis` -- metrics and report formatting.

Quickstart::

    from repro.core import SDMConfig, SoftwareDefinedMemory
    from repro.dlrm import M1_SPEC, build_scaled_model, ComputeSpec, InferenceEngine
    from repro.workload import QueryGenerator

    model = build_scaled_model(M1_SPEC, item_batch=8)
    sdm = SoftwareDefinedMemory(model, SDMConfig())
    engine = InferenceEngine(model, ComputeSpec(), user_backend=sdm)
    queries = QueryGenerator(model).generate(100)
    results = engine.run_queries(queries)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
