"""repro -- Software Defined Memory for massive DLRM inference.

A faithful, laptop-scale reproduction of "Supporting Massive DLRM Inference
through Software Defined Memory" (ICDCS 2022).  The package is organised as:

* :mod:`repro.api` -- the public front door: declarative scenario specs, the
  :class:`Session` facade, the pluggable backend registry and the
  ``python -m repro`` command line.
* :mod:`repro.sim` -- simulated clock, discrete events, units, RNG.
* :mod:`repro.storage` -- slow-memory device models (Table 1), io_uring-like
  engine, sub-block (SGL) reads, block layout, endurance.
* :mod:`repro.cache` -- the CacheLib-like unified row cache (memory- vs
  CPU-optimised organisations).
* :mod:`repro.dlrm` -- the DLRM substrate: quantised embedding tables,
  pruning, MLPs, model configs (Table 6) and the inference engine.
* :mod:`repro.hierarchy` -- the N-tier memory hierarchy: pluggable
  :class:`TierSpec`/:class:`MemoryTier` tiers, tiered placement (table- or
  row-range granularity) and the tier chain serving path.
* :mod:`repro.core` -- the SDM stack itself: placement, bandwidth analysis,
  pooled embedding cache, de-pruning/de-quantisation, warmup, model update,
  auto-tuning and the :class:`~repro.core.sdm.SoftwareDefinedMemory` backend.
* :mod:`repro.workload` -- synthetic query/trace generation and locality
  analysis (Figures 4 and 5).
* :mod:`repro.serving` -- platforms (Table 7), power/capacity planning
  (Eq. 5-7), scale-out, multi-tenancy, host-level serving simulation.
* :mod:`repro.analysis` -- metrics and report formatting.
* :mod:`repro.obs` -- observability: sim-time span tracing (Chrome trace
  export), interval time-series metrics and run reports.

Quickstart::

    from repro import ScenarioSpec, Session

    result = Session(ScenarioSpec()).run()   # M1 on the SDM backend
    print(result.summary_table())

or from the command line::

    python -m repro run --model M1 --backend sdm

The hand-wired layers remain importable for fine-grained control; the most
common entry points are re-exported here.
"""

from repro.api import (
    BackendChoice,
    ModelChoice,
    PowerSummary,
    ScenarioResult,
    ScenarioSpec,
    ServingChoice,
    Session,
    SweepPoint,
    TelemetrySpec,
    TrafficSpec,
    UnknownBackendError,
    WorkloadChoice,
    available_backends,
    create_backend,
    register_backend,
)
from repro.analysis import format_series, format_table
from repro.api.results import campaign_table, sweep_table
from repro.core import SDMConfig, SoftwareDefinedMemory
from repro.runtime import (
    CampaignAxis,
    CampaignSpec,
    ExperimentStore,
    PointOutcome,
    RunComparison,
    compare_runs,
    run_campaign,
)
from repro.dlrm import (
    M1_SPEC,
    M2_SPEC,
    M3_SPEC,
    ComputeSpec,
    EmbeddingBackend,
    InferenceEngine,
    InMemoryBackend,
    Query,
    QueryResult,
    build_scaled_model,
)
from repro.hierarchy import (
    TierChain,
    TieredPlacement,
    TierSpec,
    compute_tiered_placement,
    parse_tiers,
)
from repro.serving import LatencyTarget, PowerModel, ServingEngine, ServingSimulator
from repro.workload import QueryGenerator, WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # repro.api -- the public facade
    "ScenarioSpec",
    "ModelChoice",
    "BackendChoice",
    "WorkloadChoice",
    "TrafficSpec",
    "ServingChoice",
    "TelemetrySpec",
    "Session",
    "ScenarioResult",
    "PowerSummary",
    "SweepPoint",
    "sweep_table",
    "campaign_table",
    # repro.runtime -- campaign orchestration
    "CampaignAxis",
    "CampaignSpec",
    "PointOutcome",
    "ExperimentStore",
    "RunComparison",
    "run_campaign",
    "compare_runs",
    "register_backend",
    "create_backend",
    "available_backends",
    "UnknownBackendError",
    # repro.hierarchy -- the N-tier memory hierarchy
    "TierSpec",
    "TierChain",
    "TieredPlacement",
    "compute_tiered_placement",
    "parse_tiers",
    # hand-wired layer highlights
    "SDMConfig",
    "SoftwareDefinedMemory",
    "ComputeSpec",
    "EmbeddingBackend",
    "InMemoryBackend",
    "InferenceEngine",
    "Query",
    "QueryResult",
    "M1_SPEC",
    "M2_SPEC",
    "M3_SPEC",
    "build_scaled_model",
    "QueryGenerator",
    "WorkloadConfig",
    "ServingEngine",
    "ServingSimulator",
    "LatencyTarget",
    "PowerModel",
    "format_table",
    "format_series",
]
