"""Placement of tables (or row ranges) across an N-tier hierarchy.

Generalises the binary :func:`repro.core.placement.compute_placement` (FM
direct vs SM) to an ordered list of tiers: each user table — or, at row
granularity, hotness-ranked row ranges within a table — is assigned to the
fastest tier with room, in descending bandwidth-density order (bytes/query
per byte of capacity, the same criterion the two-tier FIXED_FM_SM policy
used for its DRAM budget).

Two granularities:

* ``table`` (default) — every table is homed whole on one tier.
* ``rows`` — a table that does not fit the remaining budget of a tier is
  split: the hottest rows fill the fast tier and the tail cascades down.
  With a ``row_hotness`` profile (row ids ranked hottest-first, e.g. from
  ``Session.access_trace``) the split follows measured popularity and the
  table is stored rank-ordered behind a mapping tensor; without one the
  split is by row-id range.

Legacy two-tier :class:`~repro.core.placement.Placement` objects convert
loss-lessly via :meth:`TieredPlacement.from_legacy` / ``to_legacy``, which is
how the refactored SDM stack keeps the old policies bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import Placement, TablePlacement, Tier
from repro.dlrm.embedding import EmbeddingTableSpec
from repro.hierarchy.tier import TierSpec, parse_tiers
from repro.sim.units import BLOCK_SIZE


@dataclass(frozen=True)
class TierSegment:
    """One contiguous stored-row range ``[start, end)`` homed on ``tier``."""

    tier: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.tier < 0:
            raise ValueError(f"tier index must be non-negative: {self.tier}")
        if not 0 <= self.start < self.end:
            raise ValueError(f"segment [{self.start}, {self.end}) is empty or negative")

    @property
    def num_rows(self) -> int:
        return self.end - self.start


@dataclass
class TieredTablePlacement:
    """Placement decision for one table across the hierarchy.

    ``segments`` cover the table's stored-row space contiguously and in
    order.  A whole-table placement is a single segment.  ``rank_order``
    (optional, row-split placements only) is the hotness permutation: stored
    row ``s`` holds the bytes of original row ``rank_order[s]``.
    """

    table_name: str
    segments: Tuple[TierSegment, ...]
    cache_enabled: bool
    rank_order: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError(f"table {self.table_name!r} needs at least one segment")
        cursor = 0
        for segment in self.segments:
            if segment.start != cursor:
                raise ValueError(
                    f"table {self.table_name!r}: segments must tile the row space "
                    f"contiguously (expected start {cursor}, got {segment.start})"
                )
            cursor = segment.end
        if self.rank_order is not None:
            order = np.asarray(self.rank_order, dtype=np.int64)
            if order.shape != (cursor,):
                raise ValueError(
                    f"table {self.table_name!r}: rank_order must have one entry per "
                    f"row ({cursor}), got shape {order.shape}"
                )
            self.rank_order = order

    @property
    def num_rows(self) -> int:
        return self.segments[-1].end

    @property
    def is_split(self) -> bool:
        return len(self.segments) > 1

    @property
    def home_tier(self) -> int:
        """Tier of a whole-table placement (fastest segment's tier otherwise)."""
        return min(segment.tier for segment in self.segments)

    def tiers(self) -> Tuple[int, ...]:
        return tuple(sorted({segment.tier for segment in self.segments}))

    def tier_of_row(self, stored_index: int) -> int:
        for segment in self.segments:
            if segment.start <= stored_index < segment.end:
                return segment.tier
        raise IndexError(
            f"stored row {stored_index} out of range for table {self.table_name!r} "
            f"with {self.num_rows} rows"
        )

    def tiers_of_rows(self, stored_indices: np.ndarray) -> np.ndarray:
        """Vectorised ``tier_of_row`` over an int array of stored indices."""
        stored = np.asarray(stored_indices, dtype=np.int64)
        if stored.size and (stored.min() < 0 or stored.max() >= self.num_rows):
            raise IndexError(
                f"stored rows out of range for table {self.table_name!r} "
                f"with {self.num_rows} rows"
            )
        boundaries = np.asarray([segment.end for segment in self.segments], dtype=np.int64)
        tiers = np.asarray([segment.tier for segment in self.segments], dtype=np.int64)
        return tiers[np.searchsorted(boundaries, stored, side="right")]

    def bytes_on_tier(self, tier: int, row_bytes: int) -> int:
        return sum(s.num_rows * row_bytes for s in self.segments if s.tier == tier)


@dataclass
class TieredPlacement:
    """The full placement decision for a model across ``num_tiers`` tiers."""

    num_tiers: int
    decisions: Dict[str, TieredTablePlacement] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_tiers < 1:
            raise ValueError(f"num_tiers must be positive: {self.num_tiers}")

    def copy(self) -> "TieredPlacement":
        """An independent copy whose decisions can be resolved/re-anchored
        without mutating the original (segments tuples are immutable, so a
        per-decision shallow copy suffices)."""
        duplicate = TieredPlacement(num_tiers=self.num_tiers)
        for name, decision in self.decisions.items():
            duplicate.decisions[name] = TieredTablePlacement(
                table_name=decision.table_name,
                segments=decision.segments,
                cache_enabled=decision.cache_enabled,
                rank_order=decision.rank_order,
            )
        return duplicate

    def add(self, decision: TieredTablePlacement) -> None:
        if decision.table_name in self.decisions:
            raise ValueError(
                f"table {decision.table_name!r} already has a placement"
            )
        bad = [s.tier for s in decision.segments if s.tier >= self.num_tiers]
        if bad:
            raise ValueError(
                f"table {decision.table_name!r} references tier(s) {bad} but the "
                f"hierarchy has {self.num_tiers} tiers"
            )
        self.decisions[decision.table_name] = decision

    def for_table(self, table_name: str) -> TieredTablePlacement:
        if table_name not in self.decisions:
            raise KeyError(f"no placement decision for table {table_name!r}")
        return self.decisions[table_name]

    def tables_on(self, tier: int) -> List[str]:
        """Tables with at least one segment homed on ``tier``."""
        return [
            name
            for name, decision in self.decisions.items()
            if any(segment.tier == tier for segment in decision.segments)
        ]

    def storage_tables(self) -> List[str]:
        """Tables with at least one segment on a device tier (tier >= 1)."""
        return [
            name
            for name, decision in self.decisions.items()
            if any(segment.tier >= 1 for segment in decision.segments)
        ]

    # Legacy-compatible aliases: 'SM' is every device tier, 'FM' is tier 0.
    def sm_tables(self) -> List[str]:
        return self.storage_tables()

    def fm_tables(self) -> List[str]:
        return [
            name
            for name, decision in self.decisions.items()
            if all(segment.tier == 0 for segment in decision.segments)
        ]

    def tier_bytes(self, specs: Mapping[str, EmbeddingTableSpec], tier: int) -> int:
        """Bytes of table data homed on ``tier`` (by original spec sizes)."""
        total = 0
        for name, decision in self.decisions.items():
            if name not in specs:
                continue
            total += decision.bytes_on_tier(tier, specs[name].row_bytes)
        return total

    # ------------------------------------------------------------ conversion
    @classmethod
    def from_legacy(cls, placement: Placement, num_tiers: int = 2) -> "TieredPlacement":
        """Lift a two-tier :class:`Placement` into the N-tier representation.

        FM-direct tables become whole-table tier 0 placements; SM tables go
        whole to tier 1.  Row counts are not known to the legacy placement,
        so segments are materialised lazily with a sentinel span that
        :meth:`with_table_rows` resolves — callers that need concrete
        segments should use :func:`compute_tiered_placement` instead.
        """
        if num_tiers < 2:
            raise ValueError("legacy placements need at least 2 tiers")
        tiered = cls(num_tiers=num_tiers)
        for name, decision in placement.decisions.items():
            tier = 0 if decision.tier is Tier.FM_DIRECT else 1
            tiered.add(
                TieredTablePlacement(
                    table_name=name,
                    segments=(TierSegment(tier=tier, start=0, end=_WHOLE_TABLE),),
                    cache_enabled=decision.cache_enabled,
                )
            )
        return tiered

    def to_legacy(self) -> Placement:
        """Project back to the two-tier representation (no splits allowed)."""
        legacy = Placement()
        for name, decision in self.decisions.items():
            if decision.is_split:
                raise ValueError(
                    f"table {name!r} is row-split across tiers; no two-tier "
                    f"equivalent exists"
                )
            tier = Tier.FM_DIRECT if decision.home_tier == 0 else Tier.SM
            legacy.add(TablePlacement(name, tier, decision.cache_enabled))
        return legacy


#: Sentinel row count for whole-table segments lifted from a legacy
#: placement, where the stored row count is not yet known.
_WHOLE_TABLE = 1 << 62


def whole_table_segments(decision: TieredTablePlacement, stored_rows: int) -> Tuple[TierSegment, ...]:
    """Resolve a whole-table decision to the concrete stored row count.

    Single-segment (whole-table) placements are re-anchored on
    ``stored_rows``: placement works on original spec sizes, but pruning can
    shrink what is actually stored.  Row-split placements must already cover
    the stored row space exactly.
    """
    if len(decision.segments) == 1:
        only = decision.segments[0]
        return (TierSegment(tier=only.tier, start=0, end=stored_rows),)
    if decision.segments[-1].end != stored_rows:
        raise ValueError(
            f"table {decision.table_name!r}: placement covers "
            f"{decision.segments[-1].end} rows but the table stores {stored_rows}"
        )
    return decision.segments


def _bandwidth_density(spec: EmbeddingTableSpec) -> float:
    return spec.bytes_per_query / spec.size_bytes


def compute_tiered_placement(
    specs: Sequence[EmbeddingTableSpec],
    tiers: Sequence[TierSpec],
    *,
    pinned_fast_tables: Iterable[str] = (),
    cache_disable_alpha_threshold: Optional[float] = None,
    granularity: str = "table",
    row_hotness: Optional[Mapping[str, Sequence[int]]] = None,
    reserve_fast_bytes: int = 0,
) -> TieredPlacement:
    """Assign tables (or row ranges) across an ordered tier list.

    Item tables and ``pinned_fast_tables`` always home on tier 0 and do not
    count against its budget (matching the legacy pinned/item semantics).
    User tables are visited in descending bandwidth density and greedily
    homed on the fastest tier with room; ``granularity="rows"`` additionally
    splits a table that straddles a budget boundary, homing its hottest rows
    (per ``row_hotness``, or by row-id order without a profile) on the
    faster tier.

    ``cache_disable_alpha_threshold`` reproduces the PER_TABLE_CACHE policy
    across N tiers: tables with access skew below the threshold bypass the
    row caches.  ``reserve_fast_bytes`` shrinks tier 0's placement budget
    (e.g. to account for caches living there).

    Raises ``ValueError`` when a table (or its tail) fits no tier — the
    caller sized the hierarchy smaller than the model.
    """
    tier_specs = parse_tiers(tiers)
    if not tier_specs:
        raise ValueError("compute_tiered_placement needs a non-empty tier list")
    if granularity not in ("table", "rows"):
        raise ValueError(f"granularity must be 'table' or 'rows': {granularity!r}")
    pinned = set(pinned_fast_tables)
    unknown = pinned - {spec.name for spec in specs}
    if unknown:
        raise ValueError(f"pinned tables not present in the model: {sorted(unknown)}")

    placement = TieredPlacement(num_tiers=len(tier_specs))
    budgets: List[int] = []
    for index, tier in enumerate(tier_specs):
        budget = tier.capacity_bytes
        if index == 0:
            budget = max(budget - reserve_fast_bytes, 0)
        budgets.append(budget)

    def cache_enabled_for(spec: EmbeddingTableSpec) -> bool:
        if cache_disable_alpha_threshold is None:
            return True
        return spec.zipf_alpha >= cache_disable_alpha_threshold

    # Decisions are collected first and added in the original spec order, so
    # device layout (and therefore IO interleaving) does not depend on the
    # density-sorted visit order — keeping runs comparable across policies
    # and matching the legacy two-tier layout order exactly.
    decisions: Dict[str, TieredTablePlacement] = {}
    user_specs = [s for s in specs if s.is_user and s.name not in pinned]
    for spec in specs:
        if not spec.is_user or spec.name in pinned:
            decisions[spec.name] = TieredTablePlacement(
                table_name=spec.name,
                segments=(TierSegment(tier=0, start=0, end=spec.num_rows),),
                cache_enabled=False,
            )

    def stored_cost(tier_index: int, num_rows: int, row_bytes: int) -> int:
        """Bytes a row range actually occupies on a tier.

        Device tiers store rows in 4 KiB blocks (rows never straddle a block
        boundary), so their cost is block-quantised; the fast tier is
        byte-addressable and exact.
        """
        if tier_index == 0:
            return num_rows * row_bytes
        rows_per_block = BLOCK_SIZE // row_bytes
        if rows_per_block == 0:
            raise ValueError(
                f"rows of {row_bytes} B do not fit a {BLOCK_SIZE} B device block"
            )
        return -(-num_rows // rows_per_block) * BLOCK_SIZE

    for spec in sorted(user_specs, key=_bandwidth_density, reverse=True):
        if granularity == "table":
            homed = False
            for tier_index in range(len(tier_specs)):
                cost = stored_cost(tier_index, spec.num_rows, spec.row_bytes)
                if cost <= budgets[tier_index]:
                    budgets[tier_index] -= cost
                    decisions[spec.name] = TieredTablePlacement(
                        table_name=spec.name,
                        segments=(
                            TierSegment(tier=tier_index, start=0, end=spec.num_rows),
                        ),
                        cache_enabled=cache_enabled_for(spec),
                    )
                    homed = True
                    break
            if not homed:
                raise ValueError(
                    f"table {spec.name!r} ({spec.size_bytes} B) does not fit in any "
                    f"tier; tier budgets left: {budgets}"
                )
            continue

        # Row granularity: cascade the table down the hierarchy, hottest
        # stored rows first.
        segments: List[TierSegment] = []
        cursor = 0
        for tier_index in range(len(tier_specs)):
            if cursor >= spec.num_rows:
                break
            if tier_index == 0:
                rows_fitting = budgets[0] // spec.row_bytes
            else:
                rows_per_block = BLOCK_SIZE // spec.row_bytes
                rows_fitting = (budgets[tier_index] // BLOCK_SIZE) * rows_per_block
            take = min(rows_fitting, spec.num_rows - cursor)
            if take <= 0:
                continue
            budgets[tier_index] -= stored_cost(tier_index, take, spec.row_bytes)
            segments.append(TierSegment(tier=tier_index, start=cursor, end=cursor + take))
            cursor += take
        if cursor < spec.num_rows:
            raise ValueError(
                f"table {spec.name!r} does not fit: {spec.num_rows - cursor} row(s) "
                f"({(spec.num_rows - cursor) * spec.row_bytes} B) overflow every tier"
            )
        rank_order = None
        if row_hotness is not None and spec.name in row_hotness and len(segments) > 1:
            order = np.asarray(list(row_hotness[spec.name]), dtype=np.int64)
            if order.shape != (spec.num_rows,) or set(order.tolist()) != set(
                range(spec.num_rows)
            ):
                raise ValueError(
                    f"row_hotness for table {spec.name!r} must be a permutation of "
                    f"its {spec.num_rows} row ids"
                )
            rank_order = order
        decisions[spec.name] = TieredTablePlacement(
            table_name=spec.name,
            segments=tuple(segments),
            cache_enabled=cache_enabled_for(spec),
            rank_order=rank_order,
        )
    for spec in specs:
        placement.add(decisions[spec.name])
    return placement


def hotness_ranking(trace: Sequence[int], num_rows: int) -> np.ndarray:
    """Rank row ids hottest-first from an access trace (ties by row id).

    The output feeds ``row_hotness``: ``ranking[rank] == row_id``.  Rows that
    never appear in the trace rank after all observed rows.
    """
    counts = np.zeros(num_rows, dtype=np.int64)
    if len(trace):
        observed = np.asarray(list(trace), dtype=np.int64)
        if observed.min() < 0 or observed.max() >= num_rows:
            raise ValueError(f"trace references rows outside [0, {num_rows})")
        counts += np.bincount(observed, minlength=num_rows)
    # Stable sort on negated counts: equal-frequency rows stay in id order.
    return np.argsort(-counts, kind="stable").astype(np.int64)
