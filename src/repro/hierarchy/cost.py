"""Memory-cost accounting and Pareto frontiers for tier geometries.

The Table 1 relative $/GB column turns a hierarchy into a single memory-cost
number: bytes held on each tier (homed table data plus that tier's cache)
weighted by the tier's cost factor, normalised so DRAM is 1.0.  This is the
objective `examples/tier_study.py` and `benchmarks/bench_tier_sweep.py`
optimise over, and the ROADMAP names it as the future cross-tier autotuning
objective — so it lives here, once.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Sequence

from repro.sim.units import GB
from repro.storage.spec import TABLE1_SPECS

#: Cost of one DRAM GB, the normalisation anchor.
DRAM_COST_FACTOR = 1.0


def cost_factor(technology: str) -> float:
    """Relative $/GB of a technology versus DRAM (Table 1)."""
    if technology == "dram":
        return DRAM_COST_FACTOR
    for spec in TABLE1_SPECS.values():
        if spec.technology.value == technology:
            return spec.relative_cost_per_gb
    known = ["dram"] + [spec.technology.value for spec in TABLE1_SPECS.values()]
    raise KeyError(f"no cost factor for technology {technology!r}; known: {known}")


def memory_cost_dram_gb(tier_summaries: Sequence[Mapping[str, Any]]) -> float:
    """DRAM-GB equivalents of the bytes a hierarchy actually holds.

    ``tier_summaries`` is the per-tier list a
    :class:`~repro.api.results.ScenarioResult` carries (``result.tiers``) or
    :meth:`SoftwareDefinedMemory.tier_summaries` returns: each tier is
    charged for its homed table data plus its row cache at the tier's cost
    factor.
    """
    return sum(
        (tier["data_bytes"] + tier["cache_capacity_bytes"])
        / GB
        * cost_factor(tier["technology"])
        for tier in tier_summaries
    )


def pareto_frontier(
    records: Sequence[Any],
    *,
    cost: Callable[[Any], float],
    latency: Callable[[Any], float],
) -> List[Any]:
    """Records not strictly dominated in (cost, latency) — lower is better.

    A record is dominated when some other record is both cheaper *and*
    faster; ties survive, so equal configurations all stay on the frontier.
    """
    keyed: List[Dict[str, Any]] = [
        {"record": record, "cost": cost(record), "latency": latency(record)}
        for record in records
    ]
    return [
        entry["record"]
        for entry in keyed
        if not any(
            other["cost"] < entry["cost"] and other["latency"] < entry["latency"]
            for other in keyed
            if other is not entry
        )
    ]
