"""The tier chain: serving row lookups through an N-tier hierarchy.

A :class:`TierChain` owns an ordered list of :class:`~repro.hierarchy.tier.MemoryTier`
objects (fastest first) plus the :class:`~repro.hierarchy.placement.TieredPlacement`
that says where every stored row lives.  Serving one row homed on tier ``k``:

1. probe the row caches of tiers ``0 .. k-1`` in order (each probe costs host
   CPU time),
2. on a full miss, read the row from tier ``k`` — fast-memory bytes for rows
   homed on tier 0, a device IO otherwise,
3. promote the row into upper-tier caches according to the configurable
   promotion policy (``all`` — every cache above the home tier; ``top`` —
   the fastest cache only; ``none``).

Whenever only tier 0 carries a cache — every legacy two-tier configuration —
``all`` and ``top`` coincide and the chain is bit-identical to the original
FM-cache-then-SM path of :class:`~repro.core.sdm.SoftwareDefinedMemory`,
which the parity tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hierarchy.placement import TieredPlacement
from repro.hierarchy.tier import PROMOTION_POLICIES, MemoryTier
from repro.obs.trace import NULL_RECORDER, TraceRecorder


@dataclass
class FetchOutcome:
    """Result of fetching one batch of stored rows through the chain."""

    rows_by_position: Dict[int, bytes]
    completion_time: float
    device_reads: int = 0
    fast_rows: int = 0
    cache_hits: int = 0
    probe_seconds: float = 0.0
    reads_by_tier: Dict[int, int] = field(default_factory=dict)


@dataclass
class BatchFetchOutcome:
    """Array-native result of :meth:`TierChain.fetch_batch`.

    ``rows`` stacks the served payloads as one uint8 matrix aligned with
    ``served_positions`` (ascending request positions); everything else
    matches :class:`FetchOutcome` field for field.
    """

    rows: np.ndarray
    served_positions: np.ndarray
    completion_time: float
    device_reads: int = 0
    fast_rows: int = 0
    cache_hits: int = 0
    probe_seconds: float = 0.0
    reads_by_tier: Dict[int, int] = field(default_factory=dict)


class TierChain:
    """Serves stored-row lookups through an ordered list of memory tiers."""

    def __init__(
        self,
        tiers: Sequence[MemoryTier],
        placement: TieredPlacement,
        *,
        promotion: str = "top",
        cache_probe_seconds: float = 0.0,
        fm_lookup_overhead: float = 0.0,
        fm_bandwidth: float = float("inf"),
    ) -> None:
        if not tiers:
            raise ValueError("TierChain needs at least one tier")
        if promotion not in PROMOTION_POLICIES:
            raise ValueError(
                f"unknown promotion policy {promotion!r}; choices: {PROMOTION_POLICIES}"
            )
        if placement.num_tiers > len(tiers):
            raise ValueError(
                f"placement references {placement.num_tiers} tiers, chain has {len(tiers)}"
            )
        self.tiers = list(tiers)
        self.placement = placement
        self.promotion = promotion
        self.cache_probe_seconds = cache_probe_seconds
        self.fm_lookup_overhead = fm_lookup_overhead
        self.fm_bandwidth = fm_bandwidth
        #: Span recorder for probe / storage-IO waits; the no-op default
        #: keeps the serve path bit-identical to an uninstrumented build.
        self.recorder: TraceRecorder = NULL_RECORDER
        # Which tiers carry a cache never changes after construction, so the
        # per-home-tier probe lists (walked for every row) are precomputed.
        cached = [index for index, tier in enumerate(self.tiers) if tier.cache is not None]
        self._cached_tiers: List[int] = cached
        self._upper_cache_indices: List[List[int]] = [
            [index for index in cached if index < home_tier]
            for home_tier in range(len(self.tiers) + 1)
        ]

    @property
    def num_tiers(self) -> int:
        return len(self.tiers)

    def _upper_caches(self, home_tier: int) -> List[int]:
        """Tier indices above ``home_tier`` that carry a row cache."""
        return self._upper_cache_indices[home_tier]

    def _promotion_targets(self, home_tier: int) -> List[int]:
        if self.promotion == "none":
            return []
        upper = self._upper_caches(home_tier)
        if not upper:
            return []
        if self.promotion == "top":
            return upper[:1]
        return upper

    def fetch_rows(
        self,
        table_name: str,
        stored_by_position: Sequence[Tuple[int, int]],
        start_time: float,
        *,
        cache_enabled: bool = True,
        size_hint: Optional[int] = None,
    ) -> FetchOutcome:
        """Fetch stored rows ``[(position, stored_index), ...]`` of a table.

        Probe costs accrue serially in position order (the host walks the
        request), then all cache misses are submitted to their home tiers'
        devices concurrently at the accrued cursor — exactly the two-phase
        structure of the original two-tier serve path.
        """
        decision = self.placement.for_table(table_name)
        cursor = start_time
        outcome = FetchOutcome(rows_by_position={}, completion_time=start_time)
        misses_by_tier: Dict[int, List[Tuple[int, int]]] = {}
        # One vectorised segment lookup for the whole batch instead of a
        # per-row linear scan.
        home_tiers = decision.tiers_of_rows(
            [stored for _, stored in stored_by_position]
        )

        for (position, stored), home_tier in zip(stored_by_position, home_tiers):
            home_tier = int(home_tier)
            served = False
            if cache_enabled:
                for tier_index in self._upper_caches(home_tier):
                    cursor += self.cache_probe_seconds
                    outcome.probe_seconds += self.cache_probe_seconds
                    tier = self.tiers[tier_index]
                    cached = tier.probe_cache(
                        (table_name, int(stored)), size_hint=size_hint
                    )
                    if cached is not None:
                        # Bytes cached below tier 0 still cross that tier's
                        # media, and a hit re-promotes the row into the
                        # faster caches it has fallen out of (per policy).
                        cursor += tier.cache_hit_seconds(len(cached))
                        for target in self._promotion_targets(tier_index):
                            self.tiers[target].fill_cache(
                                (table_name, int(stored)), cached
                            )
                        outcome.rows_by_position[position] = cached
                        outcome.cache_hits += 1
                        served = True
                        break
            if served:
                continue
            if home_tier == 0:
                # Fast-memory resident row: read it straight from the model at
                # fast-memory cost (dequantisation is charged by the caller
                # together with every other fetched row).
                read = self.tiers[0].read_rows(table_name, [int(stored)], cursor)[0]
                data = read.data
                cursor += self.fm_lookup_overhead + len(data) / self.fm_bandwidth
                fast = self.tiers[0]
                fast.stats.rows_served += 1
                fast.stats.bytes_served += len(data)
                outcome.rows_by_position[position] = data
                outcome.fast_rows += 1
                continue
            misses_by_tier.setdefault(home_tier, []).append((position, int(stored)))

        recorder = self.recorder
        if recorder.enabled and cursor > start_time:
            # The serial host walk: cache probes, hit copies, fast-tier reads.
            recorder.span(
                "walk",
                "chain",
                start_time,
                cursor - start_time,
                args={
                    "probe_seconds": outcome.probe_seconds,
                    "cache_hits": outcome.cache_hits,
                    "fast_rows": outcome.fast_rows,
                },
            )
        io_done = cursor
        for tier_index, entries in misses_by_tier.items():
            tier = self.tiers[tier_index]
            reads = tier.read_rows(
                table_name, [stored for _, stored in entries], cursor
            )
            outcome.device_reads += len(reads)
            outcome.reads_by_tier[tier_index] = (
                outcome.reads_by_tier.get(tier_index, 0) + len(reads)
            )
            targets = self._promotion_targets(tier_index) if cache_enabled else []
            group_done = cursor
            for (position, stored), read in zip(entries, reads):
                outcome.rows_by_position[position] = read.data
                group_done = max(group_done, read.completion_time)
                for target in targets:
                    self.tiers[target].fill_cache((table_name, stored), read.data)
            io_done = max(io_done, group_done)
            if recorder.enabled:
                recorder.span(
                    f"io:{tier.spec.name}",
                    "storage",
                    cursor,
                    group_done - cursor,
                    args={
                        "tier": tier_index,
                        "reads": len(reads),
                        "promoted_rows": len(targets) * len(reads),
                    },
                )

        outcome.completion_time = max(cursor, io_done)
        return outcome

    def fetch_batch(
        self,
        table_name: str,
        positions: np.ndarray,
        stored: np.ndarray,
        start_time: float,
        *,
        cache_enabled: bool = True,
        size_hint: Optional[int] = None,
    ) -> Optional[BatchFetchOutcome]:
        """Array-native :meth:`fetch_rows`: the whole batch flows as arrays.

        Partitions the batch by home tier with one segment lookup, probes
        each tier's cache once for all eligible rows, gathers tier-0 payloads
        as one matrix, and issues one grouped ``read_rows`` per device tier.
        Time is charged with the same serial-probe-then-concurrent-IO cost
        model as the scalar path — the probe/hit/fast increments are replayed
        in scalar walk order through ``np.add.accumulate``, whose left-to-
        right addition chain makes the accrued floats bit-identical.

        Returns ``None`` when the batch cannot be served by array ops with
        bit-identical side effects: no ``size_hint`` (uniform row length), or
        a cache hit below tier 0 whose promotion policy would fill upper
        caches mid-walk and perturb later probes.  Callers fall back to the
        scalar :meth:`fetch_rows` oracle, which is always exact.
        """
        if size_hint is None:
            return None
        positions = np.asarray(positions, dtype=np.int64)
        stored = np.asarray(stored, dtype=np.int64)
        count = int(stored.size)
        decision = self.placement.for_table(table_name)
        home_tiers = (
            decision.tiers_of_rows(stored)
            if count
            else np.zeros(0, dtype=np.int64)
        )

        # Plan (non-mutating): the first cached tier that holds each row.  A
        # hit below tier 0 with a non-empty promotion target list would fill
        # upper caches between probes — only the scalar walk models that.
        hit_tier = np.full(count, -1, dtype=np.int64)
        if cache_enabled and count:
            unresolved = np.ones(count, dtype=bool)
            for tier_index in self._cached_tiers:
                eligible = unresolved & (home_tiers > tier_index)
                if not bool(eligible.any()):
                    continue
                contained = self.tiers[tier_index].cache_contains_batch(
                    table_name, stored[eligible], size_hint
                )
                if bool(contained.any()):
                    if tier_index >= 1 and self._promotion_targets(tier_index):
                        return None
                    rows_at = np.nonzero(eligible)[0][contained]
                    hit_tier[rows_at] = tier_index
                    unresolved[rows_at] = False

        rows_out = np.zeros((count, size_hint), dtype=np.uint8)
        served = np.zeros(count, dtype=bool)
        cache_hits = 0

        # Mutating probes: one batched probe per cached tier, in tier order.
        # Each cache sees exactly the scalar walk's probe sequence (rows in
        # request order), so stats, CPU charges and LRU order are identical.
        if cache_enabled and count:
            resolved = np.zeros(count, dtype=bool)
            for tier_index in self._cached_tiers:
                walk = (home_tiers > tier_index) & ~resolved
                if not bool(walk.any()):
                    continue
                hit_mask, values = self.tiers[tier_index].probe_cache_batch(
                    table_name, stored[walk], size_hint
                )
                if values.shape[0]:
                    rows_at = np.nonzero(walk)[0][hit_mask]
                    rows_out[rows_at] = values
                    served[rows_at] = True
                    resolved[rows_at] = True
                    cache_hits += int(values.shape[0])

        # Tier-0-homed rows: one matrix gather from the in-memory tables.
        fm_mask = (home_tiers == 0) if count else np.zeros(0, dtype=bool)
        num_fast = int(np.count_nonzero(fm_mask))
        if num_fast:
            fast = self.tiers[0]
            matrix = fast.read_rows_matrix(table_name, stored[fm_mask])
            if matrix is None:
                reads = fast.read_rows(
                    table_name, [int(index) for index in stored[fm_mask]], start_time
                )
                matrix = np.frombuffer(
                    b"".join(read.data for read in reads), dtype=np.uint8
                ).reshape(num_fast, size_hint)
            rows_out[fm_mask] = matrix
            served[fm_mask] = True
            fast.stats.rows_served += num_fast
            fast.stats.bytes_served += num_fast * size_hint

        # Replay the scalar walk's time accrual: per row, one probe charge per
        # walked cache, then the hit/fast terminal increment.  Zero padding is
        # bitwise-neutral (x + 0.0 == x for the positive cursor).
        num_cached = len(self._cached_tiers)
        increments = np.zeros((count, num_cached + 1), dtype=np.float64)
        total_probes = 0
        if cache_enabled and count:
            for column, tier_index in enumerate(self._cached_tiers):
                walked = (home_tiers > tier_index) & (
                    (hit_tier < 0) | (hit_tier >= tier_index)
                )
                increments[walked, column] = self.cache_probe_seconds
                total_probes += int(np.count_nonzero(walked))
            for tier_index in self._cached_tiers:
                hits_here = hit_tier == tier_index
                if bool(hits_here.any()):
                    increments[hits_here, num_cached] = self.tiers[
                        tier_index
                    ].cache_hit_seconds(size_hint)
        if num_fast:
            increments[fm_mask, num_cached] = (
                self.fm_lookup_overhead + size_hint / self.fm_bandwidth
            )
        chain = np.concatenate(([start_time], increments.ravel()))
        cursor = float(np.add.accumulate(chain)[-1])
        probe_chain = np.concatenate(
            ([0.0], np.full(total_probes, self.cache_probe_seconds))
        )
        probe_seconds = float(np.add.accumulate(probe_chain)[-1])

        # Misses: group by home tier in first-occurrence row order and issue
        # the identical grouped read_rows calls the scalar path would.
        outcome = BatchFetchOutcome(
            rows=rows_out,
            served_positions=positions,
            completion_time=start_time,
            cache_hits=cache_hits,
            fast_rows=num_fast,
            probe_seconds=probe_seconds,
        )
        recorder = self.recorder
        if recorder.enabled and cursor > start_time:
            recorder.span(
                "walk",
                "chain",
                start_time,
                cursor - start_time,
                args={
                    "probe_seconds": probe_seconds,
                    "cache_hits": cache_hits,
                    "fast_rows": num_fast,
                },
            )
        io_done = cursor
        misses_by_tier: Dict[int, List[int]] = {}
        for row in np.nonzero(~served)[0].tolist():
            misses_by_tier.setdefault(int(home_tiers[row]), []).append(row)
        for tier_index, miss_rows in misses_by_tier.items():
            tier = self.tiers[tier_index]
            targets = self._promotion_targets(tier_index) if cache_enabled else []
            group_done = cursor
            num_reads = len(miss_rows)
            rows_at = np.asarray(miss_rows, dtype=np.int64)
            miss_stored = stored[rows_at]
            batch = tier.read_rows_batch(table_name, miss_stored, cursor)
            if batch is not None:
                # Array-native miss path: one grouped batch submission per
                # tier, a matrix scatter instead of per-row frombuffer, and
                # target-major promotion fills (each cache still sees its
                # fills in row order, so LRU state matches the scalar walk).
                matrix, completions = batch
                rows_out[rows_at] = matrix
                served[rows_at] = True
                if num_reads:
                    group_done = max(group_done, float(completions.max()))
                for target in targets:
                    self.tiers[target].fill_cache_batch(
                        table_name, miss_stored, matrix
                    )
            else:
                reads = tier.read_rows(
                    table_name, [int(index) for index in miss_stored], cursor
                )
                num_reads = len(reads)
                for row, read in zip(miss_rows, reads):
                    rows_out[row] = np.frombuffer(read.data, dtype=np.uint8)
                    served[row] = True
                    group_done = max(group_done, read.completion_time)
                    for target in targets:
                        self.tiers[target].fill_cache(
                            (table_name, int(stored[row])), read.data
                        )
            outcome.device_reads += num_reads
            outcome.reads_by_tier[tier_index] = (
                outcome.reads_by_tier.get(tier_index, 0) + num_reads
            )
            io_done = max(io_done, group_done)
            if recorder.enabled:
                recorder.span(
                    f"io:{tier.spec.name}",
                    "storage",
                    cursor,
                    group_done - cursor,
                    args={
                        "tier": tier_index,
                        "reads": num_reads,
                        "promoted_rows": len(targets) * num_reads,
                    },
                )

        if not bool(served.all()):
            outcome.rows = rows_out[served]
            outcome.served_positions = positions[served]
        outcome.completion_time = max(cursor, io_done)
        return outcome

    # ---------------------------------------------------------------- admin
    def clear_caches(self) -> None:
        for tier in self.tiers:
            tier.clear_cache()

    def reset_stats(self) -> None:
        for tier in self.tiers:
            tier.reset_stats()

    def reset_queues(self) -> None:
        """Clear every tier's behavioural queue state; counters untouched."""
        for tier in self.tiers:
            tier.reset_queues()

    def reset_rng(self) -> None:
        """Rewind every tier's random streams to their as-constructed state."""
        for tier in self.tiers:
            tier.reset_rng()
