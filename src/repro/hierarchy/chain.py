"""The tier chain: serving row lookups through an N-tier hierarchy.

A :class:`TierChain` owns an ordered list of :class:`~repro.hierarchy.tier.MemoryTier`
objects (fastest first) plus the :class:`~repro.hierarchy.placement.TieredPlacement`
that says where every stored row lives.  Serving one row homed on tier ``k``:

1. probe the row caches of tiers ``0 .. k-1`` in order (each probe costs host
   CPU time),
2. on a full miss, read the row from tier ``k`` — fast-memory bytes for rows
   homed on tier 0, a device IO otherwise,
3. promote the row into upper-tier caches according to the configurable
   promotion policy (``all`` — every cache above the home tier; ``top`` —
   the fastest cache only; ``none``).

Whenever only tier 0 carries a cache — every legacy two-tier configuration —
``all`` and ``top`` coincide and the chain is bit-identical to the original
FM-cache-then-SM path of :class:`~repro.core.sdm.SoftwareDefinedMemory`,
which the parity tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hierarchy.placement import TieredPlacement
from repro.hierarchy.tier import PROMOTION_POLICIES, MemoryTier


@dataclass
class FetchOutcome:
    """Result of fetching one batch of stored rows through the chain."""

    rows_by_position: Dict[int, bytes]
    completion_time: float
    device_reads: int = 0
    fast_rows: int = 0
    cache_hits: int = 0
    probe_seconds: float = 0.0
    reads_by_tier: Dict[int, int] = field(default_factory=dict)


class TierChain:
    """Serves stored-row lookups through an ordered list of memory tiers."""

    def __init__(
        self,
        tiers: Sequence[MemoryTier],
        placement: TieredPlacement,
        *,
        promotion: str = "top",
        cache_probe_seconds: float = 0.0,
        fm_lookup_overhead: float = 0.0,
        fm_bandwidth: float = float("inf"),
    ) -> None:
        if not tiers:
            raise ValueError("TierChain needs at least one tier")
        if promotion not in PROMOTION_POLICIES:
            raise ValueError(
                f"unknown promotion policy {promotion!r}; choices: {PROMOTION_POLICIES}"
            )
        if placement.num_tiers > len(tiers):
            raise ValueError(
                f"placement references {placement.num_tiers} tiers, chain has {len(tiers)}"
            )
        self.tiers = list(tiers)
        self.placement = placement
        self.promotion = promotion
        self.cache_probe_seconds = cache_probe_seconds
        self.fm_lookup_overhead = fm_lookup_overhead
        self.fm_bandwidth = fm_bandwidth
        # Which tiers carry a cache never changes after construction, so the
        # per-home-tier probe lists (walked for every row) are precomputed.
        cached = [index for index, tier in enumerate(self.tiers) if tier.cache is not None]
        self._upper_cache_indices: List[List[int]] = [
            [index for index in cached if index < home_tier]
            for home_tier in range(len(self.tiers) + 1)
        ]

    @property
    def num_tiers(self) -> int:
        return len(self.tiers)

    def _upper_caches(self, home_tier: int) -> List[int]:
        """Tier indices above ``home_tier`` that carry a row cache."""
        return self._upper_cache_indices[home_tier]

    def _promotion_targets(self, home_tier: int) -> List[int]:
        if self.promotion == "none":
            return []
        upper = self._upper_caches(home_tier)
        if not upper:
            return []
        if self.promotion == "top":
            return upper[:1]
        return upper

    def fetch_rows(
        self,
        table_name: str,
        stored_by_position: Sequence[Tuple[int, int]],
        start_time: float,
        *,
        cache_enabled: bool = True,
        size_hint: Optional[int] = None,
    ) -> FetchOutcome:
        """Fetch stored rows ``[(position, stored_index), ...]`` of a table.

        Probe costs accrue serially in position order (the host walks the
        request), then all cache misses are submitted to their home tiers'
        devices concurrently at the accrued cursor — exactly the two-phase
        structure of the original two-tier serve path.
        """
        decision = self.placement.for_table(table_name)
        cursor = start_time
        outcome = FetchOutcome(rows_by_position={}, completion_time=start_time)
        misses_by_tier: Dict[int, List[Tuple[int, int]]] = {}
        # One vectorised segment lookup for the whole batch instead of a
        # per-row linear scan.
        home_tiers = decision.tiers_of_rows(
            [stored for _, stored in stored_by_position]
        )

        for (position, stored), home_tier in zip(stored_by_position, home_tiers):
            home_tier = int(home_tier)
            served = False
            if cache_enabled:
                for tier_index in self._upper_caches(home_tier):
                    cursor += self.cache_probe_seconds
                    outcome.probe_seconds += self.cache_probe_seconds
                    tier = self.tiers[tier_index]
                    cached = tier.probe_cache(
                        (table_name, int(stored)), size_hint=size_hint
                    )
                    if cached is not None:
                        # Bytes cached below tier 0 still cross that tier's
                        # media, and a hit re-promotes the row into the
                        # faster caches it has fallen out of (per policy).
                        cursor += tier.cache_hit_seconds(len(cached))
                        for target in self._promotion_targets(tier_index):
                            self.tiers[target].fill_cache(
                                (table_name, int(stored)), cached
                            )
                        outcome.rows_by_position[position] = cached
                        outcome.cache_hits += 1
                        served = True
                        break
            if served:
                continue
            if home_tier == 0:
                # Fast-memory resident row: read it straight from the model at
                # fast-memory cost (dequantisation is charged by the caller
                # together with every other fetched row).
                read = self.tiers[0].read_rows(table_name, [int(stored)], cursor)[0]
                data = read.data
                cursor += self.fm_lookup_overhead + len(data) / self.fm_bandwidth
                fast = self.tiers[0]
                fast.stats.rows_served += 1
                fast.stats.bytes_served += len(data)
                outcome.rows_by_position[position] = data
                outcome.fast_rows += 1
                continue
            misses_by_tier.setdefault(home_tier, []).append((position, int(stored)))

        io_done = cursor
        for tier_index, entries in misses_by_tier.items():
            tier = self.tiers[tier_index]
            reads = tier.read_rows(
                table_name, [stored for _, stored in entries], cursor
            )
            outcome.device_reads += len(reads)
            outcome.reads_by_tier[tier_index] = (
                outcome.reads_by_tier.get(tier_index, 0) + len(reads)
            )
            targets = self._promotion_targets(tier_index) if cache_enabled else []
            for (position, stored), read in zip(entries, reads):
                outcome.rows_by_position[position] = read.data
                io_done = max(io_done, read.completion_time)
                for target in targets:
                    self.tiers[target].fill_cache((table_name, stored), read.data)

        outcome.completion_time = max(cursor, io_done)
        return outcome

    # ---------------------------------------------------------------- admin
    def clear_caches(self) -> None:
        for tier in self.tiers:
            tier.clear_cache()

    def reset_stats(self) -> None:
        for tier in self.tiers:
            tier.reset_stats()
