"""N-tier memory hierarchy: pluggable tiers, tiered placement, tier chain.

Generalises the original two-tier FM/SM split into an ordered list of
first-class memory tiers (DRAM, CXL/DIMM 3DXP, Optane, ZSSD, NAND — the
Table 1 spectrum).  The pieces:

* :class:`TierSpec` / :func:`parse_tiers` — declarative tier geometry, also
  parseable from ``"dram:4GiB,cxl:32GiB,nand:1TiB"`` strings.
* :class:`MemoryTier` (:class:`FastTier`, :class:`DeviceTier`) — runtime
  tiers with capacity/latency models, per-tier row caches and
  :class:`TierStats`.
* :class:`TieredPlacement` / :func:`compute_tiered_placement` — assigns
  tables (or hotness-ranked row ranges) across the hierarchy by access
  frequency, generalising :func:`repro.core.placement.compute_placement`.
* :class:`TierChain` — serves lookups through the chain: probe tier ``k``,
  miss to ``k+1``, promote on a configurable policy.

:class:`~repro.core.sdm.SoftwareDefinedMemory` builds on these; the classic
two-tier configuration remains a bit-identical special case.
"""

from repro.hierarchy.chain import FetchOutcome, TierChain
from repro.hierarchy.cost import cost_factor, memory_cost_dram_gb, pareto_frontier
from repro.hierarchy.placement import (
    TieredPlacement,
    TieredTablePlacement,
    TierSegment,
    compute_tiered_placement,
    hotness_ranking,
)
from repro.hierarchy.tier import (
    PROMOTION_POLICIES,
    TECHNOLOGY_ALIASES,
    DeviceTier,
    FastTier,
    MemoryTier,
    TierSpec,
    TierStats,
    build_tiers,
    parse_technology,
    parse_tiers,
)

__all__ = [
    "DeviceTier",
    "FastTier",
    "FetchOutcome",
    "MemoryTier",
    "PROMOTION_POLICIES",
    "TECHNOLOGY_ALIASES",
    "TierChain",
    "TierSegment",
    "TierSpec",
    "TierStats",
    "TieredPlacement",
    "TieredTablePlacement",
    "build_tiers",
    "compute_tiered_placement",
    "cost_factor",
    "hotness_ranking",
    "memory_cost_dram_gb",
    "pareto_frontier",
    "parse_technology",
    "parse_tiers",
]
