"""First-class memory tiers for the N-tier hierarchy.

The paper's design space (Table 1) is a memory-technology spectrum — DRAM,
CXL/DIMM 3DXP, Optane, ZSSD, NAND — but the original reproduction hard-coded
exactly two tiers (fast memory + one SM device technology).  This module
promotes tiers to pluggable objects:

* :class:`TierSpec` — the declarative description of one tier: technology,
  capacity, optional per-tier row-cache budget, device count.  Specs parse
  from compact strings (``"cxl:32GiB"``), mappings (``{"technology": "nand",
  "capacity": "1TiB", "cache": "4MiB"}``) or existing instances, so they
  travel through JSON scenario specs and CLI flags unchanged.
* :class:`MemoryTier` — the runtime protocol every tier implements: capacity
  and latency/bandwidth accounting, an optional per-tier row cache, and
  cumulative :class:`TierStats`.
* :class:`FastTier` / :class:`DeviceTier` — the two concrete kinds: byte-
  addressable fast memory (rows served straight from the in-memory model) and
  device-backed tiers (a :class:`~repro.storage.block_layout.BlockLayout`
  over :class:`~repro.storage.device.SimulatedDevice` instances behind an
  io_uring-style engine).

An ordered list of tiers — fastest first — is what
:class:`~repro.hierarchy.chain.TierChain` serves lookups through.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache.base import CacheKey
from repro.cache.unified import UnifiedCacheConfig, UnifiedRowCache
from repro.sim.units import BLOCK_SIZE, parse_size
from repro.storage.access import AccessPath, DirectIOReader, MmapReader, ReadResult
from repro.storage.block_layout import BlockLayout
from repro.storage.device import DeviceStats, SimulatedDevice
from repro.storage.io_engine import IOEngine, IOEngineConfig
from repro.storage.spec import TABLE1_SPECS, DeviceSpec, Technology

#: Keys a tier *entry* mapping may carry (``TierSpec.from_value`` input and
#: the addressable leaves of ``backend.options.tiers.N.<key>`` spec paths).
TIER_ENTRY_KEYS = frozenset(
    {
        "technology",
        "capacity",
        "capacity_bytes",
        "cache",
        "cache_bytes",
        "devices",
        "num_devices",
        "name",
    }
)

#: Short, CLI-friendly aliases for the Table 1 technologies.
TECHNOLOGY_ALIASES: Dict[str, Technology] = {
    "dram": Technology.DRAM,
    "nand": Technology.NAND_FLASH,
    "flash": Technology.NAND_FLASH,
    "optane": Technology.OPTANE_SSD,
    "zssd": Technology.ZSSD,
    "dimm": Technology.DIMM_3DXP,
    "scm": Technology.DIMM_3DXP,
    "cxl": Technology.CXL_3DXP,
}


def parse_technology(value: Union[str, Technology]) -> Technology:
    """Resolve a technology from an enum member, its value, name, or alias."""
    if isinstance(value, Technology):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in TECHNOLOGY_ALIASES:
            return TECHNOLOGY_ALIASES[lowered]
        try:
            return Technology(lowered)
        except ValueError:
            pass
        try:
            return Technology[value.strip().upper()]
        except KeyError:
            pass
    known = sorted(TECHNOLOGY_ALIASES) + [member.value for member in Technology]
    raise ValueError(f"unknown memory technology {value!r}; known: {known}")


@dataclass(frozen=True)
class TierSpec:
    """Declarative description of one memory tier.

    Attributes
    ----------
    technology:
        Table 1 technology family; ``Technology.DRAM`` marks a byte-
        addressable fast tier (no simulated devices).
    capacity_bytes:
        Placement budget of the tier.  For the fast tier this bounds how many
        user tables (or hot row ranges) are homed directly in fast memory —
        generalising the old ``dram_budget_bytes`` — so ``0`` is legal there.
    cache_bytes:
        Row-cache budget fronting slower tiers.  ``None`` keeps the tier's
        default (the configured unified-cache budget on tier 0, no cache on
        device tiers).
    num_devices:
        Device count for device-backed tiers (capacity is split evenly).
    name:
        Display name; defaults to the technology value.
    """

    technology: Technology
    capacity_bytes: int
    cache_bytes: Optional[int] = None
    num_devices: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "technology", parse_technology(self.technology))
        object.__setattr__(self, "capacity_bytes", parse_size(self.capacity_bytes))
        if self.cache_bytes is not None:
            object.__setattr__(self, "cache_bytes", parse_size(self.cache_bytes))
            if self.cache_bytes < 0:
                raise ValueError(f"cache_bytes must be non-negative: {self.cache_bytes}")
        if self.capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be non-negative: {self.capacity_bytes}")
        if not self.is_fast and self.capacity_bytes == 0:
            raise ValueError(
                f"device tier {self.technology.value!r} needs a positive capacity"
            )
        if self.num_devices <= 0:
            raise ValueError(f"num_devices must be positive: {self.num_devices}")
        if not self.is_fast and self.technology not in TABLE1_SPECS:
            raise ValueError(
                f"no Table 1 device spec for technology {self.technology.value!r}"
            )
        if not self.name:
            object.__setattr__(self, "name", self.technology.value)

    @property
    def is_fast(self) -> bool:
        """True for byte-addressable fast memory (DRAM) tiers."""
        return self.technology is Technology.DRAM

    def with_capacity(self, capacity_bytes: int) -> "TierSpec":
        return replace(self, capacity_bytes=capacity_bytes)

    # ------------------------------------------------------------- conversion
    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "technology": self.technology.value,
            "capacity": self.capacity_bytes,
        }
        if self.cache_bytes is not None:
            data["cache"] = self.cache_bytes
        if self.num_devices != 1:
            data["devices"] = self.num_devices
        if self.name != self.technology.value:
            data["name"] = self.name
        return data

    @classmethod
    def from_value(cls, value: Union["TierSpec", str, Mapping[str, Any]]) -> "TierSpec":
        """Build a spec from an instance, a ``tech:capacity[:cache]`` string,
        or a mapping with ``technology``/``capacity``/``cache``/``devices``."""
        if isinstance(value, TierSpec):
            return value
        if isinstance(value, str):
            # Positions are significant: "dram::64KiB" means default capacity
            # with a 64KiB cache, so empty segments keep their slot instead
            # of silently shifting later values left.
            parts = [part.strip() for part in value.split(":")]
            if not 1 <= len(parts) <= 3 or not parts[0]:
                raise ValueError(
                    f"tier string must be 'tech[:capacity[:cache]]', got {value!r}"
                )
            technology = parse_technology(parts[0])
            default_capacity = (
                0
                if technology is Technology.DRAM
                else TABLE1_SPECS[technology].capacity_bytes
            )
            capacity = (
                parse_size(parts[1])
                if len(parts) >= 2 and parts[1]
                else default_capacity
            )
            cache = parse_size(parts[2]) if len(parts) == 3 and parts[2] else None
            return cls(
                technology=technology,
                capacity_bytes=capacity,
                cache_bytes=cache,
            )
        if isinstance(value, Mapping):
            unknown = set(value) - TIER_ENTRY_KEYS
            if unknown:
                raise ValueError(
                    f"unknown tier keys {sorted(unknown)}; valid keys: "
                    f"{sorted(TIER_ENTRY_KEYS)}"
                )
            for canonical, alias in (
                ("capacity", "capacity_bytes"),
                ("cache", "cache_bytes"),
                ("devices", "num_devices"),
            ):
                if canonical in value and alias in value:
                    # Both spellings present means one silently loses — the
                    # classic way a sweep over the alias no-ops.  Refuse.
                    raise ValueError(
                        f"tier entry sets both {canonical!r} and {alias!r}: "
                        f"{dict(value)}"
                    )
            if "technology" not in value:
                raise ValueError(f"tier mapping needs a 'technology' key: {dict(value)}")
            capacity = value.get("capacity", value.get("capacity_bytes"))
            technology = parse_technology(value["technology"])
            if capacity is None:
                capacity = (
                    0
                    if technology is Technology.DRAM
                    else TABLE1_SPECS[technology].capacity_bytes
                )
            cache = value.get("cache", value.get("cache_bytes"))
            return cls(
                technology=technology,
                capacity_bytes=parse_size(capacity),
                cache_bytes=None if cache is None else parse_size(cache),
                num_devices=int(value.get("devices", value.get("num_devices", 1))),
                name=str(value.get("name", "")),
            )
        raise ValueError(f"cannot build a TierSpec from {value!r}")


def parse_tiers(
    value: Union[None, str, TierSpec, Mapping[str, Any], Iterable[Any]],
) -> Tuple[TierSpec, ...]:
    """Parse an ordered tier list (fastest first) from any accepted form.

    Accepts a comma-separated string (``"dram:4GiB,cxl:32GiB,nand:1TiB"``), a
    sequence of :meth:`TierSpec.from_value` inputs, or ``None`` (empty).
    Validates the hierarchy shape: the first tier must be fast memory (DRAM)
    and every later tier must be device-backed.
    """
    if value is None:
        return ()
    if isinstance(value, str):
        entries: Sequence[Any] = [part for part in value.split(",") if part.strip()]
    elif isinstance(value, (Mapping, TierSpec)):
        raise ValueError(
            "tiers must be an ordered list of tier entries, not a single "
            f"{type(value).__name__}"
        )
    else:
        try:
            entries = list(value)
        except TypeError:
            raise ValueError(
                f"tiers must be a comma string or an ordered list of tier "
                f"entries, got {type(value).__name__}"
            ) from None
    specs = tuple(TierSpec.from_value(entry) for entry in entries)
    if not specs:
        return ()
    if len(specs) < 2:
        raise ValueError(
            f"a memory hierarchy needs at least 2 tiers (fast + backing), got {len(specs)}"
        )
    if not specs[0].is_fast:
        raise ValueError(
            f"tier 0 must be fast memory (dram), got {specs[0].technology.value!r}"
        )
    for index, spec in enumerate(specs[1:], start=1):
        if spec.is_fast:
            raise ValueError(
                f"tier {index} must be a device tier, got fast memory; "
                f"only tier 0 is byte-addressable"
            )
    return specs


@dataclass
class TierStats:
    """Cumulative serving statistics of one tier.

    ``rows_served``/``bytes_served`` count rows whose bytes this tier
    provided — a cache hit at this tier, a device read from this tier, or a
    fast-memory read for rows homed on tier 0.  ``ios`` counts device reads
    issued against this tier's storage.
    """

    cache_probes: int = 0
    cache_hits: int = 0
    rows_served: int = 0
    bytes_served: int = 0
    ios: int = 0
    promoted_rows: int = 0

    @property
    def cache_hit_rate(self) -> float:
        if self.cache_probes == 0:
            return 0.0
        return self.cache_hits / self.cache_probes

    def merge(self, other: "TierStats") -> None:
        self.cache_probes += other.cache_probes
        self.cache_hits += other.cache_hits
        self.rows_served += other.rows_served
        self.bytes_served += other.bytes_served
        self.ios += other.ios
        self.promoted_rows += other.promoted_rows


class MemoryTier(abc.ABC):
    """Runtime protocol of one tier in the hierarchy.

    A tier owns its capacity/latency model, an optional per-tier row cache
    (fronting slower tiers), and cumulative :class:`TierStats`.  Device tiers
    additionally own their block layout, devices and IO engine.
    """

    spec: TierSpec
    stats: TierStats
    cache: Optional[UnifiedRowCache]

    @property
    def is_fast(self) -> bool:
        return self.spec.is_fast

    @abc.abstractmethod
    def read_rows(
        self, table_name: str, stored_indices: Sequence[int], start_time: float
    ) -> List[ReadResult]:
        """Read rows homed on this tier, starting at ``start_time``."""

    def probe_cache(self, key: CacheKey, size_hint: Optional[int] = None) -> Optional[bytes]:
        """Probe this tier's row cache; counts towards the tier's stats."""
        if self.cache is None:
            return None
        self.stats.cache_probes += 1
        value = self.cache.get(key, size_hint=size_hint)
        if value is not None:
            self.stats.cache_hits += 1
            self.stats.rows_served += 1
            self.stats.bytes_served += len(value)
        return value

    def probe_cache_batch(
        self, table_name: str, stored_indices: np.ndarray, row_len: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`probe_cache`: one probe per stored row, in order.

        Stats and cache LRU/CPU effects are identical to calling the scalar
        probe once per row.  Returns ``(hit_mask, values)`` with the hit rows
        stacked as a ``(num_hits, row_len)`` uint8 matrix in input order.
        """
        stored = np.asarray(stored_indices, dtype=np.int64)
        if self.cache is None:
            return np.zeros(stored.size, dtype=bool), np.empty((0, row_len), dtype=np.uint8)
        self.stats.cache_probes += int(stored.size)
        hit_mask, values = self.cache.probe_batch(table_name, stored, row_len)
        num_hits = int(values.shape[0])
        self.stats.cache_hits += num_hits
        self.stats.rows_served += num_hits
        self.stats.bytes_served += num_hits * row_len
        return hit_mask, values

    def cache_contains_batch(
        self, table_name: str, stored_indices: np.ndarray, row_len: int
    ) -> np.ndarray:
        """Vectorised cache membership test; no stats, no LRU effect."""
        stored = np.asarray(stored_indices, dtype=np.int64)
        if self.cache is None:
            return np.zeros(stored.size, dtype=bool)
        return self.cache.contains_batch(table_name, stored, size_hint=row_len)

    def read_rows_matrix(
        self, table_name: str, stored_indices: np.ndarray
    ) -> Optional[np.ndarray]:
        """Batched payload gather for rows homed on this tier, as one uint8
        matrix, or ``None`` when the tier has no array-native source."""
        return None

    def read_rows_batch(
        self, table_name: str, stored_indices: np.ndarray, start_time: float
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Array-native :meth:`read_rows`: ``(rows_matrix, completion_times)``
        in input order, or ``None`` when this tier has no batch read path
        (the caller falls back to the scalar reads).  Stats and device/engine
        side effects are bit-identical to the per-row calls."""
        return None

    def fill_cache(self, key: CacheKey, value: bytes) -> bool:
        """Insert a row read from a slower tier into this tier's cache."""
        if self.cache is None:
            return False
        admitted = self.cache.put(key, value)
        if admitted:
            self.stats.promoted_rows += 1
        return admitted

    def fill_cache_batch(
        self, table_name: str, stored_indices: np.ndarray, values: np.ndarray
    ) -> int:
        """Batched :meth:`fill_cache`: one insert per matrix row, in order.

        Returns the number of admitted rows (counted via the cache's own
        ``inserts`` counter so the SoA fast path and the scalar fallback
        agree); ``promoted_rows`` accounting matches per-row fills exactly.
        """
        if self.cache is None:
            return 0
        inserts_before = self.cache.stats.inserts
        self.cache.fill_batch(
            table_name, np.asarray(stored_indices, dtype=np.int64), values
        )
        admitted = self.cache.stats.inserts - inserts_before
        self.stats.promoted_rows += admitted
        return admitted

    def cache_hit_seconds(self, num_bytes: int) -> float:
        """Media time to deliver a row from this tier's cache.

        The probe itself (hash + lookup metadata, host-resident) is charged
        separately by the chain; this is the cost of moving the cached bytes
        out of the tier's own memory.  Zero for fast-memory tiers — their
        transfer cost is folded into the host probe — and the device's
        byte-addressable access latency plus link time for device tiers.
        """
        return 0.0

    def clear_cache(self) -> None:
        if self.cache is not None:
            self.cache.clear()

    def reset_stats(self) -> None:
        self.stats = TierStats()
        if self.cache is not None:
            self.cache.reset_stats()

    def reset_queues(self) -> None:
        """Clear behavioural queue state (outstanding IOs, busy channels).

        Counters are left alone — :meth:`reset_stats` owns those.  A no-op
        for tiers without device queues.
        """
        return None

    def reset_rng(self) -> None:
        """Rewind any tier-owned random streams to their as-constructed
        state (backend reuse); a no-op for tiers without randomness."""
        return None

    def fm_footprint_bytes(self) -> int:
        """Fast-memory bytes this tier consumes beyond homed data."""
        return 0

    def allocated_bytes(self) -> int:
        """Bytes of homed table data stored on this tier."""
        return 0


class FastTier(MemoryTier):
    """Tier 0: byte-addressable fast memory.

    Rows homed here are served straight from the in-memory model at fast-
    memory cost; the tier's cache is the unified row cache fronting every
    slower tier (the paper's FM row cache).
    """

    def __init__(
        self,
        spec: TierSpec,
        cache: Optional[UnifiedRowCache] = None,
        row_source: Optional[Callable[[str, int], bytes]] = None,
        matrix_row_source: Optional[Callable[[str, np.ndarray], np.ndarray]] = None,
    ) -> None:
        if not spec.is_fast:
            raise ValueError(f"FastTier needs a dram spec, got {spec.technology.value!r}")
        self.spec = spec
        self.cache = cache
        self.stats = TierStats()
        self._row_source = row_source
        self._matrix_row_source = matrix_row_source

    def read_rows(
        self, table_name: str, stored_indices: Sequence[int], start_time: float
    ) -> List[ReadResult]:
        if self._row_source is None:
            raise RuntimeError(
                "FastTier has no row source; rows cannot be homed on it"
            )
        results: List[ReadResult] = []
        for stored in stored_indices:
            data = self._row_source(table_name, int(stored))
            results.append(
                ReadResult(
                    table_name=table_name,
                    row_index=int(stored),
                    data=data,
                    requested_bytes=len(data),
                    transferred_bytes=len(data),
                    fm_bytes_consumed=0,
                    completion_time=start_time,
                    latency=0.0,
                )
            )
        return results

    def read_rows_matrix(
        self, table_name: str, stored_indices: np.ndarray
    ) -> Optional[np.ndarray]:
        """Serve tier-0-homed rows straight from the in-memory table arrays.

        Bypasses the per-row ``bytes`` round-trip of :meth:`read_rows` — the
        payloads are one advanced-indexing gather.  Side-effect free, exactly
        like the scalar fast read; the chain does the stats accounting.
        """
        if self._matrix_row_source is None:
            return None
        return self._matrix_row_source(table_name, np.asarray(stored_indices, dtype=np.int64))

    def fm_footprint_bytes(self) -> int:
        return self.cache.capacity_bytes if self.cache is not None else 0


@dataclass(frozen=True)
class _Segment:
    """One contiguous stored-row range of a table homed on a device tier."""

    key: str  # layout key (equals the table name for whole-table placements)
    start: int
    end: int


class DeviceTier(MemoryTier):
    """A device-backed tier: block layout + devices + IO engine + access path.

    ``device_seed_offset`` keeps device seeds globally unique across tiers
    (tier order matches construction order), so a refactored two-tier stack
    draws the exact same device tail-latency samples as the original.
    """

    def __init__(
        self,
        spec: TierSpec,
        io_config: Optional[IOEngineConfig] = None,
        cache_config: Optional[UnifiedCacheConfig] = None,
        use_mmap: bool = False,
        seed: int = 0,
        device_seed_offset: int = 0,
        device_spec: Optional[DeviceSpec] = None,
        devices: Optional[Sequence[SimulatedDevice]] = None,
    ) -> None:
        if spec.is_fast:
            raise ValueError("DeviceTier cannot be built from a dram spec")
        self.spec = spec
        self.device_seeds: List[int] = []
        if devices is not None:
            if not devices:
                raise ValueError(f"tier {spec.name!r}: prebuilt device list is empty")
            self.devices = list(devices)
            self.device_spec = self.devices[0].spec
        else:
            base_spec = (
                device_spec if device_spec is not None else TABLE1_SPECS[spec.technology]
            )
            per_device = spec.capacity_bytes // spec.num_devices
            if per_device <= 0:
                raise ValueError(
                    f"tier {spec.name!r}: capacity {spec.capacity_bytes} too small for "
                    f"{spec.num_devices} device(s)"
                )
            self.device_spec = base_spec.with_capacity(per_device)
            self.device_seeds = [
                seed + device_seed_offset + index for index in range(spec.num_devices)
            ]
            self.devices = [
                SimulatedDevice(self.device_spec, seed=device_seed)
                for device_seed in self.device_seeds
            ]
        self.layout = BlockLayout([d.spec.capacity_bytes for d in self.devices])
        self.io_engine = IOEngine(self.devices, io_config)
        self.access_path: AccessPath = (
            MmapReader(self.io_engine, self.layout)
            if use_mmap
            else DirectIOReader(self.io_engine, self.layout)
        )
        self.cache = (
            UnifiedRowCache(cache_config)
            if cache_config is not None and spec.cache_bytes
            else None
        )
        self.stats = TierStats()
        self._segments: Dict[str, List[_Segment]] = {}
        self._row_bytes: Dict[str, int] = {}

    # -------------------------------------------------------------- loading
    def add_segment(
        self,
        table_name: str,
        start: int,
        end: int,
        row_bytes: int,
        row_source: Callable[[int], bytes],
        whole_table: bool = False,
    ) -> None:
        """Allocate and write stored rows ``[start, end)`` of a table.

        ``row_source`` maps a stored index to its serialized bytes.  Whole-
        table segments keep the bare table name as layout key so per-table
        outstanding-IO limits and legacy layouts are unchanged.
        """
        if end <= start:
            raise ValueError(f"segment [{start}, {end}) of {table_name!r} is empty")
        key = table_name if whole_table else f"{table_name}@{start}"
        segment = _Segment(key=key, start=start, end=end)
        self._segments.setdefault(table_name, []).append(segment)
        self._row_bytes[table_name] = row_bytes
        extent = self.layout.add_table(key, end - start, row_bytes)
        device = self.devices[extent.device_index]
        rows_per_block = extent.rows_per_block
        num_rows = end - start
        for block_offset in range(extent.num_blocks):
            buffer = bytearray(BLOCK_SIZE)
            first_row = block_offset * rows_per_block
            for slot in range(rows_per_block):
                local_row = first_row + slot
                if local_row >= num_rows:
                    break
                row = row_source(start + local_row)
                offset = slot * row_bytes
                buffer[offset : offset + len(row)] = row
            device.write_block(extent.first_lba + block_offset, bytes(buffer))

    def has_table(self, table_name: str) -> bool:
        return table_name in self._segments

    def _resolve(self, table_name: str, stored_index: int) -> Tuple[str, int]:
        """(layout key, local row) of one stored row on this tier."""
        for segment in self._segments.get(table_name, ()):
            if segment.start <= stored_index < segment.end:
                return segment.key, stored_index - segment.start
        raise KeyError(
            f"stored row {stored_index} of table {table_name!r} is not homed on "
            f"tier {self.spec.name!r}"
        )

    # -------------------------------------------------------------- serving
    def read_rows(
        self, table_name: str, stored_indices: Sequence[int], start_time: float
    ) -> List[ReadResult]:
        """Read rows from this tier's devices, preserving input order."""
        by_key: Dict[str, List[Tuple[int, int]]] = {}
        for position, stored in enumerate(stored_indices):
            key, local = self._resolve(table_name, int(stored))
            by_key.setdefault(key, []).append((position, local))
        results: List[Optional[ReadResult]] = [None] * len(stored_indices)
        for key, entries in by_key.items():
            reads = self.access_path.read_rows(
                key, [local for _, local in entries], start_time
            )
            for (position, _), read in zip(entries, reads):
                results[position] = read
        completed = [read for read in results if read is not None]
        self.stats.ios += len(completed)
        self.stats.rows_served += len(completed)
        self.stats.bytes_served += sum(len(read.data) for read in completed)
        return completed

    def read_rows_batch(
        self, table_name: str, stored_indices: np.ndarray, start_time: float
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Array-native :meth:`read_rows` through the batched IO engine path.

        Segment resolution is vectorised, and layout keys are visited in
        first-occurrence order — the identical sequence of engine submissions
        (and therefore gating, RNG and stats effects) as the scalar grouped
        walk.  Returns ``None`` when the access path has no batch support
        (mmap), before any state is mutated.
        """
        if not self.access_path.supports_batch_reads:
            return None
        stored = np.asarray(stored_indices, dtype=np.int64)
        count = int(stored.size)
        segments = self._segments.get(table_name, [])
        segment_of = np.full(count, -1, dtype=np.int64)
        for index, segment in enumerate(segments):
            unclaimed = segment_of < 0
            inside = unclaimed & (stored >= segment.start) & (stored < segment.end)
            segment_of[inside] = index
        if bool((segment_of < 0).any()):
            missing = int(stored[segment_of < 0][0])
            raise KeyError(
                f"stored row {missing} of table {table_name!r} is not homed on "
                f"tier {self.spec.name!r}"
            )
        row_len = self._row_bytes[table_name]
        matrix = np.empty((count, row_len), dtype=np.uint8)
        completions = np.empty(count, dtype=np.float64)
        present = np.unique(segment_of)
        first_positions = sorted(
            (int(np.argmax(segment_of == index)), int(index)) for index in present
        )
        for _, index in first_positions:
            segment = segments[index]
            members = segment_of == index
            result = self.access_path.read_rows_batch(
                segment.key, stored[members] - segment.start, start_time
            )
            if result is None:  # pragma: no cover - guarded by supports_batch_reads
                return None
            matrix[members] = result.rows
            completions[members] = result.completion_times
        self.stats.ios += count
        self.stats.rows_served += count
        self.stats.bytes_served += count * row_len
        return matrix, completions

    def cache_hit_seconds(self, num_bytes: int) -> float:
        # A row cached in this tier's memory still crosses the tier's media:
        # one byte-addressable access latency plus the link transfer.  Without
        # this, a CXL-resident cache would serve at DRAM speed while billed
        # at CXL cost.
        return (
            self.device_spec.base_read_latency
            + num_bytes / self.device_spec.read_bus_bandwidth
        )

    # ----------------------------------------------------------- accounting
    def fm_footprint_bytes(self) -> int:
        # A device tier's row cache lives in its own (cheap) memory; only the
        # access path's page cache competes for fast memory.
        return self.access_path.fm_footprint_bytes()

    def allocated_bytes(self) -> int:
        return self.layout.total_allocated_bytes()

    def device_stats(self) -> DeviceStats:
        merged = DeviceStats()
        for device in self.devices:
            merged.merge(device.stats)
        return merged

    def clear_cache(self) -> None:
        super().clear_cache()
        # The access path may hold its own fast-memory-resident cache (the
        # mmap page cache, with per-page fault completion times): dropping
        # cached rows without dropping mapped pages would leave a "cold"
        # tier that still serves page hits.
        self.access_path.clear_cache()

    def reset_stats(self) -> None:
        super().reset_stats()
        self.io_engine.reset_stats()
        self.access_path.reset_stats()
        for device in self.devices:
            device.reset_stats()

    def reset_queues(self) -> None:
        self.io_engine.reset_queues()
        for device in self.devices:
            device.reset_queues()

    def reset_rng(self) -> None:
        for device in self.devices:
            device.reset_rng()


#: Promotion policies for rows read from slower tiers (see TierChain).
PROMOTION_POLICIES = ("top", "all", "none")


def build_tiers(
    specs: Sequence[TierSpec],
    *,
    io_config: Optional[IOEngineConfig] = None,
    fast_cache: Optional[UnifiedRowCache] = None,
    device_cache_config: Callable[[TierSpec], Optional[UnifiedCacheConfig]] = lambda spec: None,
    use_mmap: bool = False,
    seed: int = 0,
    fast_row_source: Optional[Callable[[str, int], bytes]] = None,
    fast_matrix_row_source: Optional[Callable[[str, np.ndarray], np.ndarray]] = None,
    first_device_tier_devices: Optional[Sequence[SimulatedDevice]] = None,
) -> List[MemoryTier]:
    """Materialise runtime tiers from an ordered spec list (fastest first).

    Device seeds are offset by the running device count so every device in
    the hierarchy draws an independent (but reproducible) latency stream.
    ``first_device_tier_devices`` substitutes prebuilt devices for the first
    device tier (the legacy ``SoftwareDefinedMemory(devices=...)`` hook).
    """
    specs = parse_tiers(specs)
    tiers: List[MemoryTier] = []
    device_seed_offset = 0
    first_device_tier = True
    for spec in specs:
        if spec.is_fast:
            tiers.append(
                FastTier(
                    spec,
                    cache=fast_cache,
                    row_source=fast_row_source,
                    matrix_row_source=fast_matrix_row_source,
                )
            )
            continue
        tiers.append(
            DeviceTier(
                spec,
                io_config=io_config,
                cache_config=device_cache_config(spec),
                use_mmap=use_mmap,
                seed=seed,
                device_seed_offset=device_seed_offset,
                devices=first_device_tier_devices if first_device_tier else None,
            )
        )
        first_device_tier = False
        device_seed_offset += spec.num_devices
    return tiers
