"""Campaigns end to end: a 3-axis matrix, a store, and a regression diff.

This walkthrough declares one :class:`repro.CampaignSpec` over three axes —
embedding backend (whole :class:`BackendChoice` sections) × offered load ×
serving concurrency — and runs it twice through the parallel executor:

1. a **baseline** run with the default admission queue, persisted under
   ``runs/campaign_demo/baseline``;
2. a **candidate** run of the *same grid* with a deliberately starved
   admission queue (``traffic.queue_depth=2``), persisted next to it.

:func:`repro.compare_runs` then matches the two runs point by point (names
encode the grid coordinates) and flags direction-aware regressions: shrinking
the queue sheds traffic, so ``dropped_queries`` regresses at high load even
though tail latency may *improve* — exactly the kind of trade-off a scalar
diff would hide.  Both stores are memoised: re-running this script only
re-simulates points that are not already on disk.

Run with:  python examples/campaign.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    BackendChoice,
    CampaignSpec,
    ExperimentStore,
    ModelChoice,
    ScenarioSpec,
    ServingChoice,
    TrafficSpec,
    WorkloadChoice,
    campaign_table,
    compare_runs,
    run_campaign,
)
from repro.sim.units import MIB

RUNS_DIR = Path(__file__).resolve().parent.parent / "runs" / "campaign_demo"

GRID = {
    "backend": [
        BackendChoice(name="dram"),
        BackendChoice(name="sdm", options=dict(row_cache_capacity_bytes=1 * MIB)),
    ],
    "traffic.offered_qps": [1000.0, 8000.0, 32000.0],
    "serving.concurrency": [1, 2],
}


def build_campaign(queue_depth: int) -> CampaignSpec:
    base = ScenarioSpec(
        name="campaign-demo",
        model=ModelChoice(spec="M1", max_tables_per_group=2, max_rows_per_table=512),
        workload=WorkloadChoice(num_queries=150, num_users=100),
        traffic=TrafficSpec(
            mode="open",
            arrival="poisson",
            offered_qps=GRID["traffic.offered_qps"][0],
            queue_depth=queue_depth,
        ),
        serving=ServingChoice(concurrency=1, warmup_queries=30, store_results=False),
    )
    return CampaignSpec.from_grid(base, GRID, name="campaign-demo")


def run_into(campaign: CampaignSpec, store_dir: Path):
    store = ExperimentStore(store_dir)
    store.write_campaign(campaign.to_dict())
    # runtime="pool" is the work-stealing executor: points dispatch
    # longest-expected-first, each worker keeps built backends resident
    # across points sharing a backend_hash (here: all six points per
    # BackendChoice), a failing point would quarantine instead of aborting
    # its siblings, and every worker appends straight to its own store
    # shard.  Serial, pool, and reuse-off all produce bit-identical results.
    outcomes = run_campaign(campaign, parallel=4, runtime="pool", retries=1, store=store)
    cached = sum(1 for outcome in outcomes if outcome.cached)
    failed = [outcome for outcome in outcomes if outcome.failed]
    print(f"{store_dir.name}: {len(outcomes)} points ({cached} from store)")
    if failed:
        raise SystemExit(
            f"{len(failed)} point(s) quarantined, e.g. "
            f"{failed[0].scenario}: {failed[0].error_type}: {failed[0].error}"
        )
    return outcomes


def main() -> None:
    # Plan first: the dry runtime expands and validates the whole grid and
    # reports what would execute, without simulating anything.
    plan = run_campaign(build_campaign(queue_depth=64), runtime="dry")
    print(f"plan: {len(plan)} points, e.g. {plan[0].scenario}")

    baseline = run_into(build_campaign(queue_depth=64), RUNS_DIR / "baseline")
    candidate = run_into(build_campaign(queue_depth=2), RUNS_DIR / "candidate")

    print()
    print(
        campaign_table(
            baseline,
            ["achieved_qps", "dropped_queries"],
            title="baseline (queue_depth=64)",
        )
    )
    print()
    print(
        campaign_table(
            candidate,
            ["achieved_qps", "dropped_queries"],
            title="candidate (queue_depth=2)",
        )
    )

    comparison = compare_runs(
        RUNS_DIR / "baseline",
        RUNS_DIR / "candidate",
        metrics=["achieved_qps", "latency_seconds.p99", "dropped_queries"],
        tolerance=0.05,  # ignore sub-5% wobble, flag real movement
    )
    print()
    print(comparison.table())
    print(
        f"\n{len(comparison.regressions)} regression(s) across "
        f"{comparison.compared_points} matched points "
        f"({len(comparison.spec_drift)} with deliberate spec drift)"
    )


if __name__ == "__main__":
    main()
