"""Quickstart: serve a scaled-down M1 model through Software Defined Memory.

Builds a laptop-scale version of the paper's M1 model, places its user
embedding tables on two simulated Nand Flash SSDs behind the FM row cache,
runs a synthetic query stream, and verifies that tiered serving returns the
same ranking scores as DRAM-only serving while reporting hit rates and
latency.

Run with:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.analysis import format_table
from repro.core import SDMConfig, SoftwareDefinedMemory
from repro.dlrm import (
    ComputeSpec,
    InMemoryBackend,
    InferenceEngine,
    M1_SPEC,
    build_scaled_model,
)
from repro.serving import LatencyTarget, ServingSimulator
from repro.sim.units import MIB, MILLISECOND, format_bytes
from repro.storage import Technology
from repro.workload import QueryGenerator, WorkloadConfig


def main() -> None:
    # 1. A scaled-down M1: same structure (user/item tables, pooling factors,
    #    batched item lookups), row counts shrunk to run in seconds.
    model = build_scaled_model(M1_SPEC, max_tables_per_group=4, max_rows_per_table=2048, item_batch=4)
    print(f"model {model.name}: {len(model.tables)} tables, "
          f"{format_bytes(model.embedding_size_bytes)} of embeddings")

    # 2. The SDM backend: user tables on 2x Nand Flash, hot rows cached in FM.
    sdm = SoftwareDefinedMemory(
        model,
        SDMConfig(
            device_technology=Technology.NAND_FLASH,
            num_devices=2,
            row_cache_capacity_bytes=4 * MIB,
            pooled_cache_capacity_bytes=1 * MIB,
        ),
    )
    print(f"placement: {len(sdm.placement.sm_tables())} tables on SM "
          f"({format_bytes(sdm.sm_footprint_bytes())}), "
          f"FM footprint {format_bytes(sdm.fm_footprint_bytes())}")

    # 3. A synthetic query stream with power-law locality and returning users.
    compute = ComputeSpec()
    engine = InferenceEngine(model, compute, user_backend=sdm)
    queries = QueryGenerator(
        model, WorkloadConfig(item_batch=4, num_users=200), seed=0
    ).generate(200)

    # 4. Verify tiered serving is numerically identical to DRAM-only serving.
    reference_engine = InferenceEngine(model, compute, InMemoryBackend(model.tables, compute))
    for query in queries[:5]:
        np.testing.assert_allclose(
            engine.run_query(query).scores,
            reference_engine.run_query(query).scores,
            rtol=1e-4,
            atol=1e-5,
        )
    print("scores from SM-tiered serving match DRAM-only serving")

    # 5. Serve the stream and report steady-state behaviour.
    result = ServingSimulator(engine, concurrency=2).run(queries, warmup_queries=40)
    target = LatencyTarget(percentile=95, budget_seconds=25 * MILLISECOND)
    rows = [
        ["queries served", result.num_queries],
        ["achieved QPS (simulated)", round(result.achieved_qps, 1)],
        ["p95 latency (ms)", round(result.percentile_latency(95) * 1e3, 3)],
        ["meets p95 SLO of 25 ms", result.meets(target)],
        ["row cache hit rate", round(sdm.row_cache_hit_rate, 3)],
        ["pooled cache hit rate", round(sdm.pooled_cache_hit_rate, 3)],
        ["SM IOs per query", round(sdm.stats.ios_per_query, 1)],
        ["device read amplification", round(sdm.device_stats().read_amplification, 2)],
    ]
    print()
    print(format_table(["metric", "value"], rows, title="steady-state serving summary"))


if __name__ == "__main__":
    main()
