"""Quickstart: serve a scaled-down M1 model through Software Defined Memory.

Declares the scenario once as a :class:`repro.ScenarioSpec` — a laptop-scale
M1 with its user tables on two simulated Nand Flash SSDs behind the FM row
cache, serving a synthetic power-law query stream — and runs it through the
:class:`repro.Session` facade.  A second session with the ``dram`` backend
verifies that tiered serving returns the same ranking scores as DRAM-only
serving.

The same scenario runs from the command line:

    python -m repro run --model M1 --backend sdm

Run with:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import BackendChoice, ScenarioSpec, Session
from repro.sim.units import MIB, format_bytes
from repro.storage import Technology

QUICKSTART_SPEC = ScenarioSpec(
    name="quickstart-m1",
    # model: scaled-down M1 -- same structure (user/item tables, pooling
    # factors, batched item lookups), row counts shrunk to run in seconds.
    # backend: user tables on 2x Nand Flash, hot rows cached in FM.
    backend=BackendChoice(
        name="sdm",
        options=dict(
            device_technology=Technology.NAND_FLASH,
            num_devices=2,
            row_cache_capacity_bytes=4 * MIB,
            pooled_cache_capacity_bytes=1 * MIB,
        ),
    ),
)


def main() -> None:
    session = Session(QUICKSTART_SPEC)
    model = session.model
    print(f"model {model.name}: {len(model.tables)} tables, "
          f"{format_bytes(model.embedding_size_bytes)} of embeddings")

    sdm = session.backend
    print(f"placement: {len(sdm.placement.sm_tables())} tables on SM "
          f"({format_bytes(sdm.sm_footprint_bytes())}), "
          f"FM footprint {format_bytes(sdm.fm_footprint_bytes())}")

    # Verify tiered serving is numerically identical to DRAM-only serving:
    # the same spec with the `dram` backend rebuilds an identical model.
    reference_spec = ScenarioSpec.from_dict(
        {**QUICKSTART_SPEC.to_dict(), "backend": {"name": "dram"}}
    )
    reference = Session(reference_spec)
    for query in session.queries()[:5]:
        np.testing.assert_allclose(
            session.engine.run_query(query).scores,
            reference.engine.run_query(query).scores,
            rtol=1e-4,
            atol=1e-5,
        )
    print("scores from SM-tiered serving match DRAM-only serving")

    # Serve the stream and report steady-state behaviour (QPS, latency
    # percentiles, SLO verdict, cache hit rates) in one structured result.
    result = session.run()
    print()
    print(result.summary_table())


if __name__ == "__main__":
    main()
