"""Cost/latency frontier of 2- vs 3-tier memory hierarchies.

The paper's Table 1 is a spectrum, not a binary: between DRAM and NAND sit
CXL/DIMM 3DXP and Optane, each with its own latency and $/GB.  With tiers as
first-class objects (:mod:`repro.hierarchy`), "hot rows in DRAM, warm rows
on CXL, cold rows on QLC-class NAND" is just a spec — so this example sweeps
a set of 2- and 3-tier geometries over the same scenario and asks the
frontier question: which configurations are Pareto-optimal in (memory cost,
p99 latency)?

Memory cost is normalised to DRAM-GB equivalents using the Table 1 relative
$/GB column: bytes homed on each tier, plus each tier's row cache, weighted
by that tier's cost factor (mapping tensors are not counted).

The second half demonstrates hotness-ranked row-range placement: a table too
big for fast memory is split so its *measured* hottest rows — profiled from
the scenario's own access trace — live on the fast tier and the cold tail
cascades down, instead of homing the whole table on a slow tier.

Run with:  python examples/tier_study.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ScenarioSpec, Session, SoftwareDefinedMemory, format_table
from repro.core.config import SDMConfig
from repro.hierarchy import (
    compute_tiered_placement,
    hotness_ranking,
    memory_cost_dram_gb,
    pareto_frontier,
    parse_tiers,
)
from repro.workload import QueryGenerator, WorkloadConfig

#: Candidate hierarchies, fastest tier first (tier 0 capacity is the FM
#: placement budget; the row cache is configured separately).
GEOMETRIES = {
    "2-tier nand": "dram:0,nand:1GiB",
    "2-tier optane": "dram:0,optane:1GiB",
    "2-tier cxl": "dram:0,cxl:1GiB",
    "3-tier small-cxl": "dram:128KiB,cxl:256KiB,nand:1GiB",
    "3-tier big-cxl": "dram:128KiB,cxl:1MiB:64KiB,nand:1GiB",
}

ROW_CACHE_BYTES = 128 * 1024


def run_frontier() -> None:
    rows = []
    points = []
    for label, tiers in GEOMETRIES.items():
        spec = ScenarioSpec.from_dict(
            {
                "name": label,
                "model": {"max_rows_per_table": 1024},
                "backend": {
                    "name": "tiered",
                    "options": {
                        "tiers": tiers,
                        "row_cache_capacity_bytes": ROW_CACHE_BYTES,
                    },
                },
                "workload": {"num_queries": 300},
                "serving": {"warmup_queries": 50},
            }
        )
        result = Session(spec).run()
        cost = memory_cost_dram_gb(result.tiers)
        points.append((label, cost, result.latency["p99"]))
        served = {
            tier["technology"]: tier["rows_served"] for tier in result.tiers
        }
        rows.append(
            [
                label,
                round(cost * 1e3, 3),
                round(result.percentile_ms("p99"), 3),
                round(result.achieved_qps, 1),
                " / ".join(str(served[k]) for k in served),
            ]
        )

    # Pareto frontier: no other geometry is cheaper *and* faster.
    frontier = {
        label
        for label, _, _ in pareto_frontier(
            points, cost=lambda p: p[1], latency=lambda p: p[2]
        )
    }
    for row in rows:
        row.append("*" if row[0] in frontier else "")

    print(
        format_table(
            ["geometry", "cost (DRAM-GB x1e-3)", "p99 (ms)", "QPS",
             "rows served per tier", "frontier"],
            rows,
            title="cost/latency frontier: 2- vs 3-tier hierarchies",
        )
    )
    print("* = Pareto-optimal in (memory cost, p99 latency)\n")


def run_hotness_split_demo() -> None:
    """Row-range placement driven by a measured access profile."""
    spec = ScenarioSpec.from_dict(
        {"model": {"max_rows_per_table": 1024}, "workload": {"num_queries": 300}}
    )
    session = Session(spec)
    model = session.model
    user_tables = [name for name, t in model.tables.items() if t.spec.is_user]

    # Profile the scenario's own query stream, rank rows hottest-first.
    hotness = {
        name: hotness_ranking(
            session.access_trace(name), model.table(name).spec.num_rows
        )
        for name in user_tables
    }
    tiers = parse_tiers("dram:96KiB,nand:1GiB")
    ranked = compute_tiered_placement(
        model.table_specs, tiers, granularity="rows", row_hotness=hotness
    )
    unranked = compute_tiered_placement(model.table_specs, tiers, granularity="rows")

    rows = []
    for label, placement in (("hotness-ranked", ranked), ("unranked", unranked)):
        sdm = SoftwareDefinedMemory(
            session.model if label == "hotness-ranked" else Session(spec).model,
            SDMConfig(
                tiers=tiers,
                split_rows=True,
                row_cache_capacity_bytes=16 * 1024,
                pooled_cache_enabled=False,
            ),
            placement=placement,
        )
        generator = QueryGenerator(
            model, WorkloadConfig(item_batch=model.item_batch, num_users=200), seed=0
        )
        for query in generator.generate(300):
            sdm.pooled_embeddings(query.user_indices, 0.0)
            sdm.on_query_complete()
        summary = sdm.tier_summaries()
        total = sum(tier["rows_served"] for tier in summary)
        fast_fraction = summary[0]["rows_served"] / total if total else 0.0
        rows.append(
            [
                label,
                round(fast_fraction, 3),
                summary[1]["ios"],
                round(sdm.stats.ios_per_query, 2),
            ]
        )
    print(
        format_table(
            ["placement", "rows served from FM", "device IOs", "IOs/query"],
            rows,
            title="row-split placement: hotness-ranked vs unranked hot head",
        )
    )
    print(
        "Ranking the split by the measured access profile keeps the hot rows\n"
        "in fast memory, cutting device IOs for the same FM budget.\n"
    )


def main() -> None:
    run_frontier()
    run_hotness_split_demo()


if __name__ == "__main__":
    main()
