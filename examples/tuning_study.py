"""Serving-configuration tuning: the paper's Tuning APIs in action.

Uses the :class:`~repro.core.autotune.AutoTuner` to sweep the knobs the paper
exposes (row-cache size, pooled-cache LenThreshold, placement DRAM budget and
SM technology) for a scaled M2-like model, scoring each configuration by the
throughput the host sustains at a p95 latency target.

Run with:  python examples/tuning_study.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table
from repro.core import AutoTuner, PlacementPolicy, SDMConfig, SoftwareDefinedMemory
from repro.dlrm import ComputeSpec, InferenceEngine, M2_SPEC, build_scaled_model
from repro.serving import LatencyTarget, ServingSimulator
from repro.sim.units import KIB, MIB, MILLISECOND
from repro.storage import Technology
from repro.workload import QueryGenerator, WorkloadConfig

TARGET = LatencyTarget(percentile=95, budget_seconds=10 * MILLISECOND)


def evaluate(config: SDMConfig) -> float:
    """QPS at the latency target for one SDM configuration."""
    model = build_scaled_model(
        M2_SPEC, max_tables_per_group=4, max_rows_per_table=1024, item_batch=4, seed=0
    )
    sdm = SoftwareDefinedMemory(model, config)
    engine = InferenceEngine(model, ComputeSpec(), sdm)
    queries = QueryGenerator(
        model, WorkloadConfig(item_batch=4, num_users=200), seed=1
    ).generate(60)
    result = ServingSimulator(engine).run(queries, warmup_queries=15)
    return result.qps_at_latency(TARGET)


def main() -> None:
    base = SDMConfig(
        placement_policy=PlacementPolicy.FIXED_FM_SM,
        pooled_cache_capacity_bytes=512 * KIB,
    )
    tuner = AutoTuner(
        base_config=base,
        search_space={
            "device_technology": [Technology.NAND_FLASH, Technology.OPTANE_SSD],
            "row_cache_capacity_bytes": [128 * KIB, 1 * MIB],
            "pooled_len_threshold": [1, 8],
            "dram_budget_bytes": [0, 2 * MIB],
        },
        evaluate=evaluate,
    )
    results = tuner.run()

    rows = []
    for result in results[:8]:
        overrides = result.overrides
        rows.append(
            [
                overrides["device_technology"].value,
                overrides["row_cache_capacity_bytes"] // KIB,
                overrides["pooled_len_threshold"],
                overrides["dram_budget_bytes"] // KIB,
                result.score,
            ]
        )
    print(format_table(
        ["SM technology", "row cache (KiB)", "LenThreshold", "DRAM budget (KiB)", "QPS @ p95 target"],
        rows,
        title=f"top tuning candidates (of {len(results)} evaluated)",
        float_fmt=".1f",
    ))
    best = results[0]
    print(f"\nbest configuration: {best.overrides} -> {best.score:.1f} QPS at the latency target")


if __name__ == "__main__":
    main()
