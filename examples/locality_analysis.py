"""Workload locality analysis: reproduce the Figure 4/5 characterisation.

Generates a synthetic query stream for a scaled M2-like model, then analyses
(a) the temporal locality of user and item embedding accesses, (b) the
per-host locality gain from user-sticky routing, and (c) the (lack of)
spatial locality across 4 KiB blocks -- the three observations that motivate
a row-granular FM cache over block-granular approaches.

Run with:  python examples/locality_analysis.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.analysis import format_table
from repro.dlrm import M2_SPEC, build_scaled_model
from repro.sim.units import BLOCK_SIZE
from repro.workload import (
    QueryGenerator,
    RequestRouter,
    RoutingPolicy,
    WorkloadConfig,
    spatial_locality_windows,
    top_fraction_coverage,
)


def main() -> None:
    model = build_scaled_model(
        M2_SPEC, max_tables_per_group=4, max_rows_per_table=8192, item_batch=4, seed=0
    )
    generator = QueryGenerator(
        model,
        WorkloadConfig(item_batch=4, num_users=500, user_zipf_alpha=1.2, user_reuse_probability=0.8),
        seed=0,
    )
    queries = generator.generate(800)

    # --- temporal locality (Figure 4a/4b) -------------------------------
    rows = []
    for spec in model.table_specs[:6]:
        trace = generator.access_trace(queries, spec.name)
        rows.append(
            [
                spec.name.split("/")[-1],
                "user" if spec.is_user else "item",
                top_fraction_coverage(trace, 0.01),
                top_fraction_coverage(trace, 0.10),
            ]
        )
    print(format_table(
        ["table", "kind", "top-1% coverage", "top-10% coverage"],
        rows,
        title="temporal locality (access share of hottest rows)",
    ))

    # --- per-host locality under sticky routing (Figure 4c) -------------
    user_table = model.user_table_specs[0].name
    global_trace = generator.access_trace(queries, user_table)
    router = RequestRouter(4, RoutingPolicy.USER_STICKY)
    host_queries = max(router.split(queries).values(), key=len)
    host_trace = generator.access_trace(host_queries, user_table)
    print()
    print(format_table(
        ["trace", "unique rows / accesses", "top-10% coverage"],
        [
            ["global", len(set(global_trace)) / len(global_trace), top_fraction_coverage(global_trace, 0.1)],
            ["one host (user-sticky)", len(set(host_trace)) / len(host_trace), top_fraction_coverage(host_trace, 0.1)],
        ],
        title="effect of user-sticky routing on per-host locality",
    ))

    # --- spatial locality (Figure 5) -------------------------------------
    print()
    spatial_rows = []
    for spec in model.user_table_specs[:4]:
        trace = generator.access_trace(queries, spec.name)
        rows_per_block = max(BLOCK_SIZE // spec.row_bytes, 1)
        ratios = spatial_locality_windows(trace, rows_per_block, num_windows=5)
        spatial_rows.append([spec.name.split("/")[-1], *[round(r, 3) for r in ratios]])
    print(format_table(
        ["table", *[f"window {i}" for i in range(5)]],
        spatial_rows,
        title="spatial locality ratio per access window (1.0 = perfect)",
    ))
    mean_ratio = float(np.mean([row[1:] for row in spatial_rows]))
    print(f"\nmean spatial locality ratio: {mean_ratio:.3f} "
          "(low -> row-granular caching and sub-block reads pay off)")


if __name__ == "__main__":
    main()
