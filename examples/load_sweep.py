"""Load sweep as a campaign: the p99 saturation knee of a host, per backend.

The paper's per-host QPS claims (Tables 8/9) are statements about latency
under load, and the place they live is the latency-vs-offered-load curve:
flat while the host keeps up, then a knee where queueing delay takes over.
The backend × offered-QPS matrix is exactly a campaign grid, so this example
declares it once as a :class:`repro.CampaignSpec` — a ``backend`` axis (whole
:class:`BackendChoice` sections, since ``dram`` and ``sdm`` take different
options) crossed with ``traffic.offered_qps`` — and runs it through the
parallel executor with a persistent store.  Re-running the script serves
every completed point from ``runs/load_sweep/`` instead of re-simulating the
whole matrix; delete that directory for a fresh measurement.

Run with:  python examples/load_sweep.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    BackendChoice,
    CampaignSpec,
    ExperimentStore,
    ModelChoice,
    ScenarioSpec,
    ServingChoice,
    TrafficSpec,
    WorkloadChoice,
    format_table,
    run_campaign,
)
from repro.sim.units import MIB

OFFERED_QPS = [1000.0, 4000.0, 16000.0, 32000.0, 64000.0, 128000.0]

BACKENDS = [
    BackendChoice(name="dram"),
    BackendChoice(
        name="sdm",
        options=dict(row_cache_capacity_bytes=1 * MIB, pooled_cache_enabled=False),
    ),
]

STORE_DIR = Path(__file__).resolve().parent.parent / "runs" / "load_sweep"

# p99 more than 2x the zero-queueing baseline marks the saturation knee.
KNEE_FACTOR = 2.0


def build_campaign() -> CampaignSpec:
    base = ScenarioSpec(
        name="load-sweep",
        model=ModelChoice(spec="M1", max_tables_per_group=2, max_rows_per_table=1024),
        workload=WorkloadChoice(num_queries=300, num_users=200),
        traffic=TrafficSpec(mode="open", arrival="poisson", offered_qps=OFFERED_QPS[0]),
        serving=ServingChoice(concurrency=2, warmup_queries=50, store_results=False),
    )
    return CampaignSpec.from_grid(
        base,
        {"backend": BACKENDS, "traffic.offered_qps": OFFERED_QPS},
        name="load-sweep",
    )


def find_knee(results) -> float:
    """First offered QPS whose p99 exceeds KNEE_FACTOR x the lightest load's."""
    baseline = results[0][1].latency["p99"]
    for qps, result in results:
        if result.latency["p99"] > KNEE_FACTOR * baseline:
            return qps
    return float("nan")


def main() -> None:
    campaign = build_campaign()
    store = ExperimentStore(STORE_DIR)
    store.write_campaign(campaign.to_dict())
    outcomes = run_campaign(campaign, parallel=4, store=store)
    cached = sum(1 for outcome in outcomes if outcome.cached)
    print(f"{len(outcomes)} points ({cached} served from {store.root})\n")

    for backend in BACKENDS:
        results = [
            (dict(outcome.coords)["traffic.offered_qps"], outcome.result)
            for outcome in outcomes
            if dict(outcome.coords)["backend"] == backend
        ]
        rows = [
            [
                qps,
                round(result.achieved_qps, 1),
                round(result.latency["p99"] * 1e3, 3),
                round(result.queueing["p99"] * 1e3, 3),
                result.dropped_queries,
            ]
            for qps, result in results
        ]
        print(
            format_table(
                ["offered QPS", "achieved QPS", "p99 latency (ms)",
                 "p99 queue delay (ms)", "dropped"],
                rows,
                title=f"open-loop load sweep: {backend.name} backend",
            )
        )
        knee = find_knee(results)
        if knee == knee:  # not NaN
            print(f"{backend.name}: p99 saturation knee near {knee:.0f} offered QPS\n")
        else:
            print(f"{backend.name}: no saturation knee up to {OFFERED_QPS[-1]:.0f} QPS\n")


if __name__ == "__main__":
    main()
