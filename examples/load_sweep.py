"""Load sweep: find the p99-latency saturation knee of a host, per backend.

The paper's per-host QPS claims (Tables 8/9) are statements about latency
under load, and the place they live is the latency-vs-offered-load curve:
flat while the host keeps up, then a knee where queueing delay takes over.
This example drives the event-driven open-loop engine (Poisson arrivals,
bounded admission queue) across a range of offered QPS for both the ``dram``
reference backend and the ``sdm`` tiered backend, via one
:meth:`repro.Session.sweep` per backend, and prints where each backend's knee
sits.

Run with:  python examples/load_sweep.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    BackendChoice,
    ModelChoice,
    ScenarioSpec,
    ServingChoice,
    Session,
    TrafficSpec,
    WorkloadChoice,
    format_table,
)
from repro.sim.units import MIB

OFFERED_QPS = [1000.0, 4000.0, 16000.0, 32000.0, 64000.0, 128000.0]

# p99 more than 2x the zero-queueing baseline marks the saturation knee.
KNEE_FACTOR = 2.0


def sweep_spec(backend: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"load-sweep-{backend}",
        model=ModelChoice(spec="M1", max_tables_per_group=2, max_rows_per_table=1024),
        backend=BackendChoice(
            name=backend,
            options=(
                dict(row_cache_capacity_bytes=1 * MIB, pooled_cache_enabled=False)
                if backend == "sdm"
                else {}
            ),
        ),
        workload=WorkloadChoice(num_queries=300, num_users=200),
        traffic=TrafficSpec(mode="open", arrival="poisson", offered_qps=OFFERED_QPS[0]),
        serving=ServingChoice(concurrency=2, warmup_queries=50, store_results=False),
    )


def find_knee(points) -> float:
    """First offered QPS whose p99 exceeds KNEE_FACTOR x the lightest load's."""
    baseline = points[0].result.latency["p99"]
    for point in points:
        if point.result.latency["p99"] > KNEE_FACTOR * baseline:
            return point.value
    return float("nan")


def main() -> None:
    for backend in ("dram", "sdm"):
        points = Session(sweep_spec(backend)).sweep("traffic.offered_qps", OFFERED_QPS)
        rows = [
            [
                point.value,
                round(point.result.achieved_qps, 1),
                round(point.result.latency["p99"] * 1e3, 3),
                round(point.result.queueing["p99"] * 1e3, 3),
                point.result.dropped_queries,
            ]
            for point in points
        ]
        print(
            format_table(
                ["offered QPS", "achieved QPS", "p99 latency (ms)",
                 "p99 queue delay (ms)", "dropped"],
                rows,
                title=f"open-loop load sweep: {backend} backend",
            )
        )
        knee = find_knee(points)
        if knee == knee:  # not NaN
            print(f"{backend}: p99 saturation knee near {knee:.0f} offered QPS\n")
        else:
            print(f"{backend}: no saturation knee up to {OFFERED_QPS[-1]:.0f} QPS\n")


if __name__ == "__main__":
    main()
