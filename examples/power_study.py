"""Deployment power study: reproduce the paper's three serving scenarios.

Walks through the fleet-level accounting of sections 5.1-5.3, with the
deployment comparisons declared as :class:`repro.ScenarioSpec` serving
sections and evaluated through :meth:`repro.Session.power_summary`:

* M1 -- replace dual-socket DRAM-only hosts (HW-L) with single-socket hosts
  plus Nand Flash (HW-SS + SDM): ~20% fleet power saving (Table 8).
* M2 -- avoid scale-out with Optane SSDs (HW-AO + SDM): ~5% saving and a
  simpler serving paradigm (Table 9).
* M3 -- multi-tenancy on a future accelerator platform (HW-FAO + SDM): up to
  ~29% better fleet power per unit of work (Tables 10 and 11).

Run with:  python examples/power_study.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ScenarioSpec, Session, format_table
from repro.api import ServingChoice
from repro.serving import HW_FA, HW_FAO, MultiTenancyScenario, sm_bound_qps, ssds_needed
from repro.serving.multitenancy import compare_multi_tenancy
from repro.serving.power import PowerModel
from repro.sim.units import GB, MICROSECOND
from repro.storage import nand_flash_spec, optane_ssd_spec


def m1_study() -> None:
    # One spec carries both sides of the Table 8 comparison: the HW-SS + SDM
    # candidate and its HW-L DRAM-only baseline.
    total_qps = 240 * 1200
    spec = ScenarioSpec(
        name="M1: HW-SS + SDM vs HW-L",
        serving=ServingChoice(
            platform="HW-SS",
            qps_per_host=120,
            baseline_platform="HW-L",
            baseline_qps_per_host=240,
            fleet_qps=total_qps,
        ),
    )
    power = Session(spec).power_summary()
    rows = [
        ["HW-L (DRAM only)", 240, power.baseline_num_hosts, power.baseline_fleet_power],
        ["HW-SS + SDM (Nand Flash)", 120, power.num_hosts, power.fleet_power],
    ]
    print(format_table(["scenario", "QPS/host", "hosts", "total power"], rows,
                       title="M1: simpler hardware (Table 8)", float_fmt=".0f"))
    print(f"fleet power saving: {power.power_saving:.0%}\n")


def m2_study() -> None:
    total_qps = 450 * 1500
    lookups = 450 * 25
    budget = 100 * MICROSECOND
    nand_qps = min(sm_bound_qps(lookups, [nand_flash_spec(1e12)] * 2, 0.9, budget), 450)

    # HW-AO + SDM versus the scale-out baseline (HW-AN plus helper hosts).
    optane_spec = ScenarioSpec(
        name="M2: HW-AO + SDM vs scale-out",
        serving=ServingChoice(
            platform="HW-AO",
            qps_per_host=450,
            baseline_platform="HW-AN",
            baseline_qps_per_host=450,
            baseline_helper_platform="HW-S",
            baseline_helper_hosts_per_host=0.2,
            fleet_qps=total_qps,
        ),
    )
    optane = Session(optane_spec).power_summary()
    # Nand Flash cannot sustain 450 QPS/host within the latency budget, so its
    # fleet is sized by the SM-bound QPS instead.
    nand = Session(
        ScenarioSpec(
            name="M2: HW-AN + SDM (Nand)",
            serving=ServingChoice(platform="HW-AN", qps_per_host=nand_qps, fleet_qps=total_qps),
        )
    ).power_summary()

    rows = [
        ["HW-AN + ScaleOut", 450, optane.baseline_num_hosts, optane.baseline_fleet_power],
        ["HW-AN + SDM (Nand)", round(nand_qps), nand.num_hosts, nand.fleet_power],
        ["HW-AO + SDM (Optane)", 450, optane.num_hosts, optane.fleet_power],
    ]
    print(format_table(["scenario", "QPS/host", "hosts", "total power"], rows,
                       title="M2: avoiding scale-out (Table 9)", float_fmt=".0f"))
    print(f"power saving vs scale-out: {optane.power_saving:.1%}\n")


def m3_study(power_model: PowerModel) -> None:
    required_iops = 3150 * 2000 * 30 * (1 - 0.80)
    num_ssds = ssds_needed(required_iops, optane_ssd_spec())
    print(f"M3 sizing (Table 10): {required_iops / 1e6:.1f} MIOPS -> {num_ssds} Optane SSDs")

    baseline = MultiTenancyScenario(HW_FA, model_dram_bytes=160 * GB, model_sm_bytes=0,
                                    model_compute_fraction=0.225, use_sdm=False)
    with_sdm = MultiTenancyScenario(HW_FAO, model_dram_bytes=20 * GB, model_sm_bytes=140 * GB,
                                    model_compute_fraction=0.225, use_sdm=True)
    base_result, sdm_result = compare_multi_tenancy(baseline, with_sdm, power_model)
    rows = [
        ["HW-FA", HW_FA.power_with_ssds, base_result.utilisation, 1.0],
        ["HW-FAO + SDM", HW_FAO.power_with_ssds, sdm_result.utilisation,
         sdm_result.fleet_power_per_work / base_result.fleet_power_per_work],
    ]
    print(format_table(["scenario", "host power", "utilisation", "fleet power"], rows,
                       title="M3: multi-tenancy (Table 11)", float_fmt=".2f"))
    saving = 1 - sdm_result.fleet_power_per_work / base_result.fleet_power_per_work
    print(f"fleet power-per-work saving: {saving:.0%}")


def main() -> None:
    m1_study()
    m2_study()
    m3_study(PowerModel())


if __name__ == "__main__":
    main()
