"""Deployment power study: reproduce the paper's three serving scenarios.

Walks through the fleet-level accounting of sections 5.1-5.3:

* M1 -- replace dual-socket DRAM-only hosts (HW-L) with single-socket hosts
  plus Nand Flash (HW-SS + SDM): ~20% fleet power saving (Table 8).
* M2 -- avoid scale-out with Optane SSDs (HW-AO + SDM): ~5% saving and a
  simpler serving paradigm (Table 9).
* M3 -- multi-tenancy on a future accelerator platform (HW-FAO + SDM): up to
  ~29% better fleet power per unit of work (Tables 10 and 11).

Run with:  python examples/power_study.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table
from repro.serving import (
    DeploymentScenario,
    HW_AN,
    HW_AO,
    HW_FA,
    HW_FAO,
    HW_L,
    HW_S,
    HW_SS,
    MultiTenancyScenario,
    PowerModel,
    plan_deployment,
    sm_bound_qps,
    ssds_needed,
)
from repro.serving.multitenancy import compare_multi_tenancy
from repro.serving.power import power_saving
from repro.sim.units import GB, MICROSECOND
from repro.storage import nand_flash_spec, optane_ssd_spec


def m1_study(power_model: PowerModel) -> None:
    total_qps = 240 * 1200
    baseline = plan_deployment(DeploymentScenario("HW-L", HW_L, 240, total_qps), power_model)
    sdm = plan_deployment(DeploymentScenario("HW-SS + SDM", HW_SS, 120, total_qps), power_model)
    rows = [
        ["HW-L (DRAM only)", 240, baseline.num_hosts, baseline.total_power],
        ["HW-SS + SDM (Nand Flash)", 120, sdm.num_hosts, sdm.total_power],
    ]
    print(format_table(["scenario", "QPS/host", "hosts", "total power"], rows,
                       title="M1: simpler hardware (Table 8)", float_fmt=".0f"))
    print(f"fleet power saving: {power_saving(baseline.total_power, sdm.total_power):.0%}\n")


def m2_study(power_model: PowerModel) -> None:
    total_qps = 450 * 1500
    lookups = 450 * 25
    budget = 100 * MICROSECOND
    nand_qps = min(sm_bound_qps(lookups, [nand_flash_spec(1e12)] * 2, 0.9, budget), 450)
    scale_out = plan_deployment(
        DeploymentScenario("scale-out", HW_AN, 450, total_qps, helper_platform=HW_S,
                           helper_hosts_per_host=0.2),
        power_model,
    )
    nand = plan_deployment(DeploymentScenario("nand", HW_AN, nand_qps, total_qps), power_model)
    optane = plan_deployment(DeploymentScenario("optane", HW_AO, 450, total_qps), power_model)
    rows = [
        ["HW-AN + ScaleOut", 450, scale_out.total_hosts, scale_out.total_power],
        ["HW-AN + SDM (Nand)", round(nand_qps), nand.total_hosts, nand.total_power],
        ["HW-AO + SDM (Optane)", 450, optane.total_hosts, optane.total_power],
    ]
    print(format_table(["scenario", "QPS/host", "hosts", "total power"], rows,
                       title="M2: avoiding scale-out (Table 9)", float_fmt=".0f"))
    print(f"power saving vs scale-out: {power_saving(scale_out.total_power, optane.total_power):.1%}\n")


def m3_study(power_model: PowerModel) -> None:
    required_iops = 3150 * 2000 * 30 * (1 - 0.80)
    num_ssds = ssds_needed(required_iops, optane_ssd_spec())
    print(f"M3 sizing (Table 10): {required_iops / 1e6:.1f} MIOPS -> {num_ssds} Optane SSDs")

    baseline = MultiTenancyScenario(HW_FA, model_dram_bytes=160 * GB, model_sm_bytes=0,
                                    model_compute_fraction=0.225, use_sdm=False)
    with_sdm = MultiTenancyScenario(HW_FAO, model_dram_bytes=20 * GB, model_sm_bytes=140 * GB,
                                    model_compute_fraction=0.225, use_sdm=True)
    base_result, sdm_result = compare_multi_tenancy(baseline, with_sdm, power_model)
    rows = [
        ["HW-FA", HW_FA.power_with_ssds, base_result.utilisation, 1.0],
        ["HW-FAO + SDM", HW_FAO.power_with_ssds, sdm_result.utilisation,
         sdm_result.fleet_power_per_work / base_result.fleet_power_per_work],
    ]
    print(format_table(["scenario", "host power", "utilisation", "fleet power"], rows,
                       title="M3: multi-tenancy (Table 11)", float_fmt=".2f"))
    saving = 1 - sdm_result.fleet_power_per_work / base_result.fleet_power_per_work
    print(f"fleet power-per-work saving: {saving:.0%}")


def main() -> None:
    power_model = PowerModel()
    m1_study(power_model)
    m2_study(power_model)
    m3_study(power_model)


if __name__ == "__main__":
    main()
