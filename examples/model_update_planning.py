"""Model-update and warmup planning for an SDM deployment (appendix A.3/A.4).

Given a model's SM footprint and a device choice, computes how long full,
online and incremental refreshes take, which refresh cadences the device
endurance sustains (Nand Flash vs Optane), and how much serving capacity must
be over-provisioned to mask cache warmup during rolling updates.

Run with:  python examples/model_update_planning.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table
from repro.core import ModelUpdatePlanner, UpdateStrategy, warmup_capacity_overhead
from repro.sim.units import GB, TB, format_time
from repro.storage import nand_flash_spec, optane_ssd_spec, update_interval_days

USER_EMBEDDING_BYTES = 100 * GB  # M1/M2-scale user embeddings on SM
DENSE_BYTES = 2 * GB


def update_study() -> None:
    rows = []
    for device_name, specs in (
        ("2x 2TB Nand Flash", [nand_flash_spec(2 * TB)] * 2),
        ("2x 400GB Optane", [optane_ssd_spec(400 * GB)] * 2),
    ):
        planner = ModelUpdatePlanner(specs, USER_EMBEDDING_BYTES, DENSE_BYTES)
        for strategy in (
            UpdateStrategy.FULL_OFFLINE,
            UpdateStrategy.FULL_ONLINE,
            UpdateStrategy.INCREMENTAL,
            UpdateStrategy.DENSE_ONLY,
        ):
            plan = planner.plan(strategy, incremental_fraction=0.1)
            rows.append(
                [
                    device_name,
                    strategy.value,
                    plan.bytes_written / GB,
                    format_time(plan.duration_seconds) if plan.duration_seconds else "-",
                    format_time(plan.sustainable_interval_seconds)
                    if plan.sustainable_interval_seconds
                    else "unlimited",
                    plan.host_serving_during_update,
                ]
            )
    print(format_table(
        ["devices", "strategy", "GB written", "duration", "min sustainable interval", "serves during update"],
        rows,
        title="model refresh planning",
        float_fmt=".1f",
    ))

    interval = update_interval_days(USER_EMBEDDING_BYTES, dwpd=5.0, sm_capacity_bytes=4 * TB)
    print(f"\npaper endurance formula: update interval >= {interval:.2f} days "
          "(365 * ModelSize / (DWPD * SMCapacity)) for Nand Flash")


def warmup_study() -> None:
    rows = []
    for update_interval in (10, 30, 60):
        for warmup_minutes in (2, 5):
            overhead = warmup_capacity_overhead(
                updating_fraction=0.10,
                warmup_minutes=warmup_minutes,
                warmup_performance=0.5,
                update_interval_minutes=update_interval,
            )
            rows.append([update_interval, warmup_minutes, overhead * 100.0])
    print()
    print(format_table(
        ["update interval (min)", "warmup (min)", "extra capacity needed (%)"],
        rows,
        title="warmup over-provisioning for rolling updates (r=10%, p=50%)",
        float_fmt=".2f",
    ))


def main() -> None:
    update_study()
    warmup_study()


if __name__ == "__main__":
    main()
