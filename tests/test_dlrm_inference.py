"""Tests for the inference engine and the DRAM reference backend."""

import numpy as np
import pytest

from repro.dlrm import ComputeSpec, InMemoryBackend, InferenceEngine, Query

from helpers import small_model, small_queries


class TestComputeSpec:
    def test_mlp_time(self):
        compute = ComputeSpec(flops_per_second=1e9)
        assert compute.mlp_time(1e6) == pytest.approx(1e-3)

    def test_embedding_read_time_scales_with_lookups(self):
        compute = ComputeSpec()
        assert compute.embedding_read_time(20, 128) > compute.embedding_read_time(10, 128)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeSpec(flops_per_second=0)
        with pytest.raises(ValueError):
            ComputeSpec(memory_bandwidth=0)
        with pytest.raises(ValueError):
            ComputeSpec(dequant_bytes_per_second=0)
        with pytest.raises(ValueError):
            ComputeSpec(per_lookup_overhead=-1)


class TestQuery:
    def test_item_batch_derived_from_indices(self):
        model = small_model(item_batch=3)
        query = small_queries(model, 1)[0]
        assert query.item_batch == 3

    def test_inconsistent_item_batch_rejected(self):
        query = Query(
            query_id=0,
            user_id=1,
            dense_features=np.zeros(4, dtype=np.float32),
            user_indices={"u": [0]},
            item_indices={"a": [[0]], "b": [[0], [1]]},
        )
        with pytest.raises(ValueError):
            query.item_batch

    def test_lookup_counters(self):
        model = small_model(item_batch=2)
        query = small_queries(model, 1)[0]
        assert query.total_user_lookups() == sum(
            len(v) for v in query.user_indices.values()
        )
        assert query.total_item_lookups() == sum(
            len(i) for per in query.item_indices.values() for i in per
        )


class TestInMemoryBackend:
    def test_pooled_values_match_table_bag(self):
        model = small_model()
        backend = InMemoryBackend(model.tables, ComputeSpec())
        requests = {name: [0, 2] for name in model.tables}
        pooled, done = backend.pooled_embeddings(requests, start_time=1.0)
        assert done > 1.0
        for name in requests:
            np.testing.assert_allclose(pooled[name], model.table(name).bag([0, 2]))

    def test_unknown_table_rejected(self):
        model = small_model()
        backend = InMemoryBackend(model.tables, ComputeSpec())
        with pytest.raises(KeyError):
            backend.pooled_embeddings({"nope": [0]}, 0.0)


class TestInferenceEngine:
    def test_scores_match_reference_forward(self):
        model = small_model(item_batch=2)
        engine = InferenceEngine(model, ComputeSpec(), InMemoryBackend(model.tables, ComputeSpec()))
        query = small_queries(model, 1)[0]
        result = engine.run_query(query)
        for item_position in range(query.item_batch):
            indices = dict(query.user_indices)
            indices.update(
                {name: per_item[item_position] for name, per_item in query.item_indices.items()}
            )
            expected = model.forward(query.dense_features, indices)
            assert result.scores[item_position] == pytest.approx(expected, rel=1e-5)

    def test_latency_is_sum_of_phases(self):
        model = small_model(item_batch=2)
        engine = InferenceEngine(model, ComputeSpec(), InMemoryBackend(model.tables, ComputeSpec()))
        result = engine.run_query(small_queries(model, 1)[0])
        assert result.latency == pytest.approx(
            result.bottom_mlp_time + result.embedding_time + result.top_mlp_time
        )

    def test_embedding_phase_is_max_of_user_and_item(self):
        model = small_model(item_batch=2)
        engine = InferenceEngine(model, ComputeSpec(), InMemoryBackend(model.tables, ComputeSpec()))
        result = engine.run_query(small_queries(model, 1)[0])
        assert result.embedding_time == pytest.approx(
            max(result.user_embedding_time, result.item_embedding_time)
        )

    def test_run_queries_advances_time(self):
        model = small_model(item_batch=2)
        engine = InferenceEngine(model, ComputeSpec(), InMemoryBackend(model.tables, ComputeSpec()))
        results = engine.run_queries(small_queries(model, 5))
        assert len(results) == 5
        assert all(result.latency > 0 for result in results)

    def test_query_without_items_rejected(self):
        model = small_model()
        engine = InferenceEngine(model, ComputeSpec(), InMemoryBackend(model.tables, ComputeSpec()))
        query = Query(
            query_id=0,
            user_id=0,
            dense_features=np.zeros(model.dense_dim, dtype=np.float32),
            user_indices={name: [0] for name in model.tables},
            item_indices={},
        )
        with pytest.raises(ValueError):
            engine.run_query(query)

    def test_default_item_backend_is_in_memory(self):
        model = small_model(item_batch=2)
        engine = InferenceEngine(
            model, ComputeSpec(), user_backend=InMemoryBackend(model.tables, ComputeSpec())
        )
        assert isinstance(engine.item_backend, InMemoryBackend)
