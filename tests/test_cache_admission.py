"""Tests for cache admission policies."""

import pytest

from repro.cache import AlwaysAdmit, ProbabilisticAdmission, SizeThresholdAdmission


class TestAlwaysAdmit:
    def test_admits_everything(self):
        policy = AlwaysAdmit()
        assert policy.admit("k", b"v")
        assert policy.admit(("t", 1), bytes(10_000))


class TestProbabilisticAdmission:
    def test_zero_probability_rejects_all(self):
        policy = ProbabilisticAdmission(0.0)
        assert not any(policy.admit(i, b"v") for i in range(100))

    def test_one_probability_admits_all(self):
        policy = ProbabilisticAdmission(1.0)
        assert all(policy.admit(i, b"v") for i in range(100))

    def test_intermediate_probability_admits_roughly_that_fraction(self):
        policy = ProbabilisticAdmission(0.3, seed=1)
        admitted = sum(policy.admit(i, b"v") for i in range(5000))
        assert 0.25 < admitted / 5000 < 0.35

    def test_deterministic_given_seed(self):
        a = [ProbabilisticAdmission(0.5, seed=7).admit(i, b"") for i in range(50)]
        b = [ProbabilisticAdmission(0.5, seed=7).admit(i, b"") for i in range(50)]
        assert a == b

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            ProbabilisticAdmission(1.5)
        with pytest.raises(ValueError):
            ProbabilisticAdmission(-0.1)


class TestSizeThresholdAdmission:
    def test_small_values_admitted(self):
        policy = SizeThresholdAdmission(max_value_bytes=256)
        assert policy.admit("k", bytes(256))

    def test_large_values_rejected(self):
        policy = SizeThresholdAdmission(max_value_bytes=256)
        assert not policy.admit("k", bytes(257))

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            SizeThresholdAdmission(0)
