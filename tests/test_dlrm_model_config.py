"""Tests for the Table 6 model specifications and scaled model builder."""

import pytest

from repro.dlrm import (
    M1_SPEC,
    M2_SPEC,
    M3_SPEC,
    build_scaled_model,
    figure1_model_spec,
)
from repro.dlrm.model_config import TableGroupSpec
from repro.sim.units import GB


class TestTable6Specs:
    def test_m1_headline_numbers(self):
        assert M1_SPEC.size_bytes == 143 * GB
        assert M1_SPEC.user_tables.num_tables == 61
        assert M1_SPEC.item_tables.num_tables == 30
        assert M1_SPEC.user_tables.avg_pooling_factor == 42
        assert M1_SPEC.item_batch == 50

    def test_m2_headline_numbers(self):
        assert M2_SPEC.size_bytes == 150 * GB
        assert M2_SPEC.user_tables.num_tables == 450
        assert M2_SPEC.item_tables.num_tables == 280
        assert M2_SPEC.item_batch == 150

    def test_m3_headline_numbers(self):
        assert M3_SPEC.size_bytes == 1000 * GB
        assert M3_SPEC.user_tables.num_tables == 1800
        assert M3_SPEC.item_batch == 1000
        assert M3_SPEC.num_parameters == pytest.approx(5e12)

    def test_user_batch_is_one_for_all_models(self):
        for spec in (M1_SPEC, M2_SPEC, M3_SPEC):
            assert spec.user_batch == 1

    def test_user_capacity_is_majority(self):
        """The paper observes >2/3 of capacity comes from user embeddings."""
        for spec in (M1_SPEC, M2_SPEC, M3_SPEC):
            assert spec.user_capacity_fraction >= 0.6

    def test_figure1_model_shape(self):
        spec = figure1_model_spec()
        assert spec.num_tables == 734
        assert spec.user_tables.num_tables == 445
        assert spec.user_tables.capacity_bytes == 100 * GB


class TestTableProfiles:
    def test_profile_count_matches_spec(self):
        profiles = M1_SPEC.table_profiles(seed=0)
        assert len(profiles) == M1_SPEC.num_tables

    def test_profiles_deterministic(self):
        a = M1_SPEC.table_profiles(seed=0)
        b = M1_SPEC.table_profiles(seed=0)
        assert [p.spec.num_rows for p in a] == [p.spec.num_rows for p in b]

    def test_total_capacity_close_to_spec(self):
        profiles = M2_SPEC.table_profiles(seed=0)
        total = sum(p.size_bytes for p in profiles)
        embedding_capacity = (
            M2_SPEC.user_tables.capacity_bytes + M2_SPEC.item_tables.capacity_bytes
        )
        assert total == pytest.approx(embedding_capacity, rel=0.15)

    def test_row_bytes_within_group_range(self):
        profiles = M1_SPEC.table_profiles(seed=0)
        for profile in profiles:
            group = M1_SPEC.user_tables if profile.spec.is_user else M1_SPEC.item_tables
            assert group.row_bytes_min <= profile.spec.row_bytes <= group.row_bytes_max + 1

    def test_item_tables_carry_batch_factor(self):
        profiles = M1_SPEC.table_profiles(seed=0)
        item = [p for p in profiles if not p.spec.is_user][0]
        assert item.batch_size == M1_SPEC.item_batch
        assert item.bytes_per_query == pytest.approx(
            item.batch_size * item.spec.avg_pooling_factor * item.spec.row_bytes
        )

    def test_user_tables_dominate_capacity_but_not_bandwidth(self):
        """The central skew of Figure 1: user tables hold most capacity while
        item tables (batched) demand most of the bandwidth."""
        profiles = M1_SPEC.table_profiles(seed=0)
        user = [p for p in profiles if p.spec.is_user]
        item = [p for p in profiles if not p.spec.is_user]
        assert sum(p.size_bytes for p in user) > sum(p.size_bytes for p in item)
        assert sum(p.bytes_per_query for p in item) > sum(p.bytes_per_query for p in user)

    def test_mlp_layer_sizes(self):
        sizes = M1_SPEC.mlp_layer_sizes()
        assert len(sizes) == M1_SPEC.num_mlp_layers
        assert all(size == M1_SPEC.avg_mlp_size for size in sizes)


class TestBuildScaledModel:
    def test_scaled_model_structure(self):
        model = build_scaled_model(M1_SPEC, max_tables_per_group=4, max_rows_per_table=128)
        assert len(model.user_table_specs) == 4
        assert len(model.item_table_specs) == 4
        assert all(spec.num_rows <= 128 for spec in model.table_specs)

    def test_item_batch_defaults_to_spec(self):
        model = build_scaled_model(M1_SPEC, max_tables_per_group=2, max_rows_per_table=64)
        assert model.item_batch == M1_SPEC.item_batch

    def test_item_batch_override(self):
        model = build_scaled_model(
            M1_SPEC, max_tables_per_group=2, max_rows_per_table=64, item_batch=5
        )
        assert model.item_batch == 5

    def test_pooling_factor_scaled_to_row_count(self):
        model = build_scaled_model(M1_SPEC, max_tables_per_group=4, max_rows_per_table=64)
        for spec in model.table_specs:
            assert spec.avg_pooling_factor <= spec.num_rows

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            build_scaled_model(M1_SPEC, max_tables_per_group=0)
        with pytest.raises(ValueError):
            build_scaled_model(M1_SPEC, max_rows_per_table=0)

    def test_model_runs_forward(self):
        import numpy as np

        model = build_scaled_model(M2_SPEC, max_tables_per_group=2, max_rows_per_table=64, item_batch=2)
        indices = {name: [0, 1] for name in model.tables}
        score = model.forward(np.zeros(model.dense_dim, dtype=np.float32), indices)
        assert np.isfinite(score)


class TestGroupValidation:
    def test_invalid_group_rejected(self):
        with pytest.raises(ValueError):
            TableGroupSpec(
                num_tables=0,
                row_bytes_min=32,
                row_bytes_max=64,
                row_bytes_avg=48,
                avg_pooling_factor=1,
                batch_size=1,
                capacity_bytes=GB,
            )
        with pytest.raises(ValueError):
            TableGroupSpec(
                num_tables=1,
                row_bytes_min=64,
                row_bytes_max=32,
                row_bytes_avg=48,
                avg_pooling_factor=1,
                batch_size=1,
                capacity_bytes=GB,
            )
