"""Tests for the discrete-event simulation core."""

import pytest

from repro.sim import EventQueue, SimClock, Simulator


class TestEventQueue:
    def test_len_counts_live_events(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert len(queue) == 2

    def test_pop_returns_earliest(self):
        queue = EventQueue()
        queue.schedule(2.0, lambda: "late")
        queue.schedule(1.0, lambda: "early")
        assert queue.pop().time == 1.0

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        first = queue.schedule(1.0, lambda: "a")
        second = queue.schedule(1.0, lambda: "b")
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1
        assert queue.pop().time == 2.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_len_tracks_interleaved_schedule_cancel_pop(self):
        queue = EventQueue()
        first = queue.schedule(1.0, lambda: "a")
        second = queue.schedule(2.0, lambda: "b")
        assert len(queue) == 2
        first.cancel()
        assert len(queue) == 1
        third = queue.schedule(3.0, lambda: "c")
        assert len(queue) == 2
        assert queue.pop() is second
        assert len(queue) == 1
        third.cancel()
        assert len(queue) == 0
        assert queue.pop() is None

    def test_cancel_after_pop_does_not_corrupt_len(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.pop() is event
        # Cancelling an already-popped event must not affect the live count.
        event.cancel()
        assert len(queue) == 1

    def test_cancel_all_then_schedule_again(self):
        queue = EventQueue()
        events = [queue.schedule(float(t), lambda: None) for t in range(1, 4)]
        for event in events:
            event.cancel()
        assert len(queue) == 0
        assert queue.peek_time() is None
        revived = queue.schedule(0.5, lambda: "live")
        assert len(queue) == 1
        assert queue.pop() is revived

    def test_cancelled_middle_event_skipped_in_order(self):
        queue = EventQueue()
        early = queue.schedule(1.0, lambda: None)
        middle = queue.schedule(2.0, lambda: None)
        late = queue.schedule(3.0, lambda: None)
        middle.cancel()
        assert [queue.pop(), queue.pop(), queue.pop()] == [early, late, None]


class TestSimulator:
    def test_step_advances_clock_and_runs_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.5, lambda: fired.append(True))
        assert sim.step() is True
        assert sim.clock.now == pytest.approx(1.5)
        assert fired == [True]

    def test_step_on_empty_queue_returns_false(self):
        assert Simulator().step() is False

    def test_schedule_after_uses_relative_delay(self):
        sim = Simulator(SimClock(2.0))
        sim.schedule_after(1.0, lambda: None)
        sim.step()
        assert sim.clock.now == pytest.approx(3.0)

    def test_schedule_in_past_rejected(self):
        sim = Simulator(SimClock(5.0))
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_after(-0.5, lambda: None)

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(5.0, lambda: fired.append(5))
        executed = sim.run(until=2.0)
        assert executed == 1
        assert fired == [1]
        assert sim.clock.now == pytest.approx(2.0)

    def test_run_drains_queue(self):
        sim = Simulator()
        fired = []
        for t in (0.5, 1.0, 1.5):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        assert sim.run() == 3
        assert fired == [0.5, 1.0, 1.5]

    def test_run_respects_max_events(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        assert sim.run(max_events=2) == 2
        assert len(sim.queue) == 1

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.clock.now)
            if len(fired) < 3:
                sim.schedule_after(1.0, chain)

        sim.schedule_at(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_processed_events_counter(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 1
