"""Unit tests of the repro.obs trace recorders and the Chrome-trace export."""

import json

import pytest

from repro.obs.trace import (
    NULL_RECORDER,
    SIM_PID,
    WALL_PID,
    ChromeTraceRecorder,
    TraceRecorder,
    validate_chrome_trace,
)


class TestNullRecorder:
    def test_disabled_and_silent(self):
        recorder = TraceRecorder()
        assert recorder.enabled is False
        assert recorder.wall_profiling is False
        # Every emission is a no-op; nothing raises, nothing is stored.
        recorder.set_track(3)
        recorder.pause()
        recorder.resume()
        recorder.span("s", "cat", 0.0, 1.0)
        recorder.instant("i", "cat", 0.0)
        recorder.counter("c", 0.0, {"depth": 1})
        recorder.wall_span("w", 0.0, 1.0)

    def test_shared_singleton_stays_disabled(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.resume()
        assert NULL_RECORDER.enabled is False


class TestChromeTraceRecorder:
    def test_span_converts_seconds_to_microseconds(self):
        recorder = ChromeTraceRecorder()
        recorder.span("serve", "engine", 0.25, 0.5, tid=2, args={"query_id": 7})
        trace = recorder.to_chrome_trace()
        [event] = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert event == {
            "name": "serve",
            "cat": "engine",
            "ph": "X",
            "ts": 0.25e6,
            "dur": 0.5e6,
            "pid": SIM_PID,
            "tid": 2,
            "args": {"query_id": 7},
        }

    def test_default_track_follows_set_track(self):
        recorder = ChromeTraceRecorder()
        recorder.set_track(5)
        recorder.span("s", "c", 0.0, 1.0)
        [event] = [e for e in recorder.to_chrome_trace()["traceEvents"] if e["ph"] == "X"]
        assert event["tid"] == 5

    def test_instant_and_counter_phases(self):
        recorder = ChromeTraceRecorder()
        recorder.instant("drop", "engine", 1.0, tid=0, args={"query_id": 3})
        recorder.counter("admission", 1.0, {"queue_depth": 4})
        events = {e["ph"]: e for e in recorder.to_chrome_trace()["traceEvents"] if e["ph"] in "iC"}
        assert events["i"]["s"] == "t"
        assert events["C"]["args"] == {"queue_depth": 4}

    def test_pause_resume_excludes_spans_and_restores_state(self):
        recorder = ChromeTraceRecorder()
        recorder.pause()
        recorder.span("warmup", "engine", 0.0, 1.0)
        assert len(recorder) == 0
        recorder.resume()
        assert recorder.enabled is True
        recorder.span("measured", "engine", 1.0, 1.0)
        assert len(recorder) == 1

    def test_resume_restores_disabled_state(self):
        # Wall-profiling-only recorders keep sim spans off across warmup.
        recorder = ChromeTraceRecorder(wall_profiling=True)
        recorder.enabled = False
        recorder.pause()
        recorder.resume()
        assert recorder.enabled is False

    def test_event_cap_counts_drops_instead_of_growing(self):
        recorder = ChromeTraceRecorder(max_events=2)
        for i in range(5):
            recorder.span(f"s{i}", "c", float(i), 1.0)
        assert len(recorder) == 2
        assert recorder.dropped_events == 3
        assert recorder.to_chrome_trace()["otherData"]["dropped_events"] == 3

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError, match="max_events"):
            ChromeTraceRecorder(max_events=0)

    def test_wall_spans_land_on_their_own_reanchored_track(self):
        recorder = ChromeTraceRecorder(wall_profiling=True)
        recorder.wall_span("sm:t0", 1000.5, 0.25)
        recorder.wall_span("sm:t1", 1001.0, 0.25)
        trace = recorder.to_chrome_trace()
        wall = [e for e in trace["traceEvents"] if e["pid"] == WALL_PID and e["ph"] == "X"]
        assert [e["ts"] for e in wall] == [0.0, 0.5e6]
        # The wall-clock process gets its own metadata name.
        names = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert names == ["simulated host", "wall clock (profiling)"]

    def test_thread_metadata_names_tracks(self):
        recorder = ChromeTraceRecorder()
        recorder.name_thread(1, "stream 0")
        threads = {
            e["tid"]: e["args"]["name"]
            for e in recorder.to_chrome_trace()["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert threads == {0: "admission", 1: "stream 0"}

    def test_write_creates_parents_and_valid_json(self, tmp_path):
        recorder = ChromeTraceRecorder()
        recorder.span("s", "c", 0.0, 1.0)
        out = recorder.write(tmp_path / "deep" / "trace.json")
        loaded = json.loads(out.read_text(encoding="utf-8"))
        validate_chrome_trace(loaded)


class TestValidateChromeTrace:
    def test_accepts_recorder_output(self):
        recorder = ChromeTraceRecorder()
        recorder.span("s", "c", 0.0, 1.0)
        recorder.instant("i", "c", 0.0)
        recorder.counter("n", 0.0, {"v": 1})
        validate_chrome_trace(recorder.to_chrome_trace())

    def test_rejects_missing_container(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_rejects_event_without_phase(self):
        with pytest.raises(ValueError, match="'ph'"):
            validate_chrome_trace({"traceEvents": [{"pid": 0, "tid": 0}]})

    def test_rejects_complete_event_without_duration(self):
        event = {"name": "s", "ph": "X", "ts": 0, "pid": 0, "tid": 0}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [event]})
