"""Tests for deterministic RNG derivation."""

import numpy as np

from repro.sim import derive_seed, make_rng


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_different_keys_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_base_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_seed_is_non_negative_63_bit(self):
        for key in range(50):
            seed = derive_seed(0, key)
            assert 0 <= seed < 2**63

    def test_string_and_int_keys_supported(self):
        assert isinstance(derive_seed(0, "table", 3, "x"), int)


class TestMakeRng:
    def test_reproducible_streams(self):
        a = make_rng(42, "component").random(5)
        b = make_rng(42, "component").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_components_get_different_streams(self):
        a = make_rng(42, "alpha").random(5)
        b = make_rng(42, "beta").random(5)
        assert not np.array_equal(a, b)
