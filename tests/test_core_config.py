"""Tests for the SDM configuration (Tuning API)."""

import pytest

from repro.core import AccessPathKind, PlacementPolicy, SDMConfig
from repro.storage import IOEngineConfig, Technology


class TestSDMConfig:
    def test_defaults_are_the_papers_choices(self):
        config = SDMConfig()
        assert config.placement_policy is PlacementPolicy.SM_ONLY_WITH_CACHE
        assert config.access_path is AccessPathKind.DIRECT_IO
        assert config.io.sub_block_reads is True
        assert config.inter_op_parallelism is True
        assert config.pooled_cache_enabled is True
        assert config.deprune_at_load is False
        assert config.dequantize_at_load is False

    def test_with_overrides_returns_modified_copy(self):
        base = SDMConfig()
        changed = base.with_overrides(device_technology=Technology.OPTANE_SSD, num_devices=4)
        assert changed.device_technology is Technology.OPTANE_SSD
        assert changed.num_devices == 4
        assert base.num_devices == 2

    def test_io_config_embedded(self):
        config = SDMConfig(io=IOEngineConfig(max_outstanding_per_device=8))
        assert config.io.max_outstanding_per_device == 8

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SDMConfig(num_devices=0)
        with pytest.raises(ValueError):
            SDMConfig(row_cache_capacity_bytes=0)
        with pytest.raises(ValueError):
            SDMConfig(memory_optimized_fraction=1.5)
        with pytest.raises(ValueError):
            SDMConfig(pooled_cache_capacity_bytes=0)
        with pytest.raises(ValueError):
            SDMConfig(pooled_len_threshold=-1)
        with pytest.raises(ValueError):
            SDMConfig(dram_budget_bytes=-1)
        with pytest.raises(ValueError):
            SDMConfig(device_capacity_bytes=0)

    def test_pinned_tables_default_empty(self):
        assert SDMConfig().pinned_fm_tables == ()
