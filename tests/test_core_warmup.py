"""Tests for warmup modelling (appendix A.4)."""

import pytest

from repro.core import warmup_capacity_overhead, warmup_hit_rate_curve


class TestWarmupCapacityOverhead:
    def test_paper_example_parameters(self):
        """The appendix-A.4 example (r=10%, w=5 min, p=50%, t=30 min).

        The paper's prose quotes 1.2% but its own formula (r*w)/(p*t) with
        those numbers evaluates to 1/30 ~= 3.3%; we implement the formula as
        written and record the discrepancy in EXPERIMENTS.md.
        """
        overhead = warmup_capacity_overhead(
            updating_fraction=0.10,
            warmup_minutes=5,
            warmup_performance=0.50,
            update_interval_minutes=30,
        )
        assert overhead == pytest.approx((0.10 * 5) / (0.50 * 30), rel=1e-9)
        assert 0.01 < overhead < 0.05

    def test_longer_warmup_needs_more_capacity(self):
        short = warmup_capacity_overhead(0.1, 2, 0.5, 30)
        long = warmup_capacity_overhead(0.1, 10, 0.5, 30)
        assert long > short

    def test_better_warmup_performance_needs_less_capacity(self):
        slow = warmup_capacity_overhead(0.1, 5, 0.25, 30)
        fast = warmup_capacity_overhead(0.1, 5, 0.9, 30)
        assert fast < slow

    def test_more_frequent_updates_need_more_capacity(self):
        frequent = warmup_capacity_overhead(0.1, 5, 0.5, 10)
        rare = warmup_capacity_overhead(0.1, 5, 0.5, 60)
        assert frequent > rare

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            warmup_capacity_overhead(0.0, 5, 0.5, 30)
        with pytest.raises(ValueError):
            warmup_capacity_overhead(0.1, 0, 0.5, 30)
        with pytest.raises(ValueError):
            warmup_capacity_overhead(0.1, 5, 0.0, 30)
        with pytest.raises(ValueError):
            warmup_capacity_overhead(0.1, 5, 0.5, 0)
        with pytest.raises(ValueError):
            warmup_capacity_overhead(0.1, 40, 0.5, 30)


class TestWarmupHitRateCurve:
    def test_calls_runner_with_increments(self):
        served = []

        def runner(increment):
            served.append(increment)
            return sum(served) / 100.0

        curve = warmup_hit_rate_curve(runner, checkpoints=[10, 30, 60])
        assert served == [10, 20, 30]
        assert [point[0] for point in curve] == [10, 30, 60]

    def test_duplicate_and_unordered_checkpoints_normalised(self):
        curve = warmup_hit_rate_curve(lambda n: 0.5, checkpoints=[30, 10, 10])
        assert [point[0] for point in curve] == [10, 30]

    def test_invalid_checkpoints_rejected(self):
        with pytest.raises(ValueError):
            warmup_hit_rate_curve(lambda n: 0.5, checkpoints=[])
        with pytest.raises(ValueError):
            warmup_hit_rate_curve(lambda n: 0.5, checkpoints=[0, 10])
