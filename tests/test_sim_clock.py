"""Tests for the simulated clock."""

import pytest

from repro.sim import SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_custom_time(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now == pytest.approx(1.5)

    def test_advance_returns_new_time(self):
        clock = SimClock(1.0)
        assert clock.advance(0.5) == pytest.approx(1.5)

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_reset(self):
        clock = SimClock(10.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_to_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().reset(-2.0)

    def test_repr_contains_time(self):
        assert "0.5" in repr(SimClock(0.5))
