"""The lint framework itself: registry, suppression, traversal, baselines."""

import ast
import json

import pytest

from repro.lint import (
    Finding,
    LintSyntaxError,
    Rule,
    all_rules,
    filter_baselined,
    get_rules,
    is_library_path,
    lint_paths,
    lint_source,
    load_baseline,
    register,
    unregister,
    write_baseline,
)
from repro.lint.checker import iter_python_files, suppressed_rules
from repro.lint.registry import DuplicateRuleError


class TestRegistry:
    def test_all_rules_are_id_sorted_and_unique(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert {"DET001", "DET002", "UNIT001", "SPEC001", "METRIC001",
                "FROZEN001", "PAR001"} <= set(ids)

    def test_get_rules_unknown_id_raises_with_choices(self):
        with pytest.raises(ValueError) as excinfo:
            get_rules(["DET999"])
        assert "DET999" in str(excinfo.value)
        assert "DET001" in str(excinfo.value)

    def test_custom_rule_registers_and_unregisters(self):
        @register
        class EveryModule(Rule):
            id = "TEST901"
            title = "fires on every module"
            rationale = "test"

            def check(self, ctx):
                yield ctx.finding(self.id, ctx.tree.body[0], "hello")

        try:
            findings = lint_source("x = 1\n", "a.py", rules=get_rules(["TEST901"]))
            assert [f.rule for f in findings] == ["TEST901"]
            with pytest.raises(DuplicateRuleError):
                register(EveryModule)
        finally:
            unregister("TEST901")
        with pytest.raises(ValueError):
            get_rules(["TEST901"])


class TestSuppression:
    SOURCE = "import time\nelapsed = time.time(){pragma}\n"

    def _lint(self, pragma=""):
        return lint_source(
            self.SOURCE.format(pragma=pragma), "src/repro/x.py", is_library=True
        )

    def test_unsuppressed_line_is_flagged(self):
        assert [f.rule for f in self._lint()] == ["DET001"]

    def test_named_pragma_suppresses_that_rule(self):
        assert self._lint("  # lint: ignore[DET001]") == []

    def test_blanket_pragma_suppresses_everything(self):
        assert self._lint("  # lint: ignore") == []

    def test_other_rule_pragma_does_not_suppress(self):
        assert [f.rule for f in self._lint("  # lint: ignore[UNIT001]")] == ["DET001"]

    def test_pragma_parser(self):
        assert suppressed_rules("x = 1") is None
        assert suppressed_rules("x = 1  # lint: ignore") == frozenset()
        assert suppressed_rules("x  # lint: ignore[A1, B2]") == frozenset({"A1", "B2"})


class TestLibraryPathInference:
    def test_repro_package_is_library(self):
        assert is_library_path("src/repro/sim/clock.py")
        assert is_library_path("src/repro/runtime/executor.py")

    def test_examples_benchmarks_tests_are_not(self):
        assert not is_library_path("examples/demo.py")
        assert not is_library_path("benchmarks/bench_backends.py")
        assert not is_library_path("tests/test_sim.py")


class TestTraversal:
    def test_walk_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
        (tmp_path / "note.txt").write_text("not python\n")
        files = list(iter_python_files([str(tmp_path)]))
        assert files == [str(tmp_path / "pkg" / "a.py")]

    def test_syntax_error_is_reported_with_location(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        with pytest.raises(LintSyntaxError) as excinfo:
            lint_paths([str(bad)])
        assert "broken.py" in str(excinfo.value)


class TestFindings:
    def make(self, **overrides):
        defaults = dict(
            rule="DET001", path="a.py", line=3, column=7,
            message="msg", snippet="time.time()",
        )
        defaults.update(overrides)
        return Finding(**defaults)

    def test_render_format(self):
        assert self.make().render() == "a.py:3:7: DET001 msg"

    def test_baseline_key_ignores_line_numbers(self):
        assert self.make(line=3).baseline_key() == self.make(line=99).baseline_key()
        assert self.make().baseline_key() != self.make(rule="DET002").baseline_key()
        assert self.make().baseline_key() != self.make(path="b.py").baseline_key()

    def test_sort_key_orders_by_location(self):
        findings = [self.make(line=9), self.make(line=2), self.make(path="0.py")]
        ordered = sorted(findings, key=Finding.sort_key)
        assert [f.path for f in ordered] == ["0.py", "a.py", "a.py"]
        assert [f.line for f in ordered][1:] == [2, 9]

    def test_to_dict_is_json_ready(self):
        payload = json.loads(json.dumps(self.make().to_dict()))
        assert payload["rule"] == "DET001"
        assert payload["line"] == 3


class TestBaseline:
    def test_roundtrip_and_count_semantics(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        finding = Finding("U1", "a.py", 1, 1, "m", "snippet")
        twin = Finding("U1", "a.py", 50, 1, "m", "snippet")  # same key, other line
        other = Finding("U1", "a.py", 2, 1, "m", "different")
        write_baseline(path, [finding, twin])
        baseline = load_baseline(path)
        assert baseline == {finding.baseline_key(): 2}
        # Two baselined copies absorb two findings, a third is new.
        assert filter_baselined([finding, twin], baseline) == []
        triple = [finding, twin, Finding("U1", "a.py", 70, 1, "m", "snippet")]
        assert len(filter_baselined(triple, baseline)) == 1
        assert filter_baselined([other], baseline) == [other]

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == {}

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestContextResolution:
    def test_alias_imports_resolve(self):
        source = (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.rand()\n"
        )
        findings = lint_source(source, "src/repro/x.py", is_library=True)
        assert [f.rule for f in findings] == ["DET002"]

    def test_local_name_shadowing_does_not_fire(self):
        source = (
            "class T:\n"
            "    def time(self):\n"
            "        return 0.0\n"
            "def f():\n"
            "    time = T()\n"
            "    return time.time()\n"
        )
        assert lint_source(source, "src/repro/x.py", is_library=True) == []

    def test_from_import_resolves_to_qualified_name(self):
        source = "from time import monotonic\nx = monotonic()\n"
        findings = lint_source(source, "src/repro/x.py", is_library=True)
        assert [f.rule for f in findings] == ["DET001"]
        assert "time.monotonic" in findings[0].message

    def test_parse_builds_ast(self):
        from repro.lint import FileContext

        ctx = FileContext.parse("x = 1\n", "a.py", is_library=False)
        assert isinstance(ctx.tree, ast.Module)
        assert ctx.lines == ["x = 1"]
