"""Tests for row-wise embedding quantisation."""

import numpy as np
import pytest

from repro.dlrm import (
    QUANT_PARAM_BYTES,
    dequantize_row,
    dequantize_rows,
    quantize_rows,
    quantized_row_bytes,
)


class TestRowBytes:
    def test_int8_row_size_matches_paper_example(self):
        # 64-element int8 row with 8 bytes of quant params is 72 bytes.
        assert quantized_row_bytes(64, bits=8) == 72

    def test_int4_packs_two_per_byte(self):
        assert quantized_row_bytes(64, bits=4) == 32 + QUANT_PARAM_BYTES

    def test_odd_dim_int4_rounds_up(self):
        assert quantized_row_bytes(7, bits=4) == 4 + QUANT_PARAM_BYTES

    def test_invalid_dim_or_bits_rejected(self):
        with pytest.raises(ValueError):
            quantized_row_bytes(0)
        with pytest.raises(ValueError):
            quantized_row_bytes(64, bits=16)


class TestQuantizeDequantize:
    def test_roundtrip_error_small_int8(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 1, size=(32, 64)).astype(np.float32)
        quantized = quantize_rows(values, bits=8)
        recovered = dequantize_rows(quantized, dim=64, bits=8)
        span = values.max(axis=1) - values.min(axis=1)
        max_error = np.abs(recovered - values).max(axis=1)
        assert np.all(max_error <= span / 255 + 1e-6)

    def test_roundtrip_error_int4_bounded_by_step(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0, 1, size=(16, 32)).astype(np.float32)
        quantized = quantize_rows(values, bits=4)
        recovered = dequantize_rows(quantized, dim=32, bits=4)
        span = values.max(axis=1) - values.min(axis=1)
        max_error = np.abs(recovered - values).max(axis=1)
        assert np.all(max_error <= span / 15 + 1e-6)

    def test_constant_row_recovered_exactly(self):
        values = np.full((3, 8), 2.5, dtype=np.float32)
        recovered = dequantize_rows(quantize_rows(values), dim=8)
        np.testing.assert_allclose(recovered, values, atol=1e-6)

    def test_zero_rows_recovered_exactly(self):
        values = np.zeros((2, 16), dtype=np.float32)
        recovered = dequantize_rows(quantize_rows(values), dim=16)
        np.testing.assert_array_equal(recovered, np.zeros_like(values))

    def test_row_extremes_preserved(self):
        values = np.array([[0.0, 1.0, 2.0, 4.0]], dtype=np.float32)
        recovered = dequantize_rows(quantize_rows(values), dim=4)
        assert recovered[0, 0] == pytest.approx(0.0, abs=1e-6)
        assert recovered[0, -1] == pytest.approx(4.0, abs=1e-2)

    def test_single_row_dequantize_matches_batch(self):
        rng = np.random.default_rng(2)
        values = rng.normal(0, 1, size=(4, 24)).astype(np.float32)
        quantized = quantize_rows(values)
        batch = dequantize_rows(quantized, dim=24)
        for row in range(4):
            single = dequantize_row(quantized[row].tobytes(), dim=24)
            np.testing.assert_allclose(single, batch[row], rtol=1e-6)

    def test_output_shape_and_dtype(self):
        values = np.zeros((5, 10), dtype=np.float32)
        quantized = quantize_rows(values)
        assert quantized.shape == (5, quantized_row_bytes(10))
        assert quantized.dtype == np.uint8

    def test_non_2d_input_rejected(self):
        with pytest.raises(ValueError):
            quantize_rows(np.zeros(10))

    def test_wrong_row_size_rejected(self):
        with pytest.raises(ValueError):
            dequantize_row(bytes(10), dim=64)
        with pytest.raises(ValueError):
            dequantize_rows(np.zeros((2, 10), dtype=np.uint8), dim=64)

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_rows(np.zeros((2, 4), dtype=np.float32), bits=2)

    def test_1d_row_array_accepted_by_dequantize_rows(self):
        values = np.ones((1, 8), dtype=np.float32)
        quantized = quantize_rows(values)
        out = dequantize_rows(quantized[0], dim=8)
        assert out.shape == (1, 8)
