"""Tests for the fleet-level rolling-update simulation."""

import pytest

from repro.core import ModelUpdatePlanner, UpdateStrategy
from repro.serving import DeploymentScenario, HW_SS, plan_deployment
from repro.serving.fleet import (
    RollingUpdateConfig,
    simulate_rolling_update,
)
from repro.sim.units import GB, TB
from repro.storage import nand_flash_spec


def _plan(num_hosts_qps=120.0, total_qps=120.0 * 100):
    return plan_deployment(
        DeploymentScenario("HW-SS + SDM", HW_SS, qps_per_host=num_hosts_qps, total_qps=total_qps)
    )


def _planner():
    return ModelUpdatePlanner(
        device_specs=[nand_flash_spec(2 * TB)] * 2,
        embedding_bytes_on_sm=100 * GB,
        dense_bytes=1 * GB,
    )


def _report(strategy=UpdateStrategy.FULL_OFFLINE, **config_overrides):
    config = RollingUpdateConfig(strategy=strategy, **config_overrides)
    return simulate_rolling_update(_plan(), _planner(), config)


class TestRollingUpdateConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RollingUpdateConfig(batch_fraction=0.0)
        with pytest.raises(ValueError):
            RollingUpdateConfig(warmup_seconds=0)
        with pytest.raises(ValueError):
            RollingUpdateConfig(warmup_performance=0.0)
        with pytest.raises(ValueError):
            RollingUpdateConfig(update_interval_seconds=0)


class TestSimulateRollingUpdate:
    def test_capacity_dips_during_wave(self):
        report = _report()
        full_capacity = report.plan.num_hosts * report.plan.scenario.qps_per_host
        assert report.minimum_effective_qps < full_capacity
        assert report.worst_case_capacity_fraction < 1.0

    def test_timeline_starts_and_ends_at_full_capacity(self):
        report = _report()
        full_capacity = report.plan.num_hosts * report.plan.scenario.qps_per_host
        assert report.timeline[-1].effective_qps == pytest.approx(full_capacity)
        assert report.timeline[-1].hosts_offline == 0
        assert report.timeline[-1].hosts_warming == 0

    def test_offline_hosts_bounded_by_batch_size(self):
        report = _report(batch_fraction=0.1)
        batch_size = round(report.plan.num_hosts * 0.1)
        assert max(point.hosts_offline for point in report.timeline) <= batch_size

    def test_online_update_dips_less_than_offline_update(self):
        offline = _report(strategy=UpdateStrategy.FULL_OFFLINE)
        online = _report(strategy=UpdateStrategy.FULL_ONLINE)
        assert online.minimum_effective_qps >= offline.minimum_effective_qps

    def test_smaller_batches_dip_less(self):
        small = _report(batch_fraction=0.05)
        large = _report(batch_fraction=0.5)
        assert small.minimum_effective_qps >= large.minimum_effective_qps

    def test_extra_hosts_cover_the_dip(self):
        report = _report()
        target = report.plan.scenario.total_qps
        extra = report.extra_hosts_needed(target)
        covered = report.minimum_effective_qps + extra * report.plan.scenario.qps_per_host
        assert covered >= target
        assert report.extra_hosts_needed(1.0) == 0

    def test_extra_hosts_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            _report().extra_hosts_needed(0)

    def test_capacity_overhead_matches_formula(self):
        report = _report(
            batch_fraction=0.10,
            warmup_seconds=300,
            warmup_performance=0.5,
            update_interval_seconds=1800,
        )
        assert report.capacity_overhead == pytest.approx((0.10 * 5) / (0.5 * 30))

    def test_wave_duration_accounts_for_all_batches(self):
        report = _report(batch_fraction=0.25)
        assert report.wave_duration_seconds == pytest.approx(
            4 * report.update_duration_seconds + report.config.warmup_seconds
        )

    def test_invalid_time_step_rejected(self):
        with pytest.raises(ValueError):
            simulate_rolling_update(_plan(), _planner(), RollingUpdateConfig(), time_step_seconds=0)

    def test_incremental_updates_shorten_the_wave(self):
        full = _report(strategy=UpdateStrategy.FULL_OFFLINE)
        incremental = _report(strategy=UpdateStrategy.INCREMENTAL)
        assert incremental.wave_duration_seconds < full.wave_duration_seconds


class TestRollingUpdateFromHostResult:
    def test_fleet_sized_by_measured_throughput(self):
        from repro.serving import HW_SS, LatencyTarget
        from repro.serving.fleet import rolling_update_from_host_result
        from repro.serving.engine import OpenLoopResult

        host_result = OpenLoopResult(
            num_queries=100, concurrency=2, makespan_seconds=1.0,
            latencies=[0.010] * 100, offered_queries=100,
            queue_delays=[0.0] * 100, service_times=[0.010] * 100,
        )
        target = LatencyTarget(95, 0.025)
        report = rolling_update_from_host_result(
            "measured", HW_SS, host_result, target, fleet_qps=100.0 * 100,
            update_planner=_planner(), config=RollingUpdateConfig(),
        )
        # SLO met: capacity is 2 streams / 10 ms service time = 200 QPS per
        # host (not the 100 QPS offered), so 10,000 fleet QPS needs 50 hosts.
        assert report.plan.num_hosts == 50
        assert report.minimum_effective_qps < report.plan.num_hosts * 200.0

    def test_saturated_host_inflates_the_fleet(self):
        from repro.serving import HW_SS, LatencyTarget
        from repro.serving.fleet import rolling_update_from_host_result
        from repro.serving.engine import OpenLoopResult

        saturated = OpenLoopResult(
            num_queries=100, concurrency=2, makespan_seconds=1.0,
            latencies=[0.050] * 100, offered_queries=100,
            queue_delays=[0.040] * 100, service_times=[0.010] * 100,
        )
        target = LatencyTarget(95, 0.025)
        report = rolling_update_from_host_result(
            "saturated", HW_SS, saturated, target, fleet_qps=100.0 * 100,
            update_planner=_planner(), config=RollingUpdateConfig(),
        )
        # p95 (50 ms) is twice the budget: per-host QPS halves, hosts double.
        assert report.plan.num_hosts == 200
