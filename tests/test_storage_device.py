"""Tests for the simulated SM device."""

import pytest

from repro.sim.units import BLOCK_SIZE, GB
from repro.storage import (
    ScatterGatherList,
    SimulatedDevice,
    nand_flash_spec,
    optane_ssd_spec,
)


def _make_device(spec_factory=nand_flash_spec, capacity=1 * GB, seed=0):
    return SimulatedDevice(spec_factory(capacity), seed=seed)


def _single_range_sgl(offset, length):
    sgl = ScatterGatherList()
    sgl.add(offset, length)
    return sgl


class TestDeviceData:
    def test_read_returns_written_bytes(self):
        device = _make_device()
        payload = bytes(range(64))
        device.write_block(3, payload, offset=128)
        assert device.read_block_data(3, 128, 64) == payload

    def test_unwritten_blocks_read_as_zeros(self):
        device = _make_device()
        assert device.read_block_data(7, 0, 16) == bytes(16)

    def test_write_beyond_block_rejected(self):
        device = _make_device()
        with pytest.raises(ValueError):
            device.write_block(0, bytes(10), offset=BLOCK_SIZE - 4)

    def test_lba_out_of_range_rejected(self):
        device = _make_device(capacity=BLOCK_SIZE * 4)
        with pytest.raises(IndexError):
            device.write_block(4, b"x")
        with pytest.raises(IndexError):
            device.read_block_data(100)

    def test_num_blocks_derived_from_capacity(self):
        device = _make_device(capacity=BLOCK_SIZE * 10)
        assert device.num_blocks == 10

    def test_write_stats_accumulate(self):
        device = _make_device()
        device.write_block(0, bytes(100))
        device.write_block(1, bytes(50))
        assert device.stats.writes == 2
        assert device.stats.bytes_written == 150


class TestDeviceReadTiming:
    def test_read_returns_requested_data_and_positive_latency(self):
        device = _make_device()
        device.write_block(0, bytes([7] * 256))
        data, completion, transferred = device.schedule_read(
            0, _single_range_sgl(0, 256), arrival_time=0.0
        )
        assert data == bytes([7] * 256)
        assert completion > 0.0
        assert transferred >= 256

    def test_sub_block_read_transfers_less_than_full_block(self):
        device = _make_device()
        _, _, with_sub = device.schedule_read(0, _single_range_sgl(0, 128), 0.0, True)
        _, _, without_sub = device.schedule_read(0, _single_range_sgl(0, 128), 0.0, False)
        assert with_sub < without_sub
        assert without_sub == BLOCK_SIZE

    def test_unloaded_latency_close_to_base_latency(self):
        device = _make_device(optane_ssd_spec, capacity=10 * GB)
        _, completion, _ = device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
        assert completion < 5 * device.spec.base_read_latency

    def test_latency_grows_when_saturated(self):
        device = _make_device(nand_flash_spec, capacity=1 * GB, seed=1)
        # Submit a large burst at t=0: the queue builds and the last IOs see
        # much higher latency than the first.
        completions = []
        for _ in range(2000):
            _, completion, _ = device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
            completions.append(completion)
        assert completions[-1] > completions[0] * 2

    def test_throughput_capped_at_max_iops(self):
        device = _make_device(nand_flash_spec, capacity=1 * GB)
        count = 5000
        last_completion = 0.0
        for _ in range(count):
            _, completion, _ = device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
            last_completion = max(last_completion, completion)
        achieved_iops = count / last_completion
        assert achieved_iops <= device.spec.max_read_iops * 1.05

    def test_arrival_time_respected(self):
        device = _make_device()
        _, completion, _ = device.schedule_read(0, _single_range_sgl(0, 64), arrival_time=1.0)
        assert completion > 1.0

    def test_negative_arrival_rejected(self):
        device = _make_device()
        with pytest.raises(ValueError):
            device.schedule_read(0, _single_range_sgl(0, 64), arrival_time=-1.0)

    def test_read_stats_and_amplification(self):
        device = _make_device()
        device.schedule_read(0, _single_range_sgl(0, 128), 0.0, sub_block_enabled=False)
        assert device.stats.reads == 1
        assert device.stats.bytes_requested == 128
        assert device.stats.bytes_transferred == BLOCK_SIZE
        assert device.stats.read_amplification == pytest.approx(BLOCK_SIZE / 128)

    def test_reset_stats(self):
        device = _make_device()
        device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
        device.reset_stats()
        assert device.stats.reads == 0

    def test_nand_exhibits_tail_latency_events(self):
        device = _make_device(nand_flash_spec, capacity=1 * GB, seed=3)
        for _ in range(5000):
            device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
        assert device.stats.tail_events > 0


class TestDeviceWriteTiming:
    def test_write_completion_after_arrival(self):
        device = _make_device()
        completion = device.schedule_write(0, bytes(4096), arrival_time=0.5)
        assert completion > 0.5

    def test_outstanding_at(self):
        device = _make_device()
        device.schedule_read(0, _single_range_sgl(0, 64), 0.0)
        assert device.outstanding_at(0.0) >= 0

    def test_expected_latency_delegates_to_model(self):
        device = _make_device()
        assert device.expected_latency(0.0) >= device.spec.base_read_latency
