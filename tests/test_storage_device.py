"""Tests for the simulated SM device."""

import numpy as np
import pytest

from repro.sim.units import BLOCK_SIZE, GB
from repro.storage import (
    ScatterGatherList,
    SimulatedDevice,
    nand_flash_spec,
    optane_ssd_spec,
)


def _make_device(spec_factory=nand_flash_spec, capacity=1 * GB, seed=0):
    return SimulatedDevice(spec_factory(capacity), seed=seed)


def _single_range_sgl(offset, length):
    sgl = ScatterGatherList()
    sgl.add(offset, length)
    return sgl


class TestDeviceData:
    def test_read_returns_written_bytes(self):
        device = _make_device()
        payload = bytes(range(64))
        device.write_block(3, payload, offset=128)
        assert device.read_block_data(3, 128, 64) == payload

    def test_unwritten_blocks_read_as_zeros(self):
        device = _make_device()
        assert device.read_block_data(7, 0, 16) == bytes(16)

    def test_write_beyond_block_rejected(self):
        device = _make_device()
        with pytest.raises(ValueError):
            device.write_block(0, bytes(10), offset=BLOCK_SIZE - 4)

    def test_lba_out_of_range_rejected(self):
        device = _make_device(capacity=BLOCK_SIZE * 4)
        with pytest.raises(IndexError):
            device.write_block(4, b"x")
        with pytest.raises(IndexError):
            device.read_block_data(100)

    def test_num_blocks_derived_from_capacity(self):
        device = _make_device(capacity=BLOCK_SIZE * 10)
        assert device.num_blocks == 10

    def test_write_stats_accumulate(self):
        device = _make_device()
        device.write_block(0, bytes(100))
        device.write_block(1, bytes(50))
        assert device.stats.writes == 2
        assert device.stats.bytes_written == 150


class TestDeviceReadTiming:
    def test_read_returns_requested_data_and_positive_latency(self):
        device = _make_device()
        device.write_block(0, bytes([7] * 256))
        data, completion, transferred = device.schedule_read(
            0, _single_range_sgl(0, 256), arrival_time=0.0
        )
        assert data == bytes([7] * 256)
        assert completion > 0.0
        assert transferred >= 256

    def test_sub_block_read_transfers_less_than_full_block(self):
        device = _make_device()
        _, _, with_sub = device.schedule_read(0, _single_range_sgl(0, 128), 0.0, True)
        _, _, without_sub = device.schedule_read(0, _single_range_sgl(0, 128), 0.0, False)
        assert with_sub < without_sub
        assert without_sub == BLOCK_SIZE

    def test_unloaded_latency_close_to_base_latency(self):
        device = _make_device(optane_ssd_spec, capacity=10 * GB)
        _, completion, _ = device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
        assert completion < 5 * device.spec.base_read_latency

    def test_latency_grows_when_saturated(self):
        device = _make_device(nand_flash_spec, capacity=1 * GB, seed=1)
        # Submit a large burst at t=0: the queue builds and the last IOs see
        # much higher latency than the first.
        completions = []
        for _ in range(2000):
            _, completion, _ = device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
            completions.append(completion)
        assert completions[-1] > completions[0] * 2

    def test_throughput_capped_at_max_iops(self):
        device = _make_device(nand_flash_spec, capacity=1 * GB)
        count = 5000
        last_completion = 0.0
        for _ in range(count):
            _, completion, _ = device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
            last_completion = max(last_completion, completion)
        achieved_iops = count / last_completion
        assert achieved_iops <= device.spec.max_read_iops * 1.05

    def test_arrival_time_respected(self):
        device = _make_device()
        _, completion, _ = device.schedule_read(0, _single_range_sgl(0, 64), arrival_time=1.0)
        assert completion > 1.0

    def test_negative_arrival_rejected(self):
        device = _make_device()
        with pytest.raises(ValueError):
            device.schedule_read(0, _single_range_sgl(0, 64), arrival_time=-1.0)

    def test_read_stats_and_amplification(self):
        device = _make_device()
        device.schedule_read(0, _single_range_sgl(0, 128), 0.0, sub_block_enabled=False)
        assert device.stats.reads == 1
        assert device.stats.bytes_requested == 128
        assert device.stats.bytes_transferred == BLOCK_SIZE
        assert device.stats.read_amplification == pytest.approx(BLOCK_SIZE / 128)

    def test_reset_stats(self):
        device = _make_device()
        device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
        device.reset_stats()
        assert device.stats.reads == 0

    def test_nand_exhibits_tail_latency_events(self):
        device = _make_device(nand_flash_spec, capacity=1 * GB, seed=3)
        for _ in range(5000):
            device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
        assert device.stats.tail_events > 0


class TestBatchReadScheduler:
    """schedule_read_batch sessions replay scalar timing bit for bit."""

    def _scalar_and_batched(self, spec_factory, count, arrivals=None, seed=0):
        scalar = _make_device(spec_factory, capacity=1 * GB, seed=seed)
        batched = _make_device(spec_factory, capacity=1 * GB, seed=seed)
        arrivals = arrivals if arrivals is not None else [0.0] * count
        scalar_times = []
        for arrival in arrivals:
            _, completion, _ = scalar.schedule_read(0, _single_range_sgl(0, 128), arrival)
            scalar_times.append(completion)
        session = batched.schedule_read_batch(count)
        # The single-entry SGL for (0, 128) transfers its DWORD-aligned span.
        transferred = _single_range_sgl(0, 128).transferred_bytes(True)
        batched_times = [
            session.schedule(arrival, 128, transferred) for arrival in arrivals
        ]
        session.finish()
        return scalar, batched, scalar_times, batched_times

    @pytest.mark.parametrize("spec_factory", [nand_flash_spec, optane_ssd_spec])
    def test_completions_channels_and_stats_match_scalar(self, spec_factory):
        arrivals = [0.0, 0.0, 1e-6, 5e-5, 5e-5, 2e-4] * 30
        scalar, batched, scalar_times, batched_times = self._scalar_and_batched(
            spec_factory, len(arrivals), arrivals
        )
        assert batched_times == scalar_times
        assert batched.channel_free.tolist() == scalar.channel_free.tolist()
        assert batched.stats == scalar.stats

    def test_tail_rng_stream_identical_to_scalar_draws(self):
        # nand has tail_latency_probability=2e-3: over 3000 IOs both paths
        # must hit the same tail events and leave the same PCG64 state.
        scalar, batched, scalar_times, batched_times = self._scalar_and_batched(
            nand_flash_spec, 3000, seed=3
        )
        assert scalar.stats.tail_events > 0
        assert batched_times == scalar_times
        assert batched.stats.tail_events == scalar.stats.tail_events
        assert batched.rng.bit_generator.state == scalar.rng.bit_generator.state

    def test_tail_free_device_draws_nothing_from_the_stream(self):
        # dimm 3DXP has tail_latency_probability=0, and a zero-count session
        # has nothing to draw for: neither may advance the RNG (the scalar
        # path skips the draw in exactly these cases).
        from repro.storage import dimm_3dxp_spec

        no_tail = _make_device(dimm_3dxp_spec)
        before = no_tail.rng.bit_generator.state
        session = no_tail.schedule_read_batch(8)
        session.schedule(0.0, 128, 128)
        session.finish()
        assert no_tail.rng.bit_generator.state == before

        tail_prone = _make_device(nand_flash_spec)
        before = tail_prone.rng.bit_generator.state
        tail_prone.schedule_read_batch(0).finish()
        assert tail_prone.rng.bit_generator.state == before

    def test_finish_is_idempotent(self):
        device = _make_device()
        session = device.schedule_read_batch(4)
        for _ in range(4):
            session.schedule(0.0, 128, 128)
        session.finish()
        stats_after = device.stats.reads
        session.finish()
        assert device.stats.reads == stats_after == 4

    def test_negative_count_rejected(self):
        device = _make_device()
        with pytest.raises(ValueError):
            device.schedule_read_batch(-1)


class TestReadRowsNdarray:
    def test_gather_matches_per_row_reads(self):
        device = _make_device()
        device.write_block(2, bytes(range(200)), offset=0)
        device.write_block(5, bytes(reversed(range(200))), offset=100)
        lbas = np.array([2, 5, 2, 9], dtype=np.int64)  # lba 9 never written
        offsets = np.array([0, 100, 64, 0], dtype=np.int64)
        matrix = device.read_rows_ndarray(lbas, offsets, 64)
        assert matrix.shape == (4, 64)
        for row, (lba, offset) in enumerate(zip(lbas, offsets)):
            assert matrix[row].tobytes() == device.read_block_data(int(lba), int(offset), 64)

    def test_bad_lba_rejected(self):
        device = _make_device(capacity=BLOCK_SIZE * 4)
        with pytest.raises(IndexError):
            device.read_rows_ndarray(
                np.array([0, 4], dtype=np.int64), np.zeros(2, dtype=np.int64), 16
            )

    def test_range_beyond_block_rejected(self):
        device = _make_device()
        with pytest.raises(ValueError):
            device.read_rows_ndarray(
                np.zeros(1, dtype=np.int64),
                np.array([BLOCK_SIZE - 8], dtype=np.int64),
                64,
            )


class TestDeviceResetSplit:
    def test_reset_stats_leaves_channels_busy(self):
        device = _make_device()
        device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
        busy_before = device.channel_free.copy()
        device.reset_stats()
        assert device.stats.reads == 0
        assert device.channel_free.tolist() == busy_before.tolist()

    def test_reset_queues_frees_channels_and_keeps_stats(self):
        device = _make_device()
        device.schedule_read(0, _single_range_sgl(0, 128), 0.0)
        assert device.outstanding_at(0.0) > 0
        device.reset_queues()
        assert device.outstanding_at(0.0) == 0
        assert device.channel_free.tolist() == [0.0] * device.spec.internal_parallelism
        assert device.stats.reads == 1


class TestDeviceWriteTiming:
    def test_write_completion_after_arrival(self):
        device = _make_device()
        completion = device.schedule_write(0, bytes(4096), arrival_time=0.5)
        assert completion > 0.5

    def test_outstanding_at(self):
        device = _make_device()
        device.schedule_read(0, _single_range_sgl(0, 64), 0.0)
        assert device.outstanding_at(0.0) >= 0

    def test_expected_latency_delegates_to_model(self):
        device = _make_device()
        assert device.expected_latency(0.0) >= device.spec.base_read_latency
