"""Executor determinism (serial == parallel) and store-backed resume."""

import pytest

from repro import CampaignSpec, ExperimentStore, ScenarioSpec, Session, run_campaign
from repro.api import ModelChoice, ServingChoice, WorkloadChoice
from repro.runtime import executor as executor_module


def small_base() -> ScenarioSpec:
    return ScenarioSpec(
        name="exec",
        model=ModelChoice(max_tables_per_group=2, max_rows_per_table=256),
        workload=WorkloadChoice(num_queries=12, num_users=40),
        serving=ServingChoice(concurrency=1, warmup_queries=0),
    )


def two_axis_campaign() -> CampaignSpec:
    return CampaignSpec.from_grid(
        small_base(),
        {"serving.concurrency": [1, 2], "workload.num_users": [40, 60]},
        name="exec",
    )


class TestDeterminism:
    def test_parallel_matches_serial_point_for_point(self):
        """Acceptance: parallel=4 metrics are identical to the serial run."""
        campaign = two_axis_campaign()
        serial = run_campaign(campaign, parallel=1)
        parallel = run_campaign(campaign, parallel=4)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert s.index == p.index
            assert s.coords == p.coords
            assert s.spec_hash == p.spec_hash
            assert s.metrics == p.metrics  # full result dict, bit-for-bit

    def test_chunked_parallel_matches_too(self):
        campaign = two_axis_campaign()
        serial = run_campaign(campaign, parallel=1)
        chunked = run_campaign(campaign, parallel=2, chunksize=2)
        assert [o.metrics for o in serial] == [o.metrics for o in chunked]

    def test_sweep_parallel_matches_serial_metrics(self):
        spec = small_base()
        serial = Session(spec).sweep("serving.concurrency", [1, 2])
        parallel = Session(spec).sweep("serving.concurrency", [1, 2], parallel=2)
        assert [point.value for point in parallel] == [1, 2]
        for s, p in zip(serial, parallel):
            # The parallel path does not retain the raw host result; every
            # serialised measurement — including the scenario name — agrees.
            assert p.result.host_result is None
            assert p.result.to_dict() == s.result.to_dict()

    def test_sweep_parallel_rejects_custom_compute(self):
        from repro import ComputeSpec

        session = Session(small_base(), compute=ComputeSpec(flops_per_second=1e9))
        with pytest.raises(ValueError, match="ComputeSpec"):
            session.sweep("serving.concurrency", [1, 2], parallel=2)


class TestStoreResume:
    def test_completed_points_are_served_from_the_store(self, tmp_path, monkeypatch):
        """Acceptance: re-running against the store executes zero new points."""
        campaign = two_axis_campaign()
        store = ExperimentStore(tmp_path / "run")
        first = run_campaign(campaign, store=store)
        assert all(not outcome.cached for outcome in first)
        assert len(store) == 4

        # Any attempt to actually execute a point now is a test failure.
        def boom(spec_dict):
            raise AssertionError(f"point re-executed: {spec_dict['name']}")

        monkeypatch.setattr(executor_module, "_execute_point", boom)
        second = run_campaign(campaign, store=ExperimentStore(tmp_path / "run"))
        assert all(outcome.cached for outcome in second)
        assert [o.metrics for o in second] == [o.metrics for o in first]

    def test_partially_populated_store_runs_only_the_remainder(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        # Pre-populate with a smaller campaign: same name, a prefix of the grid.
        prefix = CampaignSpec.from_grid(
            small_base(),
            {"serving.concurrency": [1], "workload.num_users": [40, 60]},
            name="exec",
        )
        run_campaign(prefix, store=store)
        assert len(store) == 2

        events = []
        outcomes = run_campaign(
            two_axis_campaign(),
            store=store,
            progress=lambda outcome, done, total: events.append(
                (outcome.cached, done, total)
            ),
        )
        assert [outcome.cached for outcome in outcomes] == [True, True, False, False]
        assert len(store) == 4
        assert [done for _, done, _ in events] == [1, 2, 3, 4]
        assert all(total == 4 for _, _, total in events)

    def test_store_records_are_self_describing(self, tmp_path):
        campaign = CampaignSpec.from_grid(
            small_base(), {"serving.concurrency": [2]}, name="exec"
        )
        store = ExperimentStore(tmp_path / "run")
        (outcome,) = run_campaign(campaign, store=store)
        record = store.get(outcome.spec_hash)
        assert record["scenario"] == "exec[serving.concurrency=2]"
        assert record["coords"] == [["serving.concurrency", 2]]
        assert record["spec"]["serving"]["concurrency"] == 2
        assert record["result"] == outcome.metrics

    def test_invalid_arguments(self):
        campaign = CampaignSpec.from_grid(small_base(), {"serving.concurrency": [1]})
        with pytest.raises(ValueError, match="parallel"):
            run_campaign(campaign, parallel=0)
        with pytest.raises(ValueError, match="chunksize"):
            run_campaign(campaign, chunksize=0)

    def test_pool_failure_falls_back_to_serial(self, monkeypatch, tmp_path):
        campaign = two_axis_campaign()

        class BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no fork for you")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", BrokenPool)
        store = ExperimentStore(tmp_path / "run")
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            outcomes = run_campaign(campaign, parallel=4, store=store)
        assert len(outcomes) == 4
        assert len(store) == 4
        assert [o.metrics for o in outcomes] == [
            o.metrics for o in run_campaign(campaign, parallel=1)
        ]
