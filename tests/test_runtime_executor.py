"""Executor determinism (serial == pool == reuse), quarantine, store resume."""

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import CampaignSpec, ExperimentStore, ScenarioSpec, Session, run_campaign
from repro.api import ModelChoice, ServingChoice, WorkloadChoice
from repro.runtime import runtimes as runtimes_module
from repro.runtime.runtimes import (
    DryRunRuntime,
    LocalPoolRuntime,
    SerialRuntime,
    estimated_cost,
    resolve_runtime,
)


def small_base() -> ScenarioSpec:
    return ScenarioSpec(
        name="exec",
        model=ModelChoice(max_tables_per_group=2, max_rows_per_table=256),
        workload=WorkloadChoice(num_queries=12, num_users=40),
        serving=ServingChoice(concurrency=1, warmup_queries=0),
    )


def two_axis_campaign() -> CampaignSpec:
    return CampaignSpec.from_grid(
        small_base(),
        {"serving.concurrency": [1, 2], "workload.num_users": [40, 60]},
        name="exec",
    )


def failing_campaign() -> CampaignSpec:
    """One good point, one whose backend option explodes at build time."""
    return CampaignSpec.from_grid(
        small_base(),
        {"backend.options.row_cache_capacity_bytes": [4096, "bogus"]},
        name="exec",
    )


class TestDeterminism:
    def test_parallel_matches_serial_point_for_point(self):
        """Acceptance: parallel=4 metrics are identical to the serial run."""
        campaign = two_axis_campaign()
        serial = run_campaign(campaign, parallel=1)
        parallel = run_campaign(campaign, parallel=4)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert s.index == p.index
            assert s.coords == p.coords
            assert s.spec_hash == p.spec_hash
            assert s.metrics == p.metrics  # full result dict, bit-for-bit

    def test_runtime_parity_matrix(self):
        """Acceptance: serial / pool x reuse-on / reuse-off are bit-identical.

        The grid spans workload AND backend axes, so reuse both hits (points
        sharing a backend_hash) and misses (distinct backends) — and the
        oracle is the no-reuse serial run.
        """
        campaign = CampaignSpec.from_grid(
            small_base(),
            {"backend.name": ["dram", "sdm"], "workload.num_users": [40, 60]},
            name="exec",
        )
        oracle = run_campaign(campaign, runtime="serial", reuse_backends=False)
        variants = {
            "serial+reuse": run_campaign(campaign, runtime="serial"),
            "pool+reuse": run_campaign(campaign, parallel=2, runtime="pool"),
            "pool-no-reuse": run_campaign(
                campaign, parallel=2, runtime="pool", reuse_backends=False
            ),
        }
        for name, outcomes in variants.items():
            assert [o.metrics for o in outcomes] == [o.metrics for o in oracle], name

    def test_chunked_parallel_matches_too(self):
        campaign = two_axis_campaign()
        serial = run_campaign(campaign, parallel=1)
        chunked = run_campaign(campaign, parallel=2, chunksize=2)
        assert [o.metrics for o in serial] == [o.metrics for o in chunked]

    def test_sweep_parallel_matches_serial_metrics(self):
        spec = small_base()
        serial = Session(spec).sweep("serving.concurrency", [1, 2])
        parallel = Session(spec).sweep("serving.concurrency", [1, 2], parallel=2)
        assert [point.value for point in parallel] == [1, 2]
        for s, p in zip(serial, parallel):
            # The parallel path does not retain the raw host result; every
            # serialised measurement — including the scenario name — agrees.
            assert p.result.host_result is None
            assert p.result.to_dict() == s.result.to_dict()

    def test_sweep_parallel_rejects_custom_compute(self):
        from repro import ComputeSpec

        session = Session(small_base(), compute=ComputeSpec(flops_per_second=1e9))
        with pytest.raises(ValueError, match="ComputeSpec"):
            session.sweep("serving.concurrency", [1, 2], parallel=2)


class TestBackendReuse:
    def test_second_run_hits_the_resident_cache(self):
        runtimes_module.clear_backend_cache()
        spec_dict = small_base().to_dict()
        first = runtimes_module.run_point(spec_dict, reuse=True)
        size, keys = runtimes_module.backend_cache_info()
        assert size == 1
        assert keys == (small_base().backend_hash(),)
        second = runtimes_module.run_point(spec_dict, reuse=True)
        assert runtimes_module.backend_cache_info()[0] == 1
        assert first == second  # restored backend is bit-identical to fresh
        runtimes_module.clear_backend_cache()

    def test_reuse_off_never_populates_the_cache(self):
        runtimes_module.clear_backend_cache()
        runtimes_module.run_point(small_base().to_dict(), reuse=False)
        assert runtimes_module.backend_cache_info() == (0, ())

    def test_points_sharing_a_backend_hash_reuse_across_workloads(self):
        """Workload/traffic/serving axes share one backend build per worker."""
        base = small_base()
        variant = base.replace("workload.num_users", 60)
        assert base.backend_hash() == variant.backend_hash()
        assert base.spec_hash() != variant.spec_hash()
        runtimes_module.clear_backend_cache()
        fresh = runtimes_module.run_point(variant.to_dict(), reuse=False)
        runtimes_module.run_point(base.to_dict(), reuse=True)  # populate
        reused = runtimes_module.run_point(variant.to_dict(), reuse=True)
        assert runtimes_module.backend_cache_info()[0] == 1
        assert reused == fresh
        runtimes_module.clear_backend_cache()


class TestQuarantine:
    @pytest.mark.parametrize("runtime", ["serial", "pool"])
    def test_failing_point_is_quarantined_and_siblings_complete(
        self, tmp_path, runtime
    ):
        """Acceptance: a raising point becomes a failure outcome, its error is
        recorded, and every sibling still completes and persists."""
        store = ExperimentStore(tmp_path / "run")
        outcomes = run_campaign(
            failing_campaign(), store=store, runtime=runtime, parallel=2
        )
        assert [o.status for o in outcomes] == ["ok", "failed"]
        good, bad = outcomes
        assert good.ok and not good.failed
        assert bad.failed and not bad.ok and bad.result is None
        assert bad.error_type == "TypeError"
        assert "str" in bad.error
        assert bad.attempts == 1
        # Only the successful sibling is persisted; the failure retries on
        # resume instead of being served from the store.
        assert len(store) == 1
        assert store.get(good.spec_hash) is not None
        assert store.get(bad.spec_hash) is None

    def test_metrics_raises_on_a_failed_outcome(self):
        outcomes = run_campaign(failing_campaign(), runtime="serial")
        with pytest.raises(ValueError, match="has no result"):
            outcomes[1].metrics

    def test_resume_after_failure_reruns_only_the_failed_point(
        self, tmp_path, monkeypatch
    ):
        store = ExperimentStore(tmp_path / "run")
        run_campaign(failing_campaign(), store=store, runtime="serial")
        assert len(store) == 1

        executed = []
        real_run_point = runtimes_module.run_point

        def recording_run_point(spec_dict, **kwargs):
            executed.append(spec_dict["backend"]["options"])
            return real_run_point(spec_dict, **kwargs)

        monkeypatch.setattr(runtimes_module, "run_point", recording_run_point)
        second = run_campaign(
            failing_campaign(), store=ExperimentStore(tmp_path / "run")
        )
        assert [o.status for o in second] == ["cached", "failed"]
        assert executed == [{"row_cache_capacity_bytes": "bogus"}]

    def test_retries_rerun_flaky_points_before_quarantining(self, monkeypatch):
        campaign = two_axis_campaign()
        real_run_point = runtimes_module.run_point
        failures_left = {}

        def flaky_run_point(spec_dict, **kwargs):
            remaining = failures_left.setdefault(spec_dict["name"], 1)
            if remaining:
                failures_left[spec_dict["name"]] = remaining - 1
                raise RuntimeError("transient")
            return real_run_point(spec_dict, **kwargs)

        monkeypatch.setattr(runtimes_module, "run_point", flaky_run_point)
        outcomes = run_campaign(campaign, runtime="serial", retries=1)
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert [o.attempts for o in outcomes] == [2] * 4
        # Without retries the same flakiness quarantines every point.
        failures_left.clear()
        outcomes = run_campaign(campaign, runtime="serial")
        assert [o.status for o in outcomes] == ["failed"] * 4


class TestDryRun:
    def test_dry_run_plans_without_executing(self, tmp_path, monkeypatch):
        def boom(spec_dict, **kwargs):
            raise AssertionError("dry run executed a point")

        monkeypatch.setattr(runtimes_module, "run_point", boom)
        store = ExperimentStore(tmp_path / "run")
        outcomes = run_campaign(two_axis_campaign(), store=store, runtime="dry")
        assert [o.status for o in outcomes] == ["skipped"] * 4
        assert all(not o.executed and o.result is None and o.error is None
                   for o in outcomes)
        assert len(store) == 0
        assert not store.result_paths()

    def test_dry_run_still_serves_cached_points(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        prefix = CampaignSpec.from_grid(
            small_base(), {"serving.concurrency": [1]}, name="exec"
        )
        run_campaign(prefix, store=store)
        outcomes = run_campaign(
            CampaignSpec.from_grid(
                small_base(), {"serving.concurrency": [1, 2]}, name="exec"
            ),
            store=store,
            runtime="dry",
        )
        assert [o.status for o in outcomes] == ["cached", "skipped"]


class TestWorkStealing:
    def test_dispatch_is_longest_expected_first(self, monkeypatch):
        submitted = []

        class RecordingPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, spec_dict, **kwargs):
                submitted.append(spec_dict["workload"]["num_queries"])
                future = Future()
                future.set_result(fn(spec_dict, **kwargs))
                return future

        monkeypatch.setattr(runtimes_module, "ProcessPoolExecutor", RecordingPool)
        campaign = CampaignSpec.from_grid(
            small_base(), {"workload.num_queries": [12, 48, 24]}, name="exec"
        )
        outcomes = run_campaign(campaign, parallel=2, runtime="pool")
        assert submitted == [48, 24, 12]  # big points dispatch first
        # ...but outcomes still come back in point order.
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.status for o in outcomes] == ["ok"] * 3

    def test_estimated_cost_scales_with_queries_and_batch(self):
        base = small_base()
        assert estimated_cost(base.replace("workload.num_queries", 48)) > (
            estimated_cost(base)
        )
        assert estimated_cost(base.replace("workload.item_batch", 8)) > (
            estimated_cost(base)
        )

    def test_pool_workers_persist_to_store_shards(self, tmp_path):
        campaign = two_axis_campaign()
        store = ExperimentStore(tmp_path / "run")
        outcomes = run_campaign(campaign, parallel=2, store=store, runtime="pool")
        assert [o.status for o in outcomes] == ["ok"] * 4
        # Workers appended their own shards; the driver wrote nothing itself.
        assert store.shard_paths()
        assert not store.results_path.exists()
        reopened = ExperimentStore(tmp_path / "run")
        assert len(reopened) == 4
        resumed = run_campaign(campaign, store=reopened)
        assert all(o.cached for o in resumed)
        assert [o.metrics for o in resumed] == [o.metrics for o in outcomes]


class TestStoreResume:
    def test_completed_points_are_served_from_the_store(self, tmp_path, monkeypatch):
        """Acceptance: re-running against the store executes zero new points."""
        campaign = two_axis_campaign()
        store = ExperimentStore(tmp_path / "run")
        first = run_campaign(campaign, store=store)
        assert all(not outcome.cached for outcome in first)
        assert len(store) == 4

        # Any attempt to actually execute a point now is a test failure.
        def boom(spec_dict, **kwargs):
            raise AssertionError(f"point re-executed: {spec_dict['name']}")

        monkeypatch.setattr(runtimes_module, "run_point", boom)
        second = run_campaign(campaign, store=ExperimentStore(tmp_path / "run"))
        assert all(outcome.cached for outcome in second)
        assert [o.metrics for o in second] == [o.metrics for o in first]

    def test_partially_populated_store_runs_only_the_remainder(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        # Pre-populate with a smaller campaign: same name, a prefix of the grid.
        prefix = CampaignSpec.from_grid(
            small_base(),
            {"serving.concurrency": [1], "workload.num_users": [40, 60]},
            name="exec",
        )
        run_campaign(prefix, store=store)
        assert len(store) == 2

        events = []
        outcomes = run_campaign(
            two_axis_campaign(),
            store=store,
            progress=lambda outcome, done, total: events.append(
                (outcome.cached, done, total)
            ),
        )
        assert [outcome.cached for outcome in outcomes] == [True, True, False, False]
        assert len(store) == 4
        assert [done for _, done, _ in events] == [1, 2, 3, 4]
        assert all(total == 4 for _, _, total in events)

    def test_store_records_are_self_describing(self, tmp_path):
        campaign = CampaignSpec.from_grid(
            small_base(), {"serving.concurrency": [2]}, name="exec"
        )
        store = ExperimentStore(tmp_path / "run")
        (outcome,) = run_campaign(campaign, store=store)
        record = store.get(outcome.spec_hash)
        assert record["scenario"] == "exec[serving.concurrency=2]"
        assert record["coords"] == [["serving.concurrency", 2]]
        assert record["spec"]["serving"]["concurrency"] == 2
        assert record["result"] == outcome.metrics

    def test_invalid_arguments(self):
        campaign = CampaignSpec.from_grid(small_base(), {"serving.concurrency": [1]})
        with pytest.raises(ValueError, match="parallel"):
            run_campaign(campaign, parallel=0)
        with pytest.raises(ValueError, match="chunksize"):
            run_campaign(campaign, chunksize=0)
        with pytest.raises(ValueError, match="retries"):
            run_campaign(campaign, retries=-1)
        with pytest.raises(ValueError, match="unknown runtime"):
            run_campaign(campaign, runtime="quantum")

    def test_resolve_runtime_contract(self):
        assert isinstance(resolve_runtime(None, 1), SerialRuntime)
        assert isinstance(resolve_runtime(None, 4), LocalPoolRuntime)
        assert resolve_runtime(None, 4).workers == 4
        assert isinstance(resolve_runtime("serial", 4), SerialRuntime)
        assert isinstance(resolve_runtime("dry", 1), DryRunRuntime)
        engine = LocalPoolRuntime(workers=3)
        assert resolve_runtime(engine, 1) is engine

    def test_pool_failure_falls_back_to_serial(self, monkeypatch, tmp_path):
        campaign = two_axis_campaign()

        class BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no fork for you")

        monkeypatch.setattr(runtimes_module, "ProcessPoolExecutor", BrokenPool)
        store = ExperimentStore(tmp_path / "run")
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            outcomes = run_campaign(campaign, parallel=4, store=store)
        assert len(outcomes) == 4
        assert len(store) == 4
        assert [o.metrics for o in outcomes] == [
            o.metrics for o in run_campaign(campaign, parallel=1)
        ]

    def test_pool_break_mid_stream_preserves_completed_points(
        self, monkeypatch, tmp_path
    ):
        """Acceptance: a pool dying mid-campaign keeps every already-persisted
        point and re-runs only the remainder, serially."""
        campaign = two_axis_campaign()

        class MidStreamPool:
            """First two submissions complete inline, then the pool 'dies'."""

            def __init__(self, *args, **kwargs):
                self.submissions = 0

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, *args, **kwargs):
                future = Future()
                future.test_order = self.submissions
                if self.submissions < 2:
                    future.set_result(fn(*args, **kwargs))
                else:
                    future.set_exception(BrokenProcessPool("pool died mid-stream"))
                self.submissions += 1
                return future

        def ordered_wait(futures, return_when=None):
            done = sorted(
                (f for f in futures if f.done()), key=lambda f: f.test_order
            )
            return [done[0]], set(futures) - {done[0]}

        executed_serially = []
        real_run_point = runtimes_module.run_point

        def tracking_run_point(spec_dict, **kwargs):
            if kwargs.get("store_root") is None:
                executed_serially.append(spec_dict["name"])
            return real_run_point(spec_dict, **kwargs)

        monkeypatch.setattr(runtimes_module, "ProcessPoolExecutor", MidStreamPool)
        monkeypatch.setattr(runtimes_module, "wait", ordered_wait)
        monkeypatch.setattr(runtimes_module, "run_point", tracking_run_point)

        store = ExperimentStore(tmp_path / "run")
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            outcomes = run_campaign(campaign, parallel=2, store=store, runtime="pool")
        points = campaign.points()
        # Only the two points the pool never finished re-ran inline.
        assert executed_serially == [points[2].spec.name, points[3].spec.name]
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert len(store) == 4
        # The pool-completed points live in a worker shard, the serial
        # remainder in the driver's main file — and both merge on reload.
        assert store.shard_paths()
        assert store.results_path.exists()
        assert len(ExperimentStore(tmp_path / "run")) == 4
        oracle = run_campaign(campaign, parallel=1)
        assert [o.metrics for o in outcomes] == [o.metrics for o in oracle]
