"""Telemetry must be invisible to the simulation.

Two guarantees are pinned here: (1) with telemetry disabled — the default —
the serving path is bit-identical to the seed behaviour (no recorder, no
sampler, no schema side effects); (2) even with every telemetry knob *on*,
the simulated results (per-query scores and latencies, aggregate statistics,
makespan) are bit-identical to the telemetry-off run, because spans and
samples only observe state the simulation already produced."""

import numpy as np

from repro.api import ScenarioSpec, Session, TelemetrySpec
from repro.api.spec import ServingChoice, TrafficSpec, WorkloadChoice
from repro.obs.trace import NULL_RECORDER

FULL_TELEMETRY = TelemetrySpec(trace=True, sample_interval=0.02, wall_profiling=True)

OPEN_SPEC = ScenarioSpec(
    name="obs-parity",
    workload=WorkloadChoice(num_queries=80),
    serving=ServingChoice(concurrency=2, warmup_queries=20),
    traffic=TrafficSpec(
        mode="open", arrival="poisson", offered_qps=400.0, queue_depth=8, serve_batch=2
    ),
)
CLOSED_SPEC = ScenarioSpec(
    name="obs-parity-closed",
    workload=WorkloadChoice(num_queries=60),
    serving=ServingChoice(concurrency=2, warmup_queries=10),
)


def _with_telemetry(spec: ScenarioSpec) -> ScenarioSpec:
    return spec.replace("telemetry", FULL_TELEMETRY)


def _assert_identical(off, on):
    assert off.latency == on.latency
    assert off.makespan_seconds == on.makespan_seconds
    assert off.achieved_qps == on.achieved_qps
    assert off.dropped_queries == on.dropped_queries
    assert off.queueing == on.queueing
    assert off.backend_stats == on.backend_stats
    assert off.tiers == on.tiers
    assert len(off.host_result.results) == len(on.host_result.results)
    for a, b in zip(off.host_result.results, on.host_result.results):
        assert a.latency == b.latency
        assert np.array_equal(a.scores, b.scores)


class TestTelemetryOffIsTheSeedPath:
    def test_default_spec_has_no_telemetry(self):
        spec = ScenarioSpec()
        assert spec.telemetry.enabled is False

    def test_engine_defaults_to_the_shared_null_recorder(self):
        session = Session(CLOSED_SPEC)
        recorder, sampler = session._telemetry()
        assert recorder is NULL_RECORDER
        assert sampler is None

    def test_result_has_no_timeline_or_trace(self):
        result = Session(CLOSED_SPEC).run()
        assert result.timeline is None
        assert result.trace is None
        assert result.to_dict()["timeline"] is None

    def test_backend_recorder_stays_null(self):
        session = Session(CLOSED_SPEC)
        session.run()
        assert session.backend.recorder is NULL_RECORDER
        assert session.backend.chain.recorder is NULL_RECORDER


class TestTelemetryOnIsBitIdentical:
    def test_open_loop(self):
        off = Session(OPEN_SPEC).run()
        on = Session(_with_telemetry(OPEN_SPEC)).run()
        _assert_identical(off, on)
        assert on.trace is not None and on.timeline is not None

    def test_closed_loop(self):
        off = Session(CLOSED_SPEC).run()
        on = Session(_with_telemetry(CLOSED_SPEC)).run()
        _assert_identical(off, on)
        assert on.trace is not None and on.timeline is not None

    def test_telemetry_does_not_change_the_spec_identity_axes(self):
        # The telemetry section *is* part of the spec hash (it is spec
        # state), but flipping it must not leak into any serving result —
        # that is what makes traced reruns trustworthy stand-ins.
        off, on = OPEN_SPEC, _with_telemetry(OPEN_SPEC)
        assert off.spec_hash() != on.spec_hash()
        _assert_identical(Session(off).run(), Session(on).run())

    def test_warmup_is_not_traced_and_not_sampled(self):
        result = Session(_with_telemetry(OPEN_SPEC)).run()
        sim_events = [
            e
            for e in result.trace["traceEvents"]
            if e["ph"] in ("X", "i") and e["pid"] == 0
        ]
        assert sim_events, "expected simulated-clock spans"
        # Warmup runs at simulated time 0 *before* measurement restarts the
        # clock; its spans are paused out, so serve spans exist for exactly
        # the measured queries.
        serve_spans = [e for e in sim_events if e["name"] == "serve"]
        assert len(serve_spans) == result.num_queries
