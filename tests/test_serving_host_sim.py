"""Tests for the host-level serving simulator."""

import pytest

from repro.serving import LatencyTarget, ServingSimulator
from repro.sim.units import MILLISECOND

from helpers import small_engine, small_model, small_queries, small_sdm


def _setup(num_queries=30, concurrency=1):
    model = small_model()
    sdm = small_sdm(model)
    engine = small_engine(model, sdm)
    simulator = ServingSimulator(engine, concurrency=concurrency)
    return simulator, small_queries(model, num_queries), sdm


class TestServingSimulator:
    def test_runs_all_queries(self):
        simulator, queries, _ = _setup(20)
        result = simulator.run(queries)
        assert result.num_queries == 20
        assert len(result.latencies) == 20

    def test_achieved_qps_consistent_with_makespan(self):
        simulator, queries, _ = _setup(20)
        result = simulator.run(queries)
        assert result.achieved_qps == pytest.approx(20 / result.makespan_seconds)

    def test_warmup_queries_excluded_from_measurement(self):
        simulator, queries, _ = _setup(30)
        result = simulator.run(queries, warmup_queries=10)
        assert result.num_queries == 20

    def test_warmup_improves_measured_latency(self):
        cold_sim, queries, _ = _setup(40)
        cold = cold_sim.run(queries)
        warm_sim, queries2, _ = _setup(40)
        warm = warm_sim.run(queries2, warmup_queries=20)
        assert warm.mean_latency <= cold.mean_latency * 1.05

    def test_concurrency_shortens_makespan(self):
        serial_sim, queries, _ = _setup(24, concurrency=1)
        parallel_sim, queries2, _ = _setup(24, concurrency=4)
        serial = serial_sim.run(queries)
        parallel = parallel_sim.run(queries2)
        assert parallel.makespan_seconds < serial.makespan_seconds

    def test_percentiles_and_targets(self):
        simulator, queries, _ = _setup(30)
        result = simulator.run(queries)
        stats = result.percentiles()
        assert stats["p50"] <= stats["p99"]
        target = LatencyTarget(95, 100 * MILLISECOND)
        assert result.meets(target)
        assert result.qps_at_latency(target) > 0

    def test_qps_at_latency_penalises_violations(self):
        simulator, queries, _ = _setup(30)
        result = simulator.run(queries)
        strict = LatencyTarget(95, result.percentile_latency(95) / 10)
        loose = LatencyTarget(95, result.percentile_latency(95) * 10)
        assert result.qps_at_latency(strict) < result.qps_at_latency(loose)

    def test_invalid_arguments_rejected(self):
        simulator, queries, _ = _setup(5)
        with pytest.raises(ValueError):
            ServingSimulator(simulator.engine, concurrency=0)
        with pytest.raises(ValueError):
            simulator.run([])
        with pytest.raises(ValueError):
            simulator.run(queries, warmup_queries=-1)
        with pytest.raises(ValueError):
            simulator.run(queries, warmup_queries=5)


class TestHostSimulationResult:
    def test_mean_latency_empty_latencies_is_zero(self):
        """Regression: an empty latency list used to raise ZeroDivisionError."""
        from repro.serving import HostSimulationResult

        result = HostSimulationResult(
            num_queries=0, concurrency=1, makespan_seconds=0.0, latencies=[]
        )
        assert result.mean_latency == 0.0
        assert result.achieved_qps == 0.0

    def test_mean_latency_matches_sample_mean(self):
        from repro.serving import HostSimulationResult

        result = HostSimulationResult(
            num_queries=3, concurrency=1, makespan_seconds=6.0, latencies=[1.0, 2.0, 3.0]
        )
        assert result.mean_latency == pytest.approx(2.0)

    def test_qps_at_latency_within_budget_uses_full_stream_rate(self):
        from repro.serving import HostSimulationResult

        result = HostSimulationResult(
            num_queries=4, concurrency=2, makespan_seconds=8.0, latencies=[2.0] * 4
        )
        # Observed p95 (2 s) is within budget: one query per stream per 2 s.
        assert result.qps_at_latency(LatencyTarget(95, 4.0)) == pytest.approx(1.0)

    def test_qps_at_latency_sheds_load_when_budget_exceeded(self):
        from repro.serving import HostSimulationResult

        result = HostSimulationResult(
            num_queries=4, concurrency=1, makespan_seconds=8.0, latencies=[2.0] * 4
        )
        # Observed p95 (2 s) is twice the 1 s budget: the raw 0.5 QPS stream
        # rate is scaled down by budget/observed = 0.5 -> 0.25 QPS.
        assert result.qps_at_latency(LatencyTarget(95, 1.0)) == pytest.approx(0.25)
        # Shedding is monotone: a tighter budget sustains strictly less.
        assert result.qps_at_latency(LatencyTarget(95, 0.5)) < result.qps_at_latency(
            LatencyTarget(95, 1.0)
        )
