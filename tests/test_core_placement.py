"""Tests for placement policies (Table 5) and placement edge cases."""

import numpy as np
import pytest

from repro.core import PlacementPolicy, SoftwareDefinedMemory, Tier, compute_placement
from repro.dlrm import EmbeddingTableSpec, prune_table
from repro.hierarchy import compute_tiered_placement, parse_tiers


def _specs():
    return [
        EmbeddingTableSpec(
            name="user_hot",
            num_rows=1000,
            dim=56,
            is_user=True,
            avg_pooling_factor=50,
            zipf_alpha=1.1,
        ),
        EmbeddingTableSpec(
            name="user_cold_big",
            num_rows=100_000,
            dim=56,
            is_user=True,
            avg_pooling_factor=2,
            zipf_alpha=0.4,
        ),
        EmbeddingTableSpec(
            name="item_a",
            num_rows=5000,
            dim=56,
            is_user=False,
            avg_pooling_factor=10,
            zipf_alpha=1.2,
        ),
    ]


class TestSmOnlyPolicy:
    def test_all_user_tables_on_sm(self):
        placement = compute_placement(_specs(), PlacementPolicy.SM_ONLY_WITH_CACHE)
        assert set(placement.sm_tables()) == {"user_hot", "user_cold_big"}

    def test_item_tables_stay_in_fm(self):
        placement = compute_placement(_specs(), PlacementPolicy.SM_ONLY_WITH_CACHE)
        assert placement.tier_of("item_a") is Tier.FM_DIRECT

    def test_cache_enabled_for_sm_tables(self):
        placement = compute_placement(_specs(), PlacementPolicy.SM_ONLY_WITH_CACHE)
        assert all(
            placement.for_table(name).cache_enabled for name in placement.sm_tables()
        )


class TestFixedFmSmPolicy:
    def test_zero_budget_equals_sm_only(self):
        placement = compute_placement(
            _specs(), PlacementPolicy.FIXED_FM_SM, dram_budget_bytes=0
        )
        assert set(placement.sm_tables()) == {"user_hot", "user_cold_big"}

    def test_budget_pins_highest_density_table(self):
        specs = _specs()
        hot_size = specs[0].size_bytes
        placement = compute_placement(
            specs, PlacementPolicy.FIXED_FM_SM, dram_budget_bytes=hot_size
        )
        assert placement.tier_of("user_hot") is Tier.FM_DIRECT
        assert placement.tier_of("user_cold_big") is Tier.SM

    def test_huge_budget_pins_everything(self):
        specs = _specs()
        total = sum(s.size_bytes for s in specs)
        placement = compute_placement(
            specs, PlacementPolicy.FIXED_FM_SM, dram_budget_bytes=total
        )
        assert placement.sm_tables() == []

    def test_fm_direct_bytes_within_budget(self):
        specs = _specs()
        budget = specs[0].size_bytes + 10
        placement = compute_placement(
            specs, PlacementPolicy.FIXED_FM_SM, dram_budget_bytes=budget
        )
        spec_map = {s.name: s for s in specs}
        user_fm = [n for n in placement.fm_tables() if spec_map[n].is_user]
        assert sum(spec_map[n].size_bytes for n in user_fm) <= budget


class TestPerTableCachePolicy:
    def test_low_locality_tables_skip_cache(self):
        placement = compute_placement(
            _specs(), PlacementPolicy.PER_TABLE_CACHE, cache_disable_alpha_threshold=0.6
        )
        assert placement.for_table("user_hot").cache_enabled
        assert not placement.for_table("user_cold_big").cache_enabled

    def test_all_user_tables_still_on_sm(self):
        placement = compute_placement(_specs(), PlacementPolicy.PER_TABLE_CACHE)
        assert set(placement.sm_tables()) == {"user_hot", "user_cold_big"}


class TestPinnedTablesAndValidation:
    def test_pinned_table_never_on_sm(self):
        placement = compute_placement(
            _specs(),
            PlacementPolicy.SM_ONLY_WITH_CACHE,
            pinned_fm_tables=["user_cold_big"],
        )
        assert placement.tier_of("user_cold_big") is Tier.FM_DIRECT

    def test_unknown_pinned_table_rejected(self):
        with pytest.raises(ValueError):
            compute_placement(_specs(), pinned_fm_tables=["nope"])

    def test_duplicate_decision_rejected(self):
        placement = compute_placement(_specs())
        from repro.core.placement import TablePlacement

        with pytest.raises(ValueError):
            placement.add(TablePlacement("item_a", Tier.SM, True))

    def test_missing_table_lookup_rejected(self):
        placement = compute_placement(_specs())
        with pytest.raises(KeyError):
            placement.for_table("ghost")

    def test_byte_accounting(self):
        specs = _specs()
        placement = compute_placement(specs)
        spec_map = {s.name: s for s in specs}
        assert placement.sm_bytes(spec_map) == sum(
            s.size_bytes for s in specs if s.is_user
        )
        assert placement.fm_direct_bytes(spec_map) == specs[2].size_bytes

    def test_policy_accepts_string_value(self):
        placement = compute_placement(_specs(), "fixed_fm_sm")
        assert isinstance(placement.sm_tables(), list)


class TestPlacementEdgeCases:
    """Edge geometries: zero FM budget, oversized tables, all-pruned rows."""

    def test_zero_fm_budget_sends_every_user_table_to_sm(self):
        for policy in PlacementPolicy:
            placement = compute_placement(_specs(), policy, dram_budget_bytes=0)
            assert set(placement.sm_tables()) == {"user_hot", "user_cold_big"}, policy
        tiered = compute_tiered_placement(_specs(), parse_tiers("dram:0,nand:64MiB"))
        assert set(tiered.sm_tables()) == {"user_hot", "user_cold_big"}
        assert tiered.for_table("item_a").home_tier == 0

    def test_negative_budget_rejected_and_tiny_budget_pins_nothing(self):
        from repro.core import SDMConfig
        from repro.hierarchy import TierSpec
        from repro.storage.spec import Technology

        with pytest.raises(ValueError, match="dram_budget_bytes"):
            SDMConfig(dram_budget_bytes=-1)
        with pytest.raises(ValueError, match="non-negative"):
            TierSpec(technology=Technology.DRAM, capacity_bytes=-4096)
        specs = _specs()
        smallest = min(s.size_bytes for s in specs if s.is_user)
        placement = compute_placement(
            specs, PlacementPolicy.FIXED_FM_SM, dram_budget_bytes=smallest - 1
        )
        user_fm = [
            name for name in placement.fm_tables()
            if name in ("user_hot", "user_cold_big")
        ]
        assert user_fm == []

    def test_table_larger_than_every_tier_combined_rejected(self):
        specs = _specs()
        total = sum(s.size_bytes for s in specs if s.is_user)
        tiers = parse_tiers(
            [
                {"technology": "dram", "capacity": 0},
                {"technology": "cxl", "capacity": 4096},
                {"technology": "nand", "capacity": 4096},
            ]
        )
        with pytest.raises(ValueError, match="does not fit"):
            compute_tiered_placement(specs, tiers)
        with pytest.raises(ValueError, match="does not fit"):
            compute_tiered_placement(specs, tiers, granularity="rows")
        assert total > 8192  # the rejection was about capacity, not vacuous

    def test_sm_layout_overflow_surfaces_as_value_error(self):
        """A device tier too small for the placed tables fails loudly at
        load time, not silently at serve time."""
        from helpers import small_model, small_sdm_config

        model = small_model(num_user=4, num_item=0)
        with pytest.raises(ValueError, match="free blocks|does not fit"):
            SoftwareDefinedMemory(
                model,
                small_sdm_config(tiers="dram:0,nand:8KiB"),
            )

    def test_all_pruned_request_serves_zeros_without_io(self):
        from helpers import small_model, small_sdm_config

        model = small_model(num_user=1, num_item=0)
        pruned = {"user_0": prune_table(model.table("user_0"), 0.9, seed=3)}
        sdm = SoftwareDefinedMemory(
            model,
            small_sdm_config(pooled_cache_enabled=False),
            pruned_tables=pruned,
        )
        mapping = pruned["user_0"].mapping
        pruned_rows = np.nonzero(mapping == -1)[0][:8].tolist()
        pooled, done = sdm.pooled_embeddings({"user_0": pruned_rows}, 0.0)
        np.testing.assert_array_equal(
            pooled["user_0"], np.zeros_like(pooled["user_0"])
        )
        assert sdm.stats.sm_ios == 0
        assert sdm.stats.pruned_rows_skipped == len(pruned_rows)
        assert done > 0.0  # the mapping lookups still cost host time
