"""Tests for temporal and spatial locality analysis (Figures 4 and 5)."""

import numpy as np
import pytest

from repro.workload import (
    ZipfGenerator,
    spatial_locality_ratio,
    spatial_locality_windows,
    temporal_locality_cdf,
    top_fraction_coverage,
)


class TestTemporalLocality:
    def test_cdf_monotonically_increases_to_one(self):
        trace = ZipfGenerator(500, 1.1, seed=0).sample(5000).tolist()
        unique_fraction, access_fraction = temporal_locality_cdf(trace)
        assert np.all(np.diff(access_fraction) >= 0)
        assert access_fraction[-1] == pytest.approx(1.0)
        assert unique_fraction[-1] == pytest.approx(1.0)

    def test_power_law_trace_shows_high_locality(self):
        trace = ZipfGenerator(1000, 1.2, seed=0).sample(20_000).tolist()
        assert top_fraction_coverage(trace, 0.1) > 0.5

    def test_uniform_trace_shows_low_locality(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 1000, size=20_000).tolist()
        assert top_fraction_coverage(trace, 0.1) < 0.2

    def test_item_like_distribution_more_local_than_user_like(self):
        """Figure 4: item embeddings show more locality than user embeddings."""
        user_trace = ZipfGenerator(1000, 0.9, seed=0).sample(20_000).tolist()
        item_trace = ZipfGenerator(1000, 1.3, seed=0).sample(20_000).tolist()
        assert top_fraction_coverage(item_trace, 0.1) > top_fraction_coverage(user_trace, 0.1)

    def test_single_value_trace(self):
        unique_fraction, access_fraction = temporal_locality_cdf([7] * 100)
        assert len(unique_fraction) == 1
        assert access_fraction[0] == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            temporal_locality_cdf([])
        with pytest.raises(ValueError):
            top_fraction_coverage([1], 0.0)


class TestSpatialLocality:
    def test_sequential_access_has_perfect_spatial_locality(self):
        rows_per_block = 32
        trace = list(range(320))  # fills 10 blocks completely
        assert spatial_locality_ratio(trace, rows_per_block) == pytest.approx(1.0)

    def test_strided_access_has_no_spatial_locality(self):
        rows_per_block = 32
        trace = [i * rows_per_block for i in range(100)]  # one row per block
        assert spatial_locality_ratio(trace, rows_per_block) == pytest.approx(1 / 32)

    def test_zipf_over_shuffled_ids_has_low_spatial_locality(self):
        """The Figure 5 observation: strong temporal locality but accessed
        rows scatter across blocks."""
        trace = ZipfGenerator(100_000, 1.05, seed=0).sample(20_000).tolist()
        ratio = spatial_locality_ratio(trace, rows_per_block=32)
        assert ratio < 0.3

    def test_ratio_clamped_to_one(self):
        assert spatial_locality_ratio([0, 0, 0, 1], 2) <= 1.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            spatial_locality_ratio([], 32)
        with pytest.raises(ValueError):
            spatial_locality_ratio([1], 0)

    def test_windows_returns_requested_count(self):
        trace = ZipfGenerator(1000, 1.1, seed=0).sample(5000).tolist()
        windows = spatial_locality_windows(trace, rows_per_block=32, num_windows=8)
        assert len(windows) == 8
        assert all(0 < ratio <= 1.0 for ratio in windows)

    def test_windows_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            spatial_locality_windows([], 32)
        with pytest.raises(ValueError):
            spatial_locality_windows([1], 32, num_windows=0)
