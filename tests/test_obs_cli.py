"""CLI surfaces of repro.obs: ``run --trace-out/--timeline-out``,
``python -m repro report``, and the campaign progress line."""

import json

import pytest

from repro.api.cli import main as cli_main
from repro.obs.trace import validate_chrome_trace

RUN_ARGS = [
    "run", "--rows", "256", "--queries", "16", "--warmup", "0", "--users", "40",
    "--arrival", "constant", "--offered-qps", "400", "--queue-depth", "4",
]


class TestRunTelemetryFlags:
    def test_trace_out_writes_a_loadable_chrome_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "deep" / "trace.json"
        assert cli_main([*RUN_ARGS, "--trace-out", str(trace_path)]) == 0
        captured = capsys.readouterr()
        assert str(trace_path) in captured.err
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        validate_chrome_trace(trace)
        assert any(e.get("name") == "serve" for e in trace["traceEvents"])

    def test_timeline_out_writes_window_json(self, capsys, tmp_path):
        timeline_path = tmp_path / "timeline.json"
        assert (
            cli_main(
                [*RUN_ARGS, "--sample-interval", "0.01",
                 "--timeline-out", str(timeline_path)]
            )
            == 0
        )
        timeline = json.loads(timeline_path.read_text(encoding="utf-8"))
        assert timeline["num_windows"] == len(timeline["windows"]) >= 1
        assert timeline["interval_seconds"] == 0.01

    def test_timeline_out_without_interval_is_a_user_error(self, capsys, tmp_path):
        assert (
            cli_main([*RUN_ARGS, "--timeline-out", str(tmp_path / "t.json")]) == 2
        )
        assert "--sample-interval" in capsys.readouterr().err

    def test_json_result_carries_the_timeline(self, capsys):
        assert cli_main([*RUN_ARGS, "--sample-interval", "0.01", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["timeline"]["num_windows"] >= 1

    def test_plain_run_is_untouched_by_telemetry_flags(self, capsys):
        # No flags -> no timeline in the JSON result, no telemetry stderr.
        assert cli_main([*RUN_ARGS, "--json"]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["timeline"] is None
        assert captured.err == ""


class TestReportCommand:
    @pytest.fixture()
    def result_file(self, capsys, tmp_path):
        assert cli_main([*RUN_ARGS, "--sample-interval", "0.01", "--json"]) == 0
        path = tmp_path / "result.json"
        path.write_text(capsys.readouterr().out, encoding="utf-8")
        return path

    def test_report_renders_summary_and_timeline_tables(self, capsys, result_file):
        assert cli_main(["report", str(result_file)]) == 0
        out = capsys.readouterr().out
        assert "scenario:" in out
        assert "timeline:" in out and "served QPS" in out

    def test_report_json_is_structured(self, capsys, result_file):
        assert cli_main(["report", str(result_file), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["num_queries"] == 16
        assert report["timeline"]["num_windows"] == len(report["timeline"]["rows"])

    def test_report_over_a_campaign_directory(self, capsys, tmp_path):
        store = tmp_path / "run"
        assert (
            cli_main(
                ["campaign", "--rows", "256", "--queries", "12", "--warmup", "0",
                 "--users", "40", "--sample-interval", "0.02",
                 "--grid", "serving.concurrency=1,2",
                 "--out", str(store), "--quiet"]
            )
            == 0
        )
        capsys.readouterr()
        assert cli_main(["report", str(store), "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 2
        assert all(entry["report"]["timeline"]["num_windows"] >= 1 for entry in reports)

    def test_report_rejects_non_result_json(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"not": "a result"}), encoding="utf-8")
        assert cli_main(["report", str(bogus)]) == 2
        assert "not a stored result" in capsys.readouterr().err

    def test_report_rejects_empty_directory(self, capsys, tmp_path):
        assert cli_main(["report", str(tmp_path)]) == 2
        assert "no campaign results" in capsys.readouterr().err


class TestCampaignProgress:
    def test_progress_lands_on_stderr(self, capsys, tmp_path):
        assert (
            cli_main(
                ["campaign", "--rows", "256", "--queries", "12", "--warmup", "0",
                 "--users", "40", "--grid", "serving.concurrency=1,2",
                 "--out", str(tmp_path / "run")]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "[1/2]" in err and "[2/2]" in err
        assert "(ran)" in err

    def test_quiet_suppresses_progress(self, capsys, tmp_path):
        assert (
            cli_main(
                ["campaign", "--rows", "256", "--queries", "12", "--warmup", "0",
                 "--users", "40", "--grid", "serving.concurrency=1",
                 "--out", str(tmp_path / "run"), "--quiet"]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "[1/1]" not in err
