"""Tests for de-quantisation at load time (appendix A.5)."""

import numpy as np
import pytest

from repro.core import DequantizedTable, dequantize_table
from repro.dlrm import EmbeddingTable, EmbeddingTableSpec


def _table(dim=16, num_rows=32):
    spec = EmbeddingTableSpec(
        name="t", num_rows=num_rows, dim=dim, is_user=True, avg_pooling_factor=4.0
    )
    return EmbeddingTable.random(spec, seed=0)


class TestDequantizeTable:
    def test_values_match_runtime_dequantisation(self):
        table = _table()
        result = dequantize_table(table)
        np.testing.assert_allclose(
            result.table.data, table.lookup_dense(range(table.spec.num_rows))
        )

    def test_row_bytes_are_float32(self):
        table = _table(dim=16)
        result = dequantize_table(table)
        assert result.table.row_bytes == 64

    def test_sm_footprint_grows(self):
        table = _table(dim=64)
        result = dequantize_table(table)
        # 72B quantised -> 256B float32: ~3.6x growth.
        assert result.sm_growth_factor == pytest.approx(256 / 72, rel=1e-6)
        assert result.sm_bytes_after > result.sm_bytes_before

    def test_cache_efficiency_loss_reported(self):
        result = dequantize_table(_table(dim=64))
        assert 0.0 < result.cache_efficiency_loss < 1.0
        # fewer rows fit per MiB after expansion
        assert result.cache_rows_per_mib_after < result.cache_rows_per_mib_before

    def test_decode_row_roundtrip(self):
        table = _table(dim=8)
        result = dequantize_table(table)
        raw = result.table.row_bytes_at(3)
        np.testing.assert_allclose(
            DequantizedTable.decode_row(raw), table.lookup_dense([3])[0]
        )

    def test_row_bytes_at_out_of_range(self):
        result = dequantize_table(_table(num_rows=4))
        with pytest.raises(IndexError):
            result.table.row_bytes_at(4)

    def test_shape_validation(self):
        table = _table()
        with pytest.raises(ValueError):
            DequantizedTable(spec=table.spec, data=np.zeros((1, 1), dtype=np.float32))

    def test_size_bytes(self):
        table = _table(dim=16, num_rows=10)
        result = dequantize_table(table)
        assert result.table.size_bytes == 10 * 64
