"""Tests for N-tier placement: table granularity, row splits, conversions."""

import numpy as np
import pytest

from repro.core.placement import PlacementPolicy, Tier, compute_placement
from repro.hierarchy import (
    TieredPlacement,
    TieredTablePlacement,
    TierSegment,
    compute_tiered_placement,
    hotness_ranking,
    parse_tiers,
)
from repro.sim.units import BLOCK_SIZE

from helpers import small_table_specs


def _three_tiers(fast="dram:8KiB", mid="cxl:8KiB", slow="nand:64MiB"):
    return parse_tiers(f"{fast},{mid},{slow}")


class TestTableGranularity:
    def test_density_order_fills_fastest_first(self):
        specs = small_table_specs(num_user=3, num_item=1)
        placement = compute_tiered_placement(specs, _three_tiers())
        homes = {
            name: placement.for_table(name).home_tier
            for name in ("user_0", "user_1", "user_2")
        }
        # Equal density: visit order decides; one table per 8KiB tier.
        assert sorted(homes.values()) == [0, 1, 2]

    def test_item_tables_on_tier0_not_budgeted(self):
        specs = small_table_specs(num_user=1, num_item=2)
        tiers = parse_tiers("dram:0,nand:64MiB")
        placement = compute_tiered_placement(specs, tiers)
        assert placement.for_table("item_0").home_tier == 0
        assert placement.for_table("item_1").home_tier == 0
        assert placement.for_table("user_0").home_tier == 1

    def test_pinned_tables_home_fast(self):
        specs = small_table_specs(num_user=2)
        tiers = parse_tiers("dram:0,nand:64MiB")
        placement = compute_tiered_placement(
            specs, tiers, pinned_fast_tables=["user_1"]
        )
        assert placement.for_table("user_1").home_tier == 0
        assert not placement.for_table("user_1").cache_enabled

    def test_cache_disable_threshold(self):
        specs = small_table_specs(num_user=2)
        placement = compute_tiered_placement(
            specs,
            parse_tiers("dram:0,nand:64MiB"),
            cache_disable_alpha_threshold=2.0,
        )
        assert not placement.for_table("user_0").cache_enabled

    def test_oversized_table_rejected(self):
        specs = small_table_specs(num_user=1, num_rows=4096)
        with pytest.raises(ValueError, match="does not fit in any tier"):
            compute_tiered_placement(specs, parse_tiers("dram:1KiB,nand:8KiB"))

    def test_device_budget_is_block_quantised(self):
        # 256 rows of 24 B = 6144 B of payload but 2 full blocks on a device.
        specs = small_table_specs(num_user=1, num_item=0)
        placement = compute_tiered_placement(specs, parse_tiers("dram:0,nand:8KiB"))
        assert placement.for_table("user_0").home_tier == 1
        with pytest.raises(ValueError, match="does not fit"):
            compute_tiered_placement(specs, parse_tiers("dram:0,nand:4KiB"))


class TestRowGranularity:
    def test_straddling_table_splits(self):
        specs = small_table_specs(num_user=3, num_item=1)
        placement = compute_tiered_placement(
            specs, _three_tiers(), granularity="rows"
        )
        split = [
            placement.for_table(name)
            for name in ("user_0", "user_1", "user_2")
            if placement.for_table(name).is_split
        ]
        assert split, "expected at least one row-split table"
        decision = split[0]
        assert decision.segments[0].start == 0
        assert decision.segments[-1].end == 256

    def test_row_hotness_attaches_rank_order(self):
        specs = small_table_specs(num_user=2, num_item=0)
        ranking = np.arange(255, -1, -1, dtype=np.int64)  # reversed ids
        placement = compute_tiered_placement(
            specs,
            _three_tiers(fast="dram:2KiB"),
            granularity="rows",
            row_hotness={"user_0": ranking, "user_1": ranking},
        )
        for name in ("user_0", "user_1"):
            decision = placement.for_table(name)
            if decision.is_split:
                assert decision.rank_order is not None
                np.testing.assert_array_equal(decision.rank_order, ranking)

    def test_bad_hotness_permutation_rejected(self):
        specs = small_table_specs(num_user=1, num_item=0)
        with pytest.raises(ValueError, match="permutation"):
            compute_tiered_placement(
                specs,
                _three_tiers(fast="dram:2KiB", mid="cxl:4KiB"),
                granularity="rows",
                row_hotness={"user_0": [0, 0, 1]},
            )

    def test_tiers_of_rows_vectorised(self):
        decision = TieredTablePlacement(
            table_name="t",
            segments=(
                TierSegment(tier=0, start=0, end=10),
                TierSegment(tier=2, start=10, end=30),
            ),
            cache_enabled=True,
        )
        tiers = decision.tiers_of_rows(np.array([0, 9, 10, 29]))
        np.testing.assert_array_equal(tiers, [0, 0, 2, 2])
        assert decision.tier_of_row(9) == 0
        assert decision.tier_of_row(10) == 2
        with pytest.raises(IndexError):
            decision.tier_of_row(30)


class TestConversions:
    def test_legacy_round_trip(self):
        specs = small_table_specs(num_user=2, num_item=1)
        legacy = compute_placement(
            specs, PlacementPolicy.FIXED_FM_SM, dram_budget_bytes=specs[0].size_bytes
        )
        tiered = TieredPlacement.from_legacy(legacy)
        assert set(tiered.sm_tables()) == set(legacy.sm_tables())
        assert set(tiered.fm_tables()) == set(legacy.fm_tables())
        back = tiered.to_legacy()
        for name in legacy.decisions:
            assert back.tier_of(name) is legacy.tier_of(name)
            assert (
                back.for_table(name).cache_enabled
                == legacy.for_table(name).cache_enabled
            )

    def test_split_placement_has_no_legacy_equivalent(self):
        tiered = TieredPlacement(num_tiers=2)
        tiered.add(
            TieredTablePlacement(
                table_name="t",
                segments=(
                    TierSegment(tier=0, start=0, end=5),
                    TierSegment(tier=1, start=5, end=10),
                ),
                cache_enabled=True,
            )
        )
        with pytest.raises(ValueError, match="row-split"):
            tiered.to_legacy()

    def test_segments_must_tile_contiguously(self):
        with pytest.raises(ValueError, match="contiguously"):
            TieredTablePlacement(
                table_name="t",
                segments=(
                    TierSegment(tier=0, start=0, end=5),
                    TierSegment(tier=1, start=6, end=10),
                ),
                cache_enabled=True,
            )

    def test_duplicate_table_rejected(self):
        tiered = TieredPlacement(num_tiers=2)
        decision = TieredTablePlacement(
            table_name="t",
            segments=(TierSegment(tier=1, start=0, end=4),),
            cache_enabled=True,
        )
        tiered.add(decision)
        with pytest.raises(ValueError, match="already has a placement"):
            tiered.add(decision)

    def test_tier_bytes_accounting(self):
        specs = small_table_specs(num_user=2, num_item=1)
        spec_map = {s.name: s for s in specs}
        placement = compute_tiered_placement(
            specs, parse_tiers("dram:0,nand:64MiB")
        )
        user_bytes = sum(s.size_bytes for s in specs if s.is_user)
        item_bytes = sum(s.size_bytes for s in specs if not s.is_user)
        assert placement.tier_bytes(spec_map, 1) == user_bytes
        assert placement.tier_bytes(spec_map, 0) == item_bytes


class TestPlacementOwnership:
    def test_sdm_does_not_mutate_caller_placement(self):
        from repro.core import SoftwareDefinedMemory
        from repro.dlrm import prune_table

        from helpers import small_model, small_sdm_config

        model = small_model(num_user=1, num_item=0)
        placement = compute_tiered_placement(
            model.table_specs, parse_tiers("dram:0,nand:64MiB")
        )
        before = [
            (s.tier, s.start, s.end)
            for s in placement.for_table("user_0").segments
        ]
        pruned = {"user_0": prune_table(model.table("user_0"), 0.3, seed=1)}
        SoftwareDefinedMemory(
            model, small_sdm_config(tiers="dram:0,nand:64MiB"),
            placement=placement, pruned_tables=pruned,
        )
        after = [
            (s.tier, s.start, s.end)
            for s in placement.for_table("user_0").segments
        ]
        # Loading re-anchors segments on the pruned stored-row count, but
        # only on the SDM's private copy — the caller's object is untouched.
        assert after == before


class TestHotnessRanking:
    def test_ranks_by_frequency_then_id(self):
        trace = [3, 3, 3, 1, 1, 7]
        ranking = hotness_ranking(trace, num_rows=8)
        assert ranking[0] == 3 and ranking[1] == 1 and ranking[2] == 7
        assert sorted(ranking.tolist()) == list(range(8))

    def test_empty_trace_is_identity(self):
        np.testing.assert_array_equal(hotness_ranking([], 4), np.arange(4))

    def test_out_of_range_trace_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            hotness_ranking([5], num_rows=4)


class TestPropertyStyleEdgeCases:
    """Randomised edge sweeps: every generated model must either place
    cleanly (covering all rows exactly once) or raise a clear ValueError."""

    def test_random_geometries_place_or_reject(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            num_user = int(rng.integers(1, 5))
            num_rows = int(rng.integers(16, 1024))
            specs = small_table_specs(num_user=num_user, num_item=1, num_rows=num_rows)
            fast = int(rng.integers(0, 4)) * 4 * 1024
            mid_blocks = int(rng.integers(1, 8))
            tiers = parse_tiers(
                [
                    {"technology": "dram", "capacity": fast},
                    {"technology": "cxl", "capacity": mid_blocks * BLOCK_SIZE},
                    {"technology": "nand", "capacity": "64MiB"},
                ]
            )
            for granularity in ("table", "rows"):
                try:
                    placement = compute_tiered_placement(
                        specs, tiers, granularity=granularity
                    )
                except ValueError:
                    continue
                for spec in specs:
                    decision = placement.for_table(spec.name)
                    assert decision.segments[0].start == 0
                    assert decision.segments[-1].end == spec.num_rows
                    covered = sum(s.num_rows for s in decision.segments)
                    assert covered == spec.num_rows
