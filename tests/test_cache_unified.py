"""Tests for the unified (dual) row cache of section 4.3."""

import pytest

from repro.cache import SizeThresholdAdmission, UnifiedCacheConfig, UnifiedRowCache


def _cache(capacity=64 * 1024, partitions=1, **kwargs):
    return UnifiedRowCache(
        UnifiedCacheConfig(capacity_bytes=capacity, num_partitions=partitions, **kwargs)
    )


class TestUnifiedRouting:
    def test_small_rows_go_to_memory_optimised_cache(self):
        cache = _cache()
        cache.put(("t", 1), bytes(100))
        assert cache.memory_optimized_stats.inserts == 1
        assert cache.cpu_optimized_stats.inserts == 0

    def test_large_rows_go_to_cpu_optimised_cache(self):
        cache = _cache()
        cache.put(("t", 1), bytes(512))
        assert cache.cpu_optimized_stats.inserts == 1
        assert cache.memory_optimized_stats.inserts == 0

    def test_threshold_boundary(self):
        cache = _cache()
        cache.put(("small", 0), bytes(255))
        cache.put(("large", 0), bytes(256))
        assert cache.memory_optimized_stats.inserts == 1
        assert cache.cpu_optimized_stats.inserts == 1

    def test_get_with_size_hint_finds_value(self):
        cache = _cache()
        cache.put(("t", 1), bytes(100))
        assert cache.get(("t", 1), size_hint=100) is not None

    def test_get_without_size_hint_probes_both(self):
        cache = _cache()
        cache.put(("t", 1), bytes(512))
        assert cache.get(("t", 1)) is not None

    def test_one_logical_miss_recorded_even_when_both_probed(self):
        cache = _cache()
        cache.get(("missing", 1))
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 1

    def test_one_logical_hit_recorded(self):
        cache = _cache()
        cache.put(("t", 1), bytes(512))
        cache.get(("t", 1))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0


class TestUnifiedCapacityAndStats:
    def test_budget_split_between_internal_caches(self):
        config = UnifiedCacheConfig(capacity_bytes=100_000, memory_optimized_fraction=0.7)
        cache = UnifiedRowCache(config)
        assert cache.capacity_bytes == 100_000

    def test_hit_rate_aggregates_across_caches(self):
        cache = _cache()
        cache.put(("s", 0), bytes(64))
        cache.put(("l", 0), bytes(512))
        cache.get(("s", 0), size_hint=64)
        cache.get(("l", 0), size_hint=512)
        cache.get(("missing", 0), size_hint=64)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_used_bytes_and_item_count(self):
        cache = _cache()
        cache.put(("a", 0), bytes(100))
        cache.put(("b", 0), bytes(300))
        assert cache.item_count == 2
        assert cache.used_bytes >= 400

    def test_invalidate_and_clear(self):
        cache = _cache()
        cache.put(("a", 0), bytes(100))
        assert cache.invalidate(("a", 0))
        assert not cache.invalidate(("a", 0))
        cache.put(("b", 0), bytes(100))
        cache.clear()
        assert cache.item_count == 0

    def test_contains(self):
        cache = _cache()
        cache.put(("a", 0), bytes(100))
        assert cache.contains(("a", 0))
        assert not cache.contains(("z", 0))

    def test_reset_stats(self):
        cache = _cache()
        cache.put(("a", 0), bytes(100))
        cache.get(("a", 0), size_hint=100)
        cache.reset_stats()
        assert cache.stats.lookups == 0


class TestUnifiedPartitionsAndAdmission:
    def test_partitioning_preserves_correctness(self):
        cache = _cache(partitions=4)
        for index in range(100):
            cache.put(("t", index), bytes(64))
        hits = sum(
            1 for index in range(100) if cache.get(("t", index), size_hint=64) is not None
        )
        assert hits > 50  # most survive; partitioning must not lose everything

    def test_partition_routing_is_stable(self):
        cache = _cache(partitions=4)
        cache.put(("t", 12345), bytes(64))
        for _ in range(5):
            assert cache.get(("t", 12345), size_hint=64) is not None

    def test_admission_policy_can_reject(self):
        cache = UnifiedRowCache(
            UnifiedCacheConfig(capacity_bytes=64 * 1024),
            admission=SizeThresholdAdmission(max_value_bytes=128),
        )
        assert cache.put(("small", 0), bytes(64)) is True
        assert cache.put(("large", 0), bytes(1024)) is False
        assert cache.stats.rejected_inserts == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            UnifiedCacheConfig(capacity_bytes=0)
        with pytest.raises(ValueError):
            UnifiedCacheConfig(capacity_bytes=100, memory_optimized_fraction=1.5)
        with pytest.raises(ValueError):
            UnifiedCacheConfig(capacity_bytes=100, num_partitions=0)
        with pytest.raises(ValueError):
            UnifiedCacheConfig(capacity_bytes=100, small_row_threshold_bytes=0)
