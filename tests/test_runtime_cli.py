"""``python -m repro campaign`` / ``compare``: the CLI over the runtime layer."""

import json

import pytest

from repro.api.cli import main as cli_main

BASE_ARGS = ["--rows", "256", "--queries", "12", "--warmup", "0", "--users", "40"]


def run_json(capsys, argv, expect=0):
    assert cli_main(argv) == expect
    return json.loads(capsys.readouterr().out)


class TestCampaignCLI:
    def test_two_axis_campaign_runs_every_point(self, capsys, tmp_path):
        payload = run_json(
            capsys,
            ["campaign", *BASE_ARGS,
             "--grid", "backend.name=dram,sdm",
             "--grid", "serving.concurrency=1,2",
             "--out", str(tmp_path / "run"), "--quiet", "--json"],
        )
        assert len(payload) == 4
        assert [point["cached"] for point in payload] == [False] * 4
        assert {tuple(dict(point["coords"]).values()) for point in payload} == {
            ("dram", 1), ("dram", 2), ("sdm", 1), ("sdm", 2),
        }
        assert all(point["result"]["achieved_qps"] > 0 for point in payload)

    def test_resume_serves_every_point_from_the_store(self, capsys, tmp_path):
        argv = ["campaign", *BASE_ARGS, "--grid", "serving.concurrency=1,2",
                "--out", str(tmp_path / "run"), "--quiet", "--json"]
        first = run_json(capsys, argv)
        second = run_json(capsys, argv[:-2] + ["--resume", "--json"])
        assert [point["cached"] for point in first] == [False, False]
        assert [point["cached"] for point in second] == [True, True]
        assert [p["result"] for p in first] == [p["result"] for p in second]

    def test_existing_store_without_resume_is_refused(self, capsys, tmp_path):
        argv = ["campaign", *BASE_ARGS, "--grid", "serving.concurrency=1",
                "--out", str(tmp_path / "run"), "--quiet", "--json"]
        run_json(capsys, argv)
        assert cli_main(argv) == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_without_out_is_an_error(self, capsys):
        assert cli_main(["campaign", *BASE_ARGS,
                         "--grid", "serving.concurrency=1", "--resume"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_malformed_grid_is_a_user_error(self, capsys):
        assert cli_main(["campaign", *BASE_ARGS, "--grid", "serving.concurrency"]) == 2
        assert "param=v1,v2" in capsys.readouterr().err

    def test_offered_qps_axis_implies_open_loop(self, capsys):
        payload = run_json(
            capsys,
            ["campaign", *BASE_ARGS, "--grid", "traffic.offered_qps=100,400",
             "--quiet", "--json"],
        )
        assert [point["result"]["traffic_mode"] for point in payload] == ["open", "open"]
        qps = [point["result"]["achieved_qps"] for point in payload]
        assert qps[0] != qps[1]

    def test_campaign_table_output(self, capsys):
        assert cli_main(
            ["campaign", *BASE_ARGS, "--grid", "serving.concurrency=1,2",
             "--metric", "achieved_qps", "--metric", "num_queries", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving.concurrency" in out
        assert "achieved_qps" in out and "num_queries" in out

    def test_unknown_table_metric_is_a_user_error(self, capsys):
        assert cli_main(
            ["campaign", *BASE_ARGS, "--grid", "serving.concurrency=1",
             "--metric", "achieved_qpz", "--quiet"]
        ) == 2
        assert "valid ScenarioResult metrics" in capsys.readouterr().err

    def test_progress_lands_on_stderr(self, capsys, tmp_path):
        assert cli_main(
            ["campaign", *BASE_ARGS, "--grid", "serving.concurrency=1,2",
             "--out", str(tmp_path / "run")]
        ) == 0
        err = capsys.readouterr().err
        assert "[1/2]" in err and "[2/2]" in err and "(ran)" in err

    def test_parallel_flag_produces_identical_results(self, capsys):
        argv = ["campaign", *BASE_ARGS, "--grid", "serving.concurrency=1,2",
                "--quiet", "--json"]
        serial = run_json(capsys, argv)
        parallel = run_json(capsys, argv + ["--parallel", "2"])
        assert [p["result"] for p in serial] == [p["result"] for p in parallel]

    def test_no_reuse_flag_produces_identical_results(self, capsys):
        argv = ["campaign", *BASE_ARGS, "--grid", "workload.num_users=40,60",
                "--quiet", "--json"]
        reused = run_json(capsys, argv)
        fresh = run_json(capsys, argv + ["--no-reuse"])
        assert [p["result"] for p in reused] == [p["result"] for p in fresh]

    def test_dry_runtime_plans_without_executing(self, capsys, tmp_path):
        assert cli_main(
            ["campaign", *BASE_ARGS, "--grid", "serving.concurrency=1,2",
             "--runtime", "dry", "--out", str(tmp_path / "run"), "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "dry run, 2 point(s) planned" in out
        assert "serving.concurrency=1" in out and "serving.concurrency=2" in out
        # Nothing executed, nothing persisted (only the campaign metadata).
        assert not list((tmp_path / "run").glob("results*.jsonl"))

    def test_quarantined_point_fails_the_exit_code(self, capsys, tmp_path):
        """A raising point is reported and quarantined; siblings persist."""
        assert cli_main(
            ["campaign", *BASE_ARGS,
             "--grid", "backend.options.row_cache_capacity_bytes=4096,bogus",
             "--out", str(tmp_path / "run"), "--quiet"]
        ) == 1
        captured = capsys.readouterr()
        assert "1 point(s) quarantined" in captured.err
        assert "TypeError" in captured.err
        # The good sibling's row still rendered and persisted.
        assert "4096" in captured.out
        lines = (tmp_path / "run" / "results.jsonl").read_text().splitlines()
        assert len(lines) == 1

    def test_quarantine_in_json_mode_reports_status_and_error(self, capsys):
        payload = run_json(
            capsys,
            ["campaign", *BASE_ARGS,
             "--grid", "backend.options.row_cache_capacity_bytes=4096,bogus",
             "--quiet", "--json"],
            expect=1,
        )
        assert [point["status"] for point in payload] == ["ok", "failed"]
        assert payload[0]["result"]["achieved_qps"] > 0
        assert payload[1]["result"] is None
        assert payload[1]["error_type"] == "TypeError"

    def test_retries_flag_is_threaded_through(self, capsys):
        payload = run_json(
            capsys,
            ["campaign", *BASE_ARGS, "--grid", "serving.concurrency=1",
             "--retries", "2", "--runtime", "serial", "--quiet", "--json"],
        )
        assert [point["attempts"] for point in payload] == [1]


class TestCompareCLI:
    def _populate(self, capsys, out_dir):
        run_json(
            capsys,
            ["campaign", *BASE_ARGS, "--grid", "serving.concurrency=1,2",
             "--out", str(out_dir), "--quiet", "--json"],
        )

    def test_self_compare_has_zero_regressions_and_exit_zero(self, capsys, tmp_path):
        self._populate(capsys, tmp_path / "run")
        payload = run_json(
            capsys,
            ["compare", str(tmp_path / "run"), str(tmp_path / "run"), "--json"],
        )
        assert payload["num_regressions"] == 0
        assert payload["compared_points"] == 2

    def test_regression_fails_the_exit_code(self, capsys, tmp_path):
        self._populate(capsys, tmp_path / "base")
        # Forge a degraded candidate from the baseline's own records.
        base_lines = (tmp_path / "base" / "results.jsonl").read_text().splitlines()
        (tmp_path / "cand").mkdir()
        with open(tmp_path / "cand" / "results.jsonl", "w") as handle:
            for line in base_lines:
                record = json.loads(line)
                record["result"]["achieved_qps"] *= 0.5
                handle.write(json.dumps(record) + "\n")
        assert cli_main(
            ["compare", str(tmp_path / "base"), str(tmp_path / "cand")]
        ) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_run_directory_is_a_user_error(self, capsys, tmp_path):
        assert cli_main(
            ["compare", str(tmp_path / "none"), str(tmp_path / "none")]
        ) == 2
        assert "results.jsonl" in capsys.readouterr().err

    @pytest.mark.parametrize("metric", ["latency_seconds.p99", "achieved_qps:higher"])
    def test_custom_metrics(self, capsys, tmp_path, metric):
        self._populate(capsys, tmp_path / "run")
        payload = run_json(
            capsys,
            ["compare", str(tmp_path / "run"), str(tmp_path / "run"),
             "--metric", metric, "--json"],
        )
        path = metric.split(":")[0]
        assert {delta["metric"] for delta in payload["deltas"]} == {path}
