"""Tests for the scale-out deployment model."""

import pytest

from repro.serving import HW_AN, HW_S, PowerModel, plan_scale_out
from repro.sim.units import GB


class TestPlanScaleOut:
    def test_one_helper_per_five_main_hosts(self):
        plan = plan_scale_out(HW_AN, HW_S, num_main_hosts=1500, main_hosts_per_helper=5)
        assert plan.num_helper_hosts == 300
        assert plan.total_hosts == 1800

    def test_total_power_matches_table9_scale_out_row(self):
        plan = plan_scale_out(HW_AN, HW_S, num_main_hosts=1500)
        assert plan.total_power(PowerModel()) == pytest.approx(1575)

    def test_capacity_requirement_can_force_more_helpers(self):
        plan = plan_scale_out(
            HW_AN, HW_S, num_main_hosts=10, user_capacity_bytes=1000 * GB
        )
        # 1000GB of user embeddings do not fit the 2 helpers implied by the ratio.
        assert plan.num_helper_hosts >= 1000 * GB // HW_S.dram_bytes

    def test_failure_domain_larger_than_scale_up(self):
        plan = plan_scale_out(HW_AN, HW_S, num_main_hosts=100)
        assert plan.failure_domain_factor > 1.0

    def test_remote_fetch_latency_recorded(self):
        plan = plan_scale_out(HW_AN, HW_S, num_main_hosts=10, remote_fetch_latency=1e-3)
        assert plan.remote_fetch_latency == pytest.approx(1e-3)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            plan_scale_out(HW_AN, HW_S, num_main_hosts=0)
        with pytest.raises(ValueError):
            plan_scale_out(HW_AN, HW_S, num_main_hosts=10, main_hosts_per_helper=0)
