"""Tests for post-training pruning and the mapping tensor."""

import numpy as np
import pytest

from repro.dlrm import EmbeddingTable, EmbeddingTableSpec, prune_table
from repro.dlrm.pruning import PRUNED


def _table(num_rows=64, dim=8, seed=0):
    spec = EmbeddingTableSpec(
        name="t", num_rows=num_rows, dim=dim, is_user=True, avg_pooling_factor=4.0
    )
    return EmbeddingTable.random(spec, seed=seed)


class TestPruneTable:
    def test_prunes_requested_fraction(self):
        pruned = prune_table(_table(100), prune_fraction=0.3)
        assert pruned.num_pruned_rows == 30
        assert pruned.table.spec.num_rows == 70
        assert pruned.pruned_fraction == pytest.approx(0.3)

    def test_mapping_covers_unpruned_space(self):
        table = _table(50)
        pruned = prune_table(table, 0.2)
        assert pruned.mapping.shape == (50,)
        kept = pruned.mapping[pruned.mapping != PRUNED]
        assert sorted(kept.tolist()) == list(range(40))

    def test_smallest_norm_rows_are_pruned(self):
        table = _table(64)
        dense = table.lookup_dense(range(64))
        norms = np.linalg.norm(dense, axis=1)
        pruned = prune_table(table, 0.25)
        pruned_rows = np.nonzero(pruned.mapping == PRUNED)[0]
        kept_rows = np.nonzero(pruned.mapping != PRUNED)[0]
        assert norms[pruned_rows].max() <= norms[kept_rows].min() + 1e-6

    def test_kept_rows_preserve_values(self):
        table = _table(32)
        pruned = prune_table(table, 0.25)
        for unpruned_index in np.nonzero(pruned.mapping != PRUNED)[0][:5]:
            original = table.lookup_dense([unpruned_index])[0]
            via_pruned = pruned.lookup_dense([unpruned_index])[0]
            np.testing.assert_allclose(via_pruned, original)

    def test_pruned_rows_read_as_zeros(self):
        table = _table(32)
        pruned = prune_table(table, 0.25)
        zero_index = int(np.nonzero(pruned.mapping == PRUNED)[0][0])
        np.testing.assert_array_equal(
            pruned.lookup_dense([zero_index])[0], np.zeros(table.spec.dim)
        )

    def test_bag_mixes_zero_and_live_rows(self):
        table = _table(32)
        pruned = prune_table(table, 0.25)
        zero_index = int(np.nonzero(pruned.mapping == PRUNED)[0][0])
        live_index = int(np.nonzero(pruned.mapping != PRUNED)[0][0])
        pooled = pruned.bag([zero_index, live_index])
        np.testing.assert_allclose(pooled, table.lookup_dense([live_index])[0], rtol=1e-6)

    def test_mapping_tensor_bytes(self):
        pruned = prune_table(_table(100), 0.5, index_bytes=4)
        assert pruned.mapping_tensor_bytes == 400
        pruned8 = prune_table(_table(100), 0.5, index_bytes=8)
        assert pruned8.mapping_tensor_bytes == 800

    def test_out_of_range_lookup_rejected(self):
        pruned = prune_table(_table(10), 0.2)
        with pytest.raises(IndexError):
            pruned.lookup_dense([10])

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            prune_table(_table(), -0.1)
        with pytest.raises(ValueError):
            prune_table(_table(), 1.0)

    def test_zero_fraction_keeps_all_rows(self):
        pruned = prune_table(_table(20), 0.0)
        assert pruned.num_pruned_rows == 0
        assert pruned.table.spec.num_rows == 20

    def test_deterministic(self):
        a = prune_table(_table(seed=3), 0.3)
        b = prune_table(_table(seed=3), 0.3)
        np.testing.assert_array_equal(a.mapping, b.mapping)
