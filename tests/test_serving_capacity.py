"""Tests for capacity planning (Eq. 5-7) and SSD sizing (Table 10)."""

import pytest

from repro.serving import (
    DeploymentScenario,
    HW_L,
    HW_S,
    HW_SS,
    hosts_needed,
    plan_deployment,
    qps_per_host,
    sm_bound_qps,
    ssds_needed,
)
from repro.serving.capacity_planner import profile_flops_per_query, query_latency_estimate
from repro.sim.units import MICROSECOND
from repro.storage import nand_flash_spec, optane_ssd_spec


class TestRooflines:
    def test_qps_is_min_of_memory_and_compute_bound(self):
        memory_bound = HW_L.fast_memory_bandwidth / 1e6
        compute_bound = HW_L.compute_flops / 1e9
        assert qps_per_host(HW_L, bytes_per_query=1e6, flops_per_query=1e9) == pytest.approx(
            min(memory_bound, compute_bound)
        )

    def test_dual_socket_doubles_cpu_bound_qps(self):
        flops = 5e9
        assert qps_per_host(HW_L, 1e3, flops) == pytest.approx(
            2 * qps_per_host(HW_SS, 1e3, flops)
        )

    def test_latency_estimate_sums_components(self):
        latency = query_latency_estimate(HW_L, 1e6, 1e9)
        assert latency == pytest.approx(
            1e6 / HW_L.fast_memory_bandwidth + 1e9 / HW_L.compute_flops
        )

    def test_hosts_needed_ceils(self):
        assert hosts_needed(1000, 120) == 9
        assert hosts_needed(288_000, 240) == 1200  # M1 region demand on HW-L

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            qps_per_host(HW_L, 0, 1)
        with pytest.raises(ValueError):
            hosts_needed(0, 1)
        with pytest.raises(ValueError):
            profile_flops_per_query([], 0, 1)


class TestSmBoundQps:
    def test_optane_supports_much_higher_qps_than_nand(self):
        """Section 5.2: with the M2-like demand, Nand Flash caps QPS well
        below the accelerator's 450 while Optane keeps up.  The latency region
        of interest is 'up to a few 10s of us' (section 3), so the per-IO
        budget is ~100us."""
        lookups_per_query = 450 * 25  # tables x pooling factor
        hit_rate = 0.9
        budget = 100 * MICROSECOND
        nand = sm_bound_qps(lookups_per_query, [nand_flash_spec()] * 2, hit_rate, budget)
        optane = sm_bound_qps(lookups_per_query, [optane_ssd_spec()] * 2, hit_rate, budget)
        assert nand < 450
        assert optane > 450
        assert optane > nand * 3

    def test_hit_rate_raises_qps_bound(self):
        lookups = 1000
        low = sm_bound_qps(lookups, [nand_flash_spec()], 0.5, 1e-3)
        high = sm_bound_qps(lookups, [nand_flash_spec()], 0.95, 1e-3)
        assert high > low

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            sm_bound_qps(0, [nand_flash_spec()], 0.5, 1e-3)
        with pytest.raises(ValueError):
            sm_bound_qps(10, [], 0.5, 1e-3)
        with pytest.raises(ValueError):
            sm_bound_qps(10, [nand_flash_spec()], 1.0, 1e-3)


class TestSsdSizing:
    def test_table10_m3_needs_nine_optane_ssds(self):
        """Table 10: 36 MIOPS at 4 MIOPS per Optane SSD -> 9 SSDs."""
        qps, tables, pooling, hit_rate = 3150, 2000, 30, 0.80
        required_iops = qps * tables * pooling * (1 - hit_rate)
        assert required_iops == pytest.approx(37.8e6)
        assert ssds_needed(36e6, optane_ssd_spec()) == 9
        assert ssds_needed(required_iops, optane_ssd_spec()) in (9, 10)

    def test_derating_increases_device_count(self):
        assert ssds_needed(1e6, nand_flash_spec(), derate=0.5) == 4
        assert ssds_needed(1e6, nand_flash_spec(), derate=1.0) == 2

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            ssds_needed(0, optane_ssd_spec())
        with pytest.raises(ValueError):
            ssds_needed(1e6, optane_ssd_spec(), derate=0)


class TestDeploymentPlanning:
    def test_table8_shapes(self):
        """HW-L at 240 QPS vs HW-SS+SDM at 120 QPS for the same total demand."""
        total_qps = 240 * 1200
        baseline = plan_deployment(
            DeploymentScenario("HW-L", HW_L, qps_per_host=240, total_qps=total_qps)
        )
        sdm = plan_deployment(
            DeploymentScenario("HW-SS + SDM", HW_SS, qps_per_host=120, total_qps=total_qps)
        )
        assert baseline.num_hosts == 1200
        assert sdm.num_hosts == 2400
        assert baseline.total_power == pytest.approx(1200)
        assert sdm.total_power == pytest.approx(960)

    def test_helper_hosts_counted(self):
        plan = plan_deployment(
            DeploymentScenario(
                "scale-out",
                HW_L,
                qps_per_host=450,
                total_qps=450 * 1500,
                helper_platform=HW_S,
                helper_hosts_per_host=0.2,
            )
        )
        assert plan.num_helper_hosts == 300
        assert plan.total_hosts == 1800

    def test_power_per_kqps(self):
        plan = plan_deployment(
            DeploymentScenario("x", HW_L, qps_per_host=100, total_qps=10_000)
        )
        assert plan.power_per_kqps == pytest.approx(plan.total_power / 10.0)

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            DeploymentScenario("bad", HW_L, qps_per_host=0, total_qps=10)
        with pytest.raises(ValueError):
            DeploymentScenario("bad", HW_L, qps_per_host=1, total_qps=10, helper_hosts_per_host=0.5)
