"""compare_runs: direction-aware per-metric regression detection."""

import pytest

from repro import ExperimentStore, ScenarioSpec, compare_runs
from repro.runtime import MetricSpec


def result_dict(qps=100.0, p99=0.010, dropped=0, **overrides):
    base = {
        "scenario": "s",
        "backend": "dram",
        "num_queries": 10,
        "concurrency": 1,
        "makespan_seconds": 0.5,
        "achieved_qps": qps,
        "latency_seconds": {"mean": p99 / 2, "p50": p99 / 2, "p95": p99, "p99": p99},
        "meets_slo": True,
        "slo_headroom": 0.5,
        "backend_stats": {},
        "power": None,
        "traffic_mode": "closed",
        "offered_qps": None,
        "dropped_queries": dropped,
        "queueing_seconds": None,
    }
    base.update(overrides)
    return base


def make_store(tmp_path, name, points):
    """points: {scenario_name: result_dict}; spec == name so hashes align."""
    store = ExperimentStore(tmp_path / name)
    for index, (scenario, result) in enumerate(points.items()):
        store.put(ScenarioSpec(name=scenario), result, index=index)
    return store


class TestCompareRuns:
    def test_identical_runs_have_zero_regressions(self, tmp_path):
        points = {"a": result_dict(), "b": result_dict(qps=50.0)}
        base = make_store(tmp_path, "base", points)
        cand = make_store(tmp_path, "cand", points)
        comparison = compare_runs(base, cand)
        assert comparison.compared_points == 2
        assert comparison.regressions == []
        assert comparison.spec_drift == []
        assert "0 regression(s)" in comparison.table()

    def test_direction_awareness(self, tmp_path):
        base = make_store(tmp_path, "base", {"a": result_dict(qps=100.0, p99=0.010)})
        cand = make_store(
            tmp_path, "cand", {"a": result_dict(qps=80.0, p99=0.005)}
        )
        comparison = compare_runs(base, cand)
        by_metric = {delta.metric: delta for delta in comparison.deltas}
        assert by_metric["achieved_qps"].regressed  # lower qps is worse
        assert not by_metric["latency_seconds.p99"].regressed  # lower p99 is better
        # And the mirror image: p99 growing is a regression.
        worse_p99 = compare_runs(
            make_store(tmp_path, "b2", {"a": result_dict(p99=0.010)}),
            make_store(tmp_path, "c2", {"a": result_dict(p99=0.020)}),
        )
        assert [d.metric for d in worse_p99.regressions] == ["latency_seconds.p99"]

    def test_tolerance_absorbs_small_movements(self, tmp_path):
        base = make_store(tmp_path, "base", {"a": result_dict(qps=100.0)})
        cand = make_store(tmp_path, "cand", {"a": result_dict(qps=97.0)})
        assert compare_runs(base, cand).regressions  # 3% drop, zero tolerance
        assert not compare_runs(base, cand, tolerance=0.05).regressions

    def test_dropped_queries_regression(self, tmp_path):
        base = make_store(tmp_path, "base", {"a": result_dict(dropped=0)})
        cand = make_store(tmp_path, "cand", {"a": result_dict(dropped=7)})
        regressions = compare_runs(base, cand).regressions
        assert [delta.metric for delta in regressions] == ["dropped_queries"]

    def test_unmatched_points_are_reported_not_compared(self, tmp_path):
        base = make_store(tmp_path, "base", {"a": result_dict(), "b": result_dict()})
        cand = make_store(tmp_path, "cand", {"b": result_dict(), "c": result_dict()})
        comparison = compare_runs(base, cand)
        assert comparison.compared_points == 1
        assert comparison.only_in_baseline == ["a"]
        assert comparison.only_in_candidate == ["c"]
        assert "only in baseline" in comparison.table()

    def test_spec_drift_is_flagged_but_still_compared(self, tmp_path):
        """Same point name, different spec: a config A/B, compared with a flag."""
        base_store = ExperimentStore(tmp_path / "base")
        base_store.put(ScenarioSpec(name="a"), result_dict(qps=100.0))
        cand_store = ExperimentStore(tmp_path / "cand")
        cand_store.put(
            ScenarioSpec(name="a").replace("serving.concurrency", 4),
            result_dict(qps=100.0),
        )
        comparison = compare_runs(base_store, cand_store)
        assert comparison.compared_points == 1
        assert comparison.spec_drift == ["a"]
        assert all(not delta.specs_match for delta in comparison.deltas)
        assert "spec drift" in comparison.table()

    def test_missing_metric_values_are_skipped(self, tmp_path):
        base = make_store(tmp_path, "base", {"a": result_dict()})
        cand = make_store(tmp_path, "cand", {"a": result_dict()})
        comparison = compare_runs(
            base, cand, metrics=["queueing_seconds.p99", "achieved_qps"]
        )
        # Closed-loop points have no queueing percentiles: only qps compares.
        assert [delta.metric for delta in comparison.deltas] == ["achieved_qps"]

    def test_to_dict_is_json_shaped(self, tmp_path):
        base = make_store(tmp_path, "base", {"a": result_dict()})
        payload = compare_runs(base, base).to_dict()
        assert payload["compared_points"] == 1
        assert payload["num_regressions"] == 0
        assert isinstance(payload["deltas"], list)

    def test_invalid_tolerance(self, tmp_path):
        base = make_store(tmp_path, "base", {"a": result_dict()})
        with pytest.raises(ValueError, match="tolerance"):
            compare_runs(base, base, tolerance=-0.1)


class TestMetricSpec:
    def test_parse_defaults(self):
        assert MetricSpec.parse("achieved_qps").higher_is_better
        assert not MetricSpec.parse("latency_seconds.p99").higher_is_better
        assert not MetricSpec.parse("dropped_queries").higher_is_better

    def test_parse_explicit_direction(self):
        assert MetricSpec.parse("backend_stats.row cache hit rate:higher").higher_is_better
        assert not MetricSpec.parse("achieved_qps:lower").higher_is_better

    def test_parse_rejects_bad_direction(self):
        with pytest.raises(ValueError, match="higher"):
            MetricSpec.parse("achieved_qps:sideways")
