"""Tests for the power model."""

import pytest

from repro.serving import HW_AN, HW_L, HW_S, HW_SS, PowerModel, power_saving


class TestPowerSaving:
    def test_basic_saving(self):
        assert power_saving(1200, 960) == pytest.approx(0.2)

    def test_no_saving(self):
        assert power_saving(100, 100) == 0.0

    def test_negative_saving_when_candidate_worse(self):
        assert power_saving(100, 120) == pytest.approx(-0.2)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            power_saving(0, 10)
        with pytest.raises(ValueError):
            power_saving(10, -1)


class TestPowerModel:
    def test_host_power_uses_platform_relative_power(self):
        model = PowerModel()
        assert model.host_power(HW_L) == pytest.approx(1.0)
        assert model.host_power(HW_SS) == pytest.approx(0.4)

    def test_fleet_power_scales_with_hosts(self):
        model = PowerModel()
        assert model.fleet_power(HW_L, 1200) == pytest.approx(1200)
        assert model.fleet_power(HW_SS, 2400) == pytest.approx(960)

    def test_mixed_fleet_power_table9_baseline(self):
        """Table 9 scale-out row: 1500 HW-AN + 300 HW-S = 1575 units."""
        model = PowerModel()
        total = model.mixed_fleet_power({HW_AN: 1500, HW_S: 300})
        assert total == pytest.approx(1575)

    def test_negative_host_count_rejected(self):
        with pytest.raises(ValueError):
            PowerModel().fleet_power(HW_L, -1)

    def test_utilisation_normalised_power(self):
        model = PowerModel()
        assert model.utilisation_normalised_power(HW_L, 0.5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            model.utilisation_normalised_power(HW_L, 0.0)
        with pytest.raises(ValueError):
            model.utilisation_normalised_power(HW_L, 1.5)
