"""Tests for the DIRECT-IO and mmap access paths."""

import pytest

from repro.sim.units import BLOCK_SIZE, GB
from repro.storage import (
    BlockLayout,
    DirectIOReader,
    IOEngine,
    IOEngineConfig,
    MmapReader,
    SimulatedDevice,
    nand_flash_spec,
)


def _setup(reader_cls, **reader_kwargs):
    device = SimulatedDevice(nand_flash_spec(1 * GB), seed=0)
    layout = BlockLayout([device.spec.capacity_bytes])
    layout.add_table("t", num_rows=1024, row_bytes=128)
    # Write recognisable data for row 7.
    location = layout.locate("t", 7)
    device.write_block(location.lba, bytes([7] * 128), offset=location.offset)
    engine = IOEngine([device], IOEngineConfig())
    return reader_cls(engine, layout, **reader_kwargs), device


class TestDirectIOReader:
    def test_reads_correct_row_data(self):
        reader, _ = _setup(DirectIOReader)
        results = reader.read_rows("t", [7], start_time=0.0)
        assert results[0].data == bytes([7] * 128)

    def test_only_row_bytes_consume_fm(self):
        reader, _ = _setup(DirectIOReader)
        result = reader.read_rows("t", [7], 0.0)[0]
        assert result.fm_bytes_consumed == 128
        assert reader.fm_footprint_bytes() == 0

    def test_latency_positive_and_matches_completion(self):
        reader, _ = _setup(DirectIOReader)
        result = reader.read_rows("t", [3], 0.5)[0]
        assert result.latency > 0
        assert result.completion_time == pytest.approx(0.5 + result.latency)

    def test_multiple_rows_return_in_request_order(self):
        reader, _ = _setup(DirectIOReader)
        results = reader.read_rows("t", [3, 7, 1], 0.0)
        assert [r.row_index for r in results] == [3, 7, 1]


class TestMmapReader:
    def test_page_fault_then_hit(self):
        reader, _ = _setup(MmapReader)
        first = reader.read_rows("t", [7], 0.0)[0]
        second = reader.read_rows("t", [7], first.completion_time)[0]
        assert reader.page_faults == 1
        assert reader.page_hits == 1
        assert second.latency == 0.0

    def test_rows_in_same_block_share_a_fault(self):
        reader, _ = _setup(MmapReader)
        # rows 0 and 1 live in the same 4KiB block (128B rows).
        reader.read_rows("t", [0, 1], 0.0)
        assert reader.page_faults == 1
        assert reader.page_hits == 1

    def test_page_fault_transfers_whole_block(self):
        reader, _ = _setup(MmapReader)
        result = reader.read_rows("t", [7], 0.0)[0]
        assert result.transferred_bytes == BLOCK_SIZE
        assert result.fm_bytes_consumed == BLOCK_SIZE

    def test_mmap_fm_footprint_counts_resident_pages(self):
        reader, _ = _setup(MmapReader)
        reader.read_rows("t", [0], 0.0)
        reader.read_rows("t", [100], 0.0)
        assert reader.fm_footprint_bytes() == 2 * BLOCK_SIZE

    def test_page_cache_eviction_bounds_footprint(self):
        reader, _ = _setup(MmapReader, page_cache_capacity_bytes=2 * BLOCK_SIZE)
        # touch rows in 4 different blocks
        for row in (0, 40, 80, 120):
            reader.read_rows("t", [row], 0.0)
        assert reader.fm_footprint_bytes() <= 2 * BLOCK_SIZE

    def test_mmap_data_matches_direct_io(self):
        direct, _ = _setup(DirectIOReader)
        mapped, _ = _setup(MmapReader)
        assert (
            direct.read_rows("t", [7], 0.0)[0].data
            == mapped.read_rows("t", [7], 0.0)[0].data
        )

    def test_mmap_slower_than_direct_io_for_cold_reads(self):
        """Section 4.1: mmap showed ~3x higher access latency."""
        direct, _ = _setup(DirectIOReader)
        mapped, _ = _setup(MmapReader, latency_factor=3.0)
        direct_lat = direct.read_rows("t", [9], 0.0)[0].latency
        mapped_lat = mapped.read_rows("t", [9], 0.0)[0].latency
        assert mapped_lat > 2.0 * direct_lat

    def test_invalid_latency_factor_rejected(self):
        device = SimulatedDevice(nand_flash_spec(1 * GB))
        layout = BlockLayout([device.spec.capacity_bytes])
        layout.add_table("t", 16, 128)
        engine = IOEngine([device])
        with pytest.raises(ValueError):
            MmapReader(engine, layout, latency_factor=0.5)
        with pytest.raises(ValueError):
            MmapReader(engine, layout, page_cache_capacity_bytes=0)
