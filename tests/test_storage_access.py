"""Tests for the DIRECT-IO and mmap access paths."""

import numpy as np
import pytest

from repro.sim.units import BLOCK_SIZE, GB
from repro.storage import (
    BlockLayout,
    DirectIOReader,
    IOEngine,
    IOEngineConfig,
    MmapReader,
    SimulatedDevice,
    nand_flash_spec,
)


def _setup(reader_cls, **reader_kwargs):
    device = SimulatedDevice(nand_flash_spec(1 * GB), seed=0)
    layout = BlockLayout([device.spec.capacity_bytes])
    layout.add_table("t", num_rows=1024, row_bytes=128)
    # Write recognisable data for row 7.
    location = layout.locate("t", 7)
    device.write_block(location.lba, bytes([7] * 128), offset=location.offset)
    engine = IOEngine([device], IOEngineConfig())
    return reader_cls(engine, layout, **reader_kwargs), device


class TestDirectIOReader:
    def test_reads_correct_row_data(self):
        reader, _ = _setup(DirectIOReader)
        results = reader.read_rows("t", [7], start_time=0.0)
        assert results[0].data == bytes([7] * 128)

    def test_only_row_bytes_consume_fm(self):
        reader, _ = _setup(DirectIOReader)
        result = reader.read_rows("t", [7], 0.0)[0]
        assert result.fm_bytes_consumed == 128
        assert reader.fm_footprint_bytes() == 0

    def test_latency_positive_and_matches_completion(self):
        reader, _ = _setup(DirectIOReader)
        result = reader.read_rows("t", [3], 0.5)[0]
        assert result.latency > 0
        assert result.completion_time == pytest.approx(0.5 + result.latency)

    def test_multiple_rows_return_in_request_order(self):
        reader, _ = _setup(DirectIOReader)
        results = reader.read_rows("t", [3, 7, 1], 0.0)
        assert [r.row_index for r in results] == [3, 7, 1]

    def test_batch_read_matches_scalar_reads(self):
        rows = [3, 7, 1, 7, 40, 0]
        scalar_reader, scalar_device = _setup(DirectIOReader)
        batch_reader, batch_device = _setup(DirectIOReader)
        assert batch_reader.supports_batch_reads
        scalar_results = scalar_reader.read_rows("t", rows, 0.25)
        batch = batch_reader.read_rows_batch(
            "t", np.asarray(rows, dtype=np.int64), 0.25
        )
        assert [r.data for r in scalar_results] == [
            row.tobytes() for row in batch.rows
        ]
        assert [
            r.completion_time for r in scalar_results
        ] == batch.completion_times.tolist()
        assert scalar_device.stats == batch_device.stats
        assert scalar_reader.engine.stats == batch_reader.engine.stats

    def test_mmap_reader_has_no_batch_path(self):
        reader, _ = _setup(MmapReader)
        assert not reader.supports_batch_reads
        assert reader.read_rows_batch("t", np.array([1], dtype=np.int64), 0.0) is None


class TestMmapReader:
    def test_page_fault_then_hit(self):
        reader, _ = _setup(MmapReader)
        first = reader.read_rows("t", [7], 0.0)[0]
        second = reader.read_rows("t", [7], first.completion_time)[0]
        assert reader.page_faults == 1
        assert reader.page_hits == 1
        assert second.latency == 0.0

    def test_rows_in_same_block_share_a_fault(self):
        reader, _ = _setup(MmapReader)
        # rows 0 and 1 live in the same 4KiB block (128B rows).
        reader.read_rows("t", [0, 1], 0.0)
        assert reader.page_faults == 1
        assert reader.page_hits == 1

    def test_page_fault_transfers_whole_block(self):
        reader, _ = _setup(MmapReader)
        result = reader.read_rows("t", [7], 0.0)[0]
        assert result.transferred_bytes == BLOCK_SIZE
        assert result.fm_bytes_consumed == BLOCK_SIZE

    def test_mmap_fm_footprint_counts_resident_pages(self):
        reader, _ = _setup(MmapReader)
        reader.read_rows("t", [0], 0.0)
        reader.read_rows("t", [100], 0.0)
        assert reader.fm_footprint_bytes() == 2 * BLOCK_SIZE

    def test_page_cache_eviction_bounds_footprint(self):
        reader, _ = _setup(MmapReader, page_cache_capacity_bytes=2 * BLOCK_SIZE)
        # touch rows in 4 different blocks
        for row in (0, 40, 80, 120):
            reader.read_rows("t", [row], 0.0)
        assert reader.fm_footprint_bytes() <= 2 * BLOCK_SIZE

    def test_page_cache_eviction_at_exact_capacity_boundary(self):
        # Capacity = exactly 2 pages: the 2nd fault fills the cache without
        # evicting, the 3rd evicts precisely the oldest page (FIFO), and a
        # re-read of the evicted block faults again.
        reader, _ = _setup(MmapReader, page_cache_capacity_bytes=2 * BLOCK_SIZE)
        rows = (0, 40, 80)  # three distinct blocks (32 rows of 128 B / block)
        cursor = 0.0
        for row in rows:
            cursor = reader.read_rows("t", [row], cursor)[0].completion_time
        assert reader.page_faults == 3
        assert reader.fm_footprint_bytes() == 2 * BLOCK_SIZE
        # Block of row 40 (2nd fault) survived; block of row 0 was evicted.
        hit = reader.read_rows("t", [40], cursor)[0]
        assert reader.page_hits == 1
        assert hit.latency == 0.0
        reader.read_rows("t", [0], cursor)
        assert reader.page_faults == 4

    def test_access_before_fault_completion_waits_for_the_fault(self):
        # Two rows of the same block, second access issued while the first
        # fault is still in flight: it counts as a page hit (no new IO) but
        # stalls until the fault's completion time.
        reader, _ = _setup(MmapReader)
        fault = reader.read_rows("t", [0], 0.0)[0]
        assert fault.completion_time > 0.0
        early = reader.read_rows("t", [1], 0.0)[0]
        assert reader.page_faults == 1
        assert reader.page_hits == 1
        assert early.completion_time == fault.completion_time
        assert early.latency == pytest.approx(fault.completion_time)
        # After the fault completes the page serves instantly.
        late = reader.read_rows("t", [1], fault.completion_time)[0]
        assert late.latency == 0.0
        assert late.completion_time == fault.completion_time

    def test_mmap_data_matches_direct_io(self):
        direct, _ = _setup(DirectIOReader)
        mapped, _ = _setup(MmapReader)
        assert (
            direct.read_rows("t", [7], 0.0)[0].data
            == mapped.read_rows("t", [7], 0.0)[0].data
        )

    def test_mmap_slower_than_direct_io_for_cold_reads(self):
        """Section 4.1: mmap showed ~3x higher access latency."""
        direct, _ = _setup(DirectIOReader)
        mapped, _ = _setup(MmapReader, latency_factor=3.0)
        direct_lat = direct.read_rows("t", [9], 0.0)[0].latency
        mapped_lat = mapped.read_rows("t", [9], 0.0)[0].latency
        assert mapped_lat > 2.0 * direct_lat

    def test_invalid_latency_factor_rejected(self):
        device = SimulatedDevice(nand_flash_spec(1 * GB))
        layout = BlockLayout([device.spec.capacity_bytes])
        layout.add_table("t", 16, 128)
        engine = IOEngine([device])
        with pytest.raises(ValueError):
            MmapReader(engine, layout, latency_factor=0.5)
        with pytest.raises(ValueError):
            MmapReader(engine, layout, page_cache_capacity_bytes=0)
