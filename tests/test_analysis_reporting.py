"""Tests for table/series formatting."""

import pytest

from repro.analysis import format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "b"], [[1, 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.000" in lines[2]

    def test_title_is_first_line(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long-name", 1], ["x", 22]])
        lines = text.splitlines()
        # Separator length matches the widest row.
        assert len(lines[1]) == len(lines[2])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_custom_float_format(self):
        text = format_table(["v"], [[3.14159]], float_fmt=".1f")
        assert "3.1" in text
        assert "3.14" not in text

    def test_bool_rendered_as_text(self):
        text = format_table(["flag"], [[True]])
        assert "True" in text


class TestFormatSeries:
    def test_mapping_input(self):
        text = format_series("curve", {1: 10.0, 2: 20.0}, x_label="qps", y_label="lat")
        assert "curve" in text
        assert "qps" in text
        assert "20.000" in text

    def test_pair_sequence_input(self):
        text = format_series("s", [(0.1, 1.0), (0.2, 2.0)])
        assert text.count("\n") == 4  # title + header + separator + 2 rows
