"""Unit tests of the MetricsSampler window machinery, plus the end-to-end
property the tentpole pins: timeline window deltas sum to the aggregate
serving statistics."""

import pytest

from repro.api import ScenarioSpec, Session, TelemetrySpec
from repro.api.spec import ServingChoice, TrafficSpec, WorkloadChoice
from repro.obs.metrics import (
    CACHE_COUNTER_FIELDS,
    TIER_COUNTER_FIELDS,
    MetricsSampler,
    Timeline,
    stats_counters,
    window_rate,
    window_ratio,
)


class TestMetricsSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            MetricsSampler(0.0)

    def test_windows_hold_deltas_not_levels(self):
        counters = {"served": 0}
        sampler = MetricsSampler(1.0)
        sampler.add_counters("engine", lambda: dict(counters))
        sampler.start(0.0)
        counters["served"] = 3
        sampler.advance(1.0)  # closes window 0 with delta 3
        counters["served"] = 10
        sampler.finish(2.0)
        assert [w.counters["engine.served"] for w in sampler.timeline.windows] == [3, 7]

    def test_boundary_event_belongs_to_the_next_window(self):
        # advance(t) closes every window ending at or before t; window k is
        # [k*interval, (k+1)*interval), so t == boundary starts window k+1.
        sampler = MetricsSampler(1.0)
        sampler.add_counters("c", lambda: {"n": 0})
        sampler.start(0.0)
        sampler.advance(1.0)
        assert [w.index for w in sampler.timeline.windows] == [0]
        assert sampler.timeline.windows[0].end == 1.0

    def test_advance_keeps_a_high_water_mark(self):
        # Closed-loop streams report per-stream clocks out of order.
        sampler = MetricsSampler(1.0)
        sampler.add_counters("c", lambda: {"n": 0})
        sampler.start(0.0)
        sampler.advance(2.5)
        sampler.advance(0.5)  # older timestamp: must not reopen windows
        assert len(sampler.timeline) == 2
        sampler.finish(0.75)  # finish below the high water closes the partial
        assert sampler.timeline.windows[-1].end == 2.5

    def test_finish_closes_partial_window_and_is_idempotent(self):
        sampler = MetricsSampler(1.0)
        sampler.add_counters("c", lambda: {"n": 0})
        sampler.start(0.0)
        timeline = sampler.finish(2.4)
        assert [w.end for w in timeline.windows] == [1.0, 2.0, 2.4]
        assert sampler.finish(99.0) is timeline
        assert len(timeline) == 3

    def test_start_baselines_away_prior_activity(self):
        # Counters accumulated before start() (warmup) never enter window 0.
        counters = {"served": 40}
        sampler = MetricsSampler(1.0)
        sampler.add_counters("engine", lambda: dict(counters))
        sampler.start(0.0)
        counters["served"] = 41
        sampler.finish(0.5)
        assert sampler.timeline.windows[0].counters["engine.served"] == 1

    def test_gauges_sample_at_window_close(self):
        depth = {"value": 0.0}
        sampler = MetricsSampler(1.0)
        sampler.add_counters("c", lambda: {"n": 0})
        sampler.add_gauge("queue_depth", lambda: depth["value"])
        sampler.start(0.0)
        depth["value"] = 4.0
        sampler.advance(1.0)
        depth["value"] = 9.0
        sampler.finish(1.5)
        assert [w.gauges["queue_depth"] for w in sampler.timeline.windows] == [4.0, 9.0]

    def test_sources_are_frozen_after_start(self):
        sampler = MetricsSampler(1.0)
        sampler.start(0.0)
        with pytest.raises(RuntimeError, match="after start"):
            sampler.add_counters("c", dict)
        with pytest.raises(RuntimeError, match="after start"):
            sampler.add_gauge("g", float)

    def test_advance_requires_start(self):
        with pytest.raises(RuntimeError, match="start"):
            MetricsSampler(1.0).advance(1.0)

    def test_totals_telescope(self):
        counters = {"n": 0}
        sampler = MetricsSampler(0.5)
        sampler.add_counters("c", lambda: dict(counters))
        sampler.start(0.0)
        for step in range(1, 8):
            counters["n"] = step * step
            sampler.advance(step * 0.3)
        sampler.finish(2.1)
        assert sampler.timeline.totals()["c.n"] == 49  # final - baseline

    def test_timeline_round_trips_through_dict(self):
        sampler = MetricsSampler(1.0)
        sampler.add_counters("c", lambda: {"n": 1})
        sampler.add_gauge("g", lambda: 2.0)
        sampler.start(0.0)
        timeline = sampler.finish(1.5)
        rebuilt = Timeline.from_dict(timeline.to_dict())
        assert rebuilt.interval == timeline.interval
        assert rebuilt.windows == timeline.windows

    def test_window_rate_and_ratio_helpers(self):
        sampler = MetricsSampler(2.0)
        counters = {"hits": 0, "probes": 0}
        sampler.add_counters("t", lambda: dict(counters))
        sampler.start(0.0)
        counters.update(hits=3, probes=4)
        [window] = sampler.finish(2.0).windows
        assert window_rate(window, "t.probes") == 2.0  # 4 over a 2 s window
        assert window_ratio(window, "t.hits", "t.probes") == 0.75
        assert window_ratio(window, "t.hits", "t.missing") is None

    def test_stats_counters_picks_named_fields(self):
        class Stats:
            cache_probes = 5
            cache_hits = 2
            rows_served = 7
            bytes_served = 700
            ios = 1
            promoted_rows = 0

        assert stats_counters(Stats(), TIER_COUNTER_FIELDS) == {
            "cache_probes": 5,
            "cache_hits": 2,
            "rows_served": 7,
            "bytes_served": 700,
            "ios": 1,
            "promoted_rows": 0,
        }


class TestTimelineMatchesAggregates:
    """The acceptance property: windows sum to the run's aggregate stats."""

    @pytest.fixture(scope="class")
    def session_and_result(self):
        spec = ScenarioSpec(
            name="timeline-aggregate",
            workload=WorkloadChoice(num_queries=80),
            # warmup=0 so the sampler baseline equals the zero'd stats and
            # window totals equal the *aggregate* counters, not a suffix.
            serving=ServingChoice(concurrency=2, warmup_queries=0),
            traffic=TrafficSpec(
                mode="open", arrival="poisson", offered_qps=400.0, queue_depth=16
            ),
            telemetry=TelemetrySpec(sample_interval=0.02),
        )
        session = Session(spec)
        return session, session.run()

    def test_window_deltas_sum_to_tier_stats(self, session_and_result):
        session, result = session_and_result
        totals = Timeline.from_dict(result.timeline).totals()
        backend = session.backend
        for index, tier in enumerate(backend.tiers):
            for field in TIER_COUNTER_FIELDS:
                assert totals.get(f"backend.tier{index}.{field}", 0) == getattr(
                    tier.stats, field
                ), (index, field)

    def test_window_deltas_sum_to_cache_stats(self, session_and_result):
        session, result = session_and_result
        totals = Timeline.from_dict(result.timeline).totals()
        for index, tier in enumerate(session.backend.tiers):
            if tier.cache is None:
                continue
            for field in CACHE_COUNTER_FIELDS:
                assert totals.get(f"backend.tier{index}.cache.{field}", 0) == getattr(
                    tier.cache.stats, field
                ), (index, field)

    def test_window_deltas_sum_to_engine_counts(self, session_and_result):
        _, result = session_and_result
        totals = Timeline.from_dict(result.timeline).totals()
        assert totals["engine.served"] == result.num_queries
        assert totals["engine.dropped"] == result.dropped_queries
        assert totals["engine.offered"] == result.num_queries + result.dropped_queries

    def test_windows_tile_the_makespan(self, session_and_result):
        _, result = session_and_result
        timeline = Timeline.from_dict(result.timeline)
        assert len(timeline) >= 2
        previous_end = 0.0
        for window in timeline.windows:
            assert window.start == previous_end
            assert window.end > window.start
            previous_end = window.end
        assert timeline.windows[-1].end <= result.makespan_seconds + 1e-9
